"""Runtime benches: the paper's "fast algorithm" claim.

§5 notes NMAP completes "in a few seconds" where the ILP takes minutes.
These benches time the core algorithm kernels so regressions in asymptotics
(e.g. breaking the O(deg) swap delta) show up as timing cliffs.
"""

from __future__ import annotations

from repro.apps import vopd
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping import nmap_single_path, nmap_with_splitting
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion


def test_runtime_nmap_vopd(benchmark):
    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
    result = benchmark(nmap_single_path, app, mesh)
    assert result.feasible


def test_runtime_nmap_65_cores(benchmark):
    app = random_core_graph(65, seed=2069)
    mesh = NoCTopology.smallest_mesh_for(65, link_bandwidth=app.total_bandwidth())
    result = benchmark.pedantic(
        nmap_single_path, args=(app, mesh), rounds=1, iterations=1
    )
    assert result.feasible


def test_runtime_min_path_routing(benchmark):
    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
    mapping = nmap_single_path(app, mesh).mapping
    commodities = build_commodities(app, mapping)
    routing = benchmark(min_path_routing, mesh, commodities)
    assert routing.max_link_load() > 0


def test_runtime_mcf_min_congestion(benchmark):
    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
    mapping = nmap_single_path(app, mesh).mapping
    commodities = build_commodities(app, mapping)
    lam, _ = benchmark.pedantic(
        solve_min_congestion, args=(mesh, commodities), rounds=1, iterations=1
    )
    assert lam > 0


def test_runtime_nmap_split_dsp(benchmark):
    from repro.apps.dsp import dsp_filter, dsp_mesh

    app = dsp_filter()
    mesh = dsp_mesh(link_bandwidth=400.0)
    result = benchmark.pedantic(
        nmap_with_splitting, args=(app, mesh), rounds=1, iterations=1
    )
    assert result.feasible
