"""Table 3 bench: DSP NoC design figures.

Shape asserted: the component figures match the paper's ×pipes values
verbatim; single min-path provisioning is exactly 600 MB/s; split-traffic
provisioning is the 2x3-mesh optimum of 400 MB/s (paper reports 200 — see
EXPERIMENTS.md for the cut-bound analysis of that gap).
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.table3 import run_table3


def test_table3_dsp_design(benchmark):
    table = run_once(benchmark, run_table3)
    print()
    print(table.render())
    assert table.row_by_key("NI area (mm2)")[1] == 0.6
    assert table.row_by_key("switch area (mm2, 5x5)")[1] == 1.08
    assert table.row_by_key("switch delay (cycles)")[1] == 7
    assert table.row_by_key("packet size (B)")[1] == 64
    assert table.row_by_key("minp BW (MB/s)")[1] == pytest.approx(600.0)
    assert table.row_by_key("split BW (MB/s)")[1] == pytest.approx(400.0)
    assert table.row_by_key("switches instantiated")[1] == 6
