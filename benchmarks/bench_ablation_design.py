"""Ablation benches for the design choices DESIGN.md calls out.

* swap-improvement on/off — what NMAP's pairwise refinement buys over the
  constructive seed;
* NMAPTM vs NMAPTA — what all-path splitting buys over minimum-path
  splitting (the low-jitter trade);
* commodity ordering in shortestpath() — why the heuristic routes heavy
  commodities first;
* PBB queue-length sensitivity — the knob behind Table 2's scaling story.
"""

from __future__ import annotations

from conftest import run_once

from repro.apps import VIDEO_APPS, get_app
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping import nmap_single_path, pbb, random_mapping
from repro.metrics import min_bandwidth_split
from repro.routing.base import RoutingResult, path_links
from repro.routing.min_path import least_loaded_quadrant_path, min_path_routing


def _mesh_for(app):
    return NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=app.total_bandwidth())


def test_ablation_swap_improvement(benchmark):
    """Swap refinement must strictly help somewhere and never hurt."""

    def sweep():
        rows = []
        for app_name in VIDEO_APPS:
            app = get_app(app_name)
            mesh = _mesh_for(app)
            seed_only = nmap_single_path(app, mesh, improve=False).comm_cost
            refined = nmap_single_path(app, mesh).comm_cost
            rows.append((app_name, seed_only, refined))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    improved_somewhere = False
    for app_name, seed_only, refined in rows:
        print(f"  {app_name:6s} seed={seed_only:8.0f} refined={refined:8.0f}")
        assert refined <= seed_only + 1e-9, app_name
        if refined < seed_only - 1e-9:
            improved_somewhere = True
    assert improved_somewhere


def test_ablation_split_scope(benchmark):
    """NMAPTA (all paths) needs at most NMAPTM's (min paths) bandwidth."""

    def sweep():
        rows = []
        for app_name in VIDEO_APPS:
            app = get_app(app_name)
            mapping = nmap_single_path(app, _mesh_for(app)).mapping
            tm, _ = min_bandwidth_split(mapping, quadrant_only=True)
            ta, _ = min_bandwidth_split(mapping, quadrant_only=False)
            rows.append((app_name, tm, ta))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    for app_name, tm, ta in rows:
        print(f"  {app_name:6s} NMAPTM={tm:7.1f} NMAPTA={ta:7.1f}")
        assert ta <= tm + 1e-6, app_name
    assert any(ta < tm - 1e-6 for _a, tm, ta in rows)


def _route_in_order(topology, commodities, order_key):
    """Route commodities in a caller-chosen order (heuristic internals)."""
    loads: dict[tuple[int, int], float] = {}
    paths: dict[int, list[int]] = {}
    for commodity in sorted(commodities, key=order_key):
        path = least_loaded_quadrant_path(
            topology, commodity.src_node, commodity.dst_node, loads
        )
        paths[commodity.index] = path
        for link in path_links(path):
            loads[link] = loads.get(link, 0.0) + commodity.value
    return RoutingResult.from_paths(topology, commodities, paths, "ordered")


def test_ablation_commodity_ordering(benchmark):
    """Heaviest-first ordering (the paper's choice) vs lightest-first."""

    def sweep():
        results = []
        for seed in (1, 2, 3, 4, 5):
            graph = random_core_graph(14, seed=seed)
            mesh = NoCTopology.smallest_mesh_for(14, link_bandwidth=1e9)
            mapping = random_mapping(graph, mesh, seed=seed).mapping
            commodities = build_commodities(graph, mapping)
            heavy_first = _route_in_order(
                mesh, commodities, lambda c: (-c.value, c.index)
            ).max_link_load()
            light_first = _route_in_order(
                mesh, commodities, lambda c: (c.value, c.index)
            ).max_link_load()
            results.append((heavy_first, light_first))
        return results

    results = run_once(benchmark, sweep)
    print()
    for heavy, light in results:
        print(f"  heavy-first={heavy:8.1f}  light-first={light:8.1f}")
    # Measured finding (recorded in EXPERIMENTS.md): on random mappings the
    # two orders trade wins per instance; the paper's heaviest-first choice
    # must at least never be catastrophically worse in aggregate.
    mean_heavy = sum(h for h, _l in results) / len(results)
    mean_light = sum(l for _h, l in results) / len(results)
    assert mean_heavy <= mean_light * 1.15


def test_ablation_pbb_queue(benchmark):
    """PBB quality must degrade monotonically-ish as the queue shrinks."""

    def sweep():
        graph = random_core_graph(20, seed=77)
        mesh = NoCTopology.smallest_mesh_for(20, link_bandwidth=graph.total_bandwidth())
        return {
            queue: pbb(graph, mesh, max_queue=queue).comm_cost
            for queue in (2, 20, 200, 2000)
        }

    costs = run_once(benchmark, sweep)
    print(f"\n  PBB cost by queue: {costs}")
    assert costs[2000] <= costs[20]
    assert costs[2000] <= costs[2]
