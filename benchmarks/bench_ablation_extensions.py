"""Extension ablations: jitter (NMAPTM's motivation), annealing, deadlock.

* **Jitter** — §6 argues for splitting across *minimum* paths "for SoC
  applications that require low jitter ... so that the packets traveling in
  the different paths have the same hop delay".  We measure it: latency
  variance of the hot DSP flow under equal-hop (TM) vs mixed-length (TA)
  splitting.
* **Annealing vs NMAP** — the post-paper-standard metaheuristic baseline:
  comparable cost at a large runtime premium.
* **Deadlock audit** — dimension-ordered routing is verified cycle-free on
  every application (the classical guarantee our simulator leans on).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.apps import VIDEO_APPS, get_app
from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.graphs.commodities import build_commodities
from repro.graphs.topology import NoCTopology
from repro.mapping import annealing_mapping, nmap_single_path, nmap_with_splitting
from repro.routing.deadlock import is_deadlock_free
from repro.routing.dimension_ordered import xy_routing
from repro.routing.split import solve_min_congestion
from repro.simnoc import SimConfig, simulate_mapping


def test_ablation_jitter_tm_vs_ta(benchmark):
    """Equal-hop (TM) splitting must yield lower latency variance than
    mixed-length (TA) splitting for the hot flow."""

    def sweep():
        app = dsp_filter()
        mesh = dsp_mesh(link_bandwidth=400.0)
        mapped = nmap_with_splitting(app, mesh, quadrant_only=False)
        commodities = build_commodities(app, mapped.mapping)
        _tm_lam, tm = solve_min_congestion(mesh, commodities, quadrant_only=True)
        _ta_lam, ta = solve_min_congestion(mesh, commodities, quadrant_only=False)
        hot = max(commodities, key=lambda c: c.value).index

        def latency_std(routing):
            values = []
            for seed in (1, 2, 3):
                config = SimConfig(
                    mean_burst_packets=2.0,
                    buffer_depth=16,
                    measure_cycles=15_000,
                    seed=seed,
                )
                report = simulate_mapping(
                    mesh, commodities, routing, config,
                    link_rate_flits_per_cycle=config.gbps_link_rate(1.6),
                )
                values.append(report.per_commodity_latency_std.get(hot, 0.0))
            return sum(values) / len(values)

        return latency_std(tm), latency_std(ta)

    tm_std, ta_std = run_once(benchmark, sweep)
    print(f"\n  hot-flow latency std: TM(equal hops)={tm_std:.1f} "
          f"TA(mixed)={ta_std:.1f}")
    # TA routes the hot flow over paths of different lengths -> more
    # latency variance than TM's equal-hop split (the paper's jitter claim)
    assert tm_std <= ta_std


def test_ablation_annealing_vs_nmap(benchmark):
    """Annealing matches NMAP's cost class but pays heavily in runtime."""

    def sweep():
        rows = []
        for app_name in ("pip", "vopd", "mwa"):
            app = get_app(app_name)
            mesh = NoCTopology.smallest_mesh_for(
                app.num_cores, link_bandwidth=app.total_bandwidth()
            )
            start = time.perf_counter()
            nmap_result = nmap_single_path(app, mesh)
            nmap_time = time.perf_counter() - start
            start = time.perf_counter()
            sa_result = annealing_mapping(app, mesh, seed=1)
            sa_time = time.perf_counter() - start
            rows.append(
                (app_name, nmap_result.comm_cost, nmap_time,
                 sa_result.comm_cost, sa_time)
            )
        return rows

    rows = run_once(benchmark, sweep)
    print()
    for app_name, nmap_cost, nmap_time, sa_cost, sa_time in rows:
        print(f"  {app_name:5s} nmap={nmap_cost:7.0f} ({nmap_time*1e3:6.1f} ms)  "
              f"sa={sa_cost:7.0f} ({sa_time*1e3:6.1f} ms)")
        # same cost class: within 20% of each other either way (on pip SA
        # escapes the 2-swap local optimum NMAP lands in: 832 vs 960)
        assert sa_cost <= nmap_cost * 1.2
        assert nmap_cost <= sa_cost * 1.2


def test_deadlock_audit_xy_all_apps(benchmark):
    """XY routing is cycle-free on every application's NMAP mapping."""

    def sweep():
        verdicts = {}
        for app_name in VIDEO_APPS:
            app = get_app(app_name)
            mesh = NoCTopology.smallest_mesh_for(
                app.num_cores, link_bandwidth=app.total_bandwidth()
            )
            mapping = nmap_single_path(app, mesh).mapping
            commodities = build_commodities(app, mapping)
            verdicts[app_name] = is_deadlock_free(xy_routing(mesh, commodities))
        return verdicts

    verdicts = run_once(benchmark, sweep)
    print(f"\n  XY deadlock-free: {verdicts}")
    assert all(verdicts.values())
