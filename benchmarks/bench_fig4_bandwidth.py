"""Figure 4 bench: minimum link bandwidth per algorithm/routing scheme.

Shape asserted (paper): traffic splitting significantly reduces bandwidth
needs; NMAPTA <= NMAPTM <= NMAP single-path; dimension-ordered routing never
needs less than the load-balancing min-path heuristic on the same mapping.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig4 import run_fig4


def test_fig4_min_bandwidth(benchmark):
    table = run_once(benchmark, run_fig4)
    print()
    print(table.render())
    assert len(table.rows) == 6
    savings = []
    for row in table.rows:
        by_scheme = dict(zip(table.headers[1:], row[1:]))
        assert by_scheme["NMAPTA"] <= by_scheme["NMAPTM"] + 1e-6, row[0]
        assert by_scheme["NMAPTM"] <= by_scheme["NMAP"] + 1e-6, row[0]
        savings.append(by_scheme["NMAP"] / by_scheme["NMAPTA"])
    # the min-path heuristic needs no more bandwidth than dimension-ordered
    # routing *on average* (per-app the greedy router can lose a toss-up)
    def mean(col):
        return sum(table.column(col)) / len(table.rows)

    assert mean("PMAP") <= mean("DPMAP") + 1e-6
    assert mean("GMAP") <= mean("DGMAP") + 1e-6
    # splitting buys roughly 2x on average (paper: 53% savings)
    assert sum(savings) / len(savings) >= 1.5
