"""Future-work bench: mesh vs torus topology selection (paper's conclusion).

Shape asserted: torus never costs more (wrap links only shorten distances)
and buys a measurable saving on at least one application, while split-BW
needs never grow.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.topology_explore import run_topology_explore


def test_topology_exploration(benchmark):
    table = run_once(benchmark, run_topology_explore)
    print()
    print(table.render())
    savings = []
    for row in table.rows:
        app, mesh_cost, torus_cost, saving, mesh_bw, torus_bw = row
        assert torus_cost <= mesh_cost + 1e-9, app
        assert torus_bw <= mesh_bw + 1e-6, app
        savings.append(saving)
    assert max(savings) > 0.0  # the wraps pay off somewhere
