"""Benchmark suite configuration.

Every bench regenerates one table/figure of the paper (or an ablation) by
calling the same ``run_*`` functions the CLI uses, wrapped in
pytest-benchmark for timing.  Each bench also asserts the paper's *shape* on
the produced table, so ``pytest benchmarks/ --benchmark-only`` doubles as
the reproduction check recorded in EXPERIMENTS.md.

Benches run once per invocation (``rounds=1``) — the workloads are
deterministic end-to-end algorithm runs, not microbenchmarks.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark ``func`` with a single round/iteration and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
