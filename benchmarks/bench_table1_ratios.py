"""Table 1 bench: cost ratio (cstr) and bandwidth ratio (bwr) vs NMAP-split.

Shape asserted: NMAP is never worse on cost (cstr >= 1 per app) and the
average bandwidth ratio is in the paper's ~2x class (paper: 2.13; our
stronger GMAP/PBB baselines pull cstr below the paper's 1.47 — recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table1 import run_table1


def test_table1_ratios(benchmark):
    table = run_once(benchmark, run_table1)
    print()
    print(table.render())
    average_row = table.row_by_key("avg")
    cstr_avg, bwr_avg = average_row[1], average_row[2]
    for row in table.rows[:-1]:
        assert row[1] >= 0.99, f"{row[0]}: NMAP lost on cost"
    assert cstr_avg >= 1.0
    assert bwr_avg >= 1.5  # paper: 2.13
