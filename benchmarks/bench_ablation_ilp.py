"""Ablation bench: heuristic shortestpath() vs the exact ILP router (§5).

The paper claims the few-second heuristic lands within ~10% of the
minutes-scale ILP.  Asserted here on every application plus seeded random
mapped graphs.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ilp_gap import run_ilp_gap
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping import random_mapping
from repro.routing.ilp import ilp_single_path_routing
from repro.routing.min_path import min_path_routing


def test_ilp_gap_on_apps(benchmark):
    table = run_once(benchmark, run_ilp_gap)
    print()
    print(table.render())
    for row in table.rows:
        assert row[3] <= 10.0, f"{row[0]}: heuristic more than 10% off ILP"


def test_ilp_gap_on_random_graphs(benchmark):
    def sweep():
        gaps = []
        for seed in (1, 2, 3):
            graph = random_core_graph(12, seed=seed)
            mesh = NoCTopology.smallest_mesh_for(12, link_bandwidth=1e9)
            mapping = random_mapping(graph, mesh, seed=seed).mapping
            commodities = build_commodities(graph, mapping)
            heuristic = min_path_routing(mesh, commodities).max_link_load()
            exact, _ = ilp_single_path_routing(mesh, commodities)
            gaps.append((heuristic - exact) / exact * 100.0)
        return gaps

    gaps = run_once(benchmark, sweep)
    print(f"\nrandom-mapping heuristic-vs-ILP gaps (%): {[round(g,1) for g in gaps]}")
    # Random mappings stress the router far beyond the NMAP-optimized
    # mappings the paper's ~10% figure refers to (covered by
    # test_ilp_gap_on_apps, where the gap is 0%).  Here we bound the
    # greedy-vs-optimal gap at a still-useful 30% and require the heuristic
    # to never beat the exact optimum (sanity of the ILP).
    assert all(gap >= -1e-6 for gap in gaps)
    assert sum(gaps) / len(gaps) <= 30.0
