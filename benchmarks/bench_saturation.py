"""Load-sweep bench: latency vs offered load, single-path vs split routing.

A classic NoC evaluation the paper implies but does not plot: scale every
commodity's injection rate and watch latency grow toward saturation.  Split
routing, with its lower peak link utilization, must saturate later — i.e.
at high load its latency advantage over single-path routing must widen.
"""

from __future__ import annotations

from conftest import run_once

from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.graphs.commodities import build_commodities
from repro.mapping import nmap_with_splitting
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion
from repro.simnoc import SimConfig, simulate_mapping


def test_saturation_sweep(benchmark):
    def sweep():
        app = dsp_filter()
        mesh = dsp_mesh(link_bandwidth=500.0)
        mapped = nmap_with_splitting(app, mesh, quadrant_only=True)
        commodities = build_commodities(app, mapped.mapping)
        single = min_path_routing(mesh, commodities)
        _lam, split = solve_min_congestion(mesh, commodities, quadrant_only=True)

        rows = []
        for scale in (0.6, 1.0, 1.4):
            means = {}
            for label, routing in (("minp", single), ("split", split)):
                per_seed = []
                for seed in (1, 2):
                    config = SimConfig(
                        mean_burst_packets=2.0,
                        buffer_depth=16,
                        measure_cycles=12_000,
                        seed=seed,
                    )
                    report = simulate_mapping(
                        mesh, commodities, routing, config,
                        link_rate_flits_per_cycle=config.gbps_link_rate(1.2),
                        bandwidth_scale=scale,
                    )
                    per_seed.append(report.stats.mean)
                means[label] = sum(per_seed) / len(per_seed)
            rows.append((scale, means["minp"], means["split"]))
        return rows

    rows = run_once(benchmark, sweep)
    print()
    print(f"  {'load':>5} {'minp':>8} {'split':>8}")
    for scale, minp, split in rows:
        print(f"  {scale:>5.1f} {minp:>8.1f} {split:>8.1f}")
    # latency grows with load for both routings
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] > rows[0][2]
    # the single-path advantage gap shrinks / flips as load rises:
    # (minp - split) must grow from the lightest to the heaviest load
    gap_light = rows[0][1] - rows[0][2]
    gap_heavy = rows[-1][1] - rows[-1][2]
    assert gap_heavy > gap_light
