#!/usr/bin/env python
"""Machine-readable perf tracking: fast paths vs the scalar seed baselines.

Runs each hot kernel twice — once on the numpy fast path, once on the scalar
reference implementations (the seed's code, kept verbatim behind
``repro.fastpath``) — and writes ``BENCH_perf.json`` mapping kernel name to
median seconds and speedup.  Committing the JSON after each PR records the
perf trajectory across the repository's history; CI runs ``--smoke`` to
catch order-of-magnitude regressions without burning minutes.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--output BENCH_perf.json]
    PYTHONPATH=src python benchmarks/run_bench.py --smoke   # CI-sized

The pytest-benchmark suites under ``benchmarks/bench_*.py`` remain the
paper-shape checks; this runner exists to be diffable and scriptable.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import time
from contextlib import contextmanager
from pathlib import Path

from repro import fastpath
from repro.api import get_mapper
from repro.apps import vopd
from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.graphs.commodities import build_commodities
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping
from repro.metrics.comm_cost import (
    comm_cost,
    swap_cost_delta,
    swap_cost_deltas,
)
from repro.routing.min_path import min_path_routing
from repro.simnoc.config import SimConfig
from repro.simnoc.network import build_network, build_synthetic_network
from repro.simnoc.simulator import Simulator


def _median_seconds(fn, rounds: int) -> float:
    """Median wall-clock seconds of ``fn()`` over ``rounds`` runs.

    One untimed warmup run first, so lazily built caches (distance matrix,
    flow arrays) are paid once — the steady state is what the mapping loops
    actually see.
    """
    fn()
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _random_mappings(app, mesh, count: int, seed: int) -> list[Mapping]:
    rng = random.Random(seed)
    mappings = []
    for _ in range(count):
        nodes = list(mesh.nodes)
        rng.shuffle(nodes)
        mappings.append(Mapping(app, mesh, dict(zip(app.cores, nodes))))
    return mappings


def bench_comm_cost_vopd(smoke: bool):
    """Equation-7 cost of many mappings — NMAP/annealer's innermost price."""
    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(16)
    mappings = _random_mappings(app, mesh, 20 if smoke else 100, seed=42)

    def kernel():
        total = 0.0
        for mapping in mappings:
            total += comm_cost(mapping)
        return total

    return kernel, {"calls_per_round": len(mappings)}


def bench_swap_deltas_65(smoke: bool):
    """All-pairs swap screening on the 65-core Table 2 workload."""
    app = random_core_graph(35 if smoke else 65, seed=2069)
    mesh = NoCTopology.smallest_mesh_for(app.num_cores)
    mapping = _random_mappings(app, mesh, 1, seed=1)[0]
    nodes = list(mesh.nodes)

    def kernel():
        total = 0.0
        if fastpath.fast_paths_enabled():
            for i, node in enumerate(nodes):
                total += float(swap_cost_deltas(mapping, node, nodes[i + 1 :]).sum())
        else:
            for i, node_a in enumerate(nodes):
                for node_b in nodes[i + 1 :]:
                    total += swap_cost_delta(mapping, node_a, node_b)
        return total

    return kernel, {"pairs_per_round": len(nodes) * (len(nodes) - 1) // 2}


def bench_nmap_vopd(smoke: bool):
    """The full NMAP single-path run on VOPD (the paper's Figure 3 input)."""
    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
    nmap = get_mapper("nmap")
    return (lambda: nmap.run(app, mesh)), {}


def bench_nmap_65_cores(smoke: bool):
    """NMAP on the 65-core random graph — the 'few seconds' headline claim."""
    app = random_core_graph(35 if smoke else 65, seed=2069)
    mesh = NoCTopology.smallest_mesh_for(
        app.num_cores, link_bandwidth=app.total_bandwidth()
    )
    nmap = get_mapper("nmap")
    return (lambda: nmap.run(app, mesh)), {}


def bench_min_path_routing_vopd(smoke: bool):
    """Load-balanced minimum-path pricing of one VOPD mapping."""
    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
    mapping = get_mapper("nmap").run(app, mesh).mapping
    commodities = build_commodities(app, mapping)
    repeats = 5 if smoke else 20

    def kernel():
        for _ in range(repeats):
            min_path_routing(mesh, commodities)

    return kernel, {"calls_per_round": repeats}


def bench_simulate_vopd_low_load(smoke: bool):
    """Wormhole simulation at 5% load — where idle-skipping dominates."""
    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(16, link_bandwidth=app.total_bandwidth())
    mapping = get_mapper("nmap").run(app, mesh).mapping
    commodities = build_commodities(app, mapping)
    routing = min_path_routing(mesh, commodities)
    config = SimConfig(
        warmup_cycles=500,
        measure_cycles=2_000 if smoke else 20_000,
        drain_cycles=500,
        seed=3,
    )

    def kernel():
        network = build_network(
            mesh, commodities, routing, config, bandwidth_scale=0.05
        )
        return Simulator(network).run()

    return kernel, {"cycles_per_round": config.total_cycles}


def bench_simulate_dsp_low_load(smoke: bool):
    """DSP on its slow-link 2x3 mesh at 5% load: event vs cycle engine.

    Fast mode runs the event-driven engine; the baseline runs the seed's
    cycle engine (full scan — ``active_set`` follows the disabled fast-path
    switch), so the reported speedup is the engine-level win over the
    seed's simulation loop on the paper's DSP fabric.  The two engines are
    bit-consistent (``tests/properties`` pins delivered-flit counts and
    per-flow latency equality), so this is a pure wall-clock comparison.
    """
    app = dsp_filter()
    mesh = dsp_mesh(link_bandwidth=500.0)
    mapping = get_mapper("nmap").run(app, mesh).mapping
    commodities = build_commodities(app, mapping)
    routing = min_path_routing(mesh, commodities)
    config = SimConfig(
        warmup_cycles=500,
        measure_cycles=2_000 if smoke else 20_000,
        drain_cycles=500,
        seed=3,
    )

    def kernel():
        engine = "event" if fastpath.fast_paths_enabled() else "cycle"
        network = build_network(
            mesh, commodities, routing, config, bandwidth_scale=0.05
        )
        return Simulator(network, engine=engine).run()

    return kernel, {"cycles_per_round": config.total_cycles, "engines": "event-vs-cycle"}


def _saturation_network_factory(smoke: bool):
    """VOPD's 4x4 fabric under uniform traffic at/above the saturation knee.

    0.30 flits/cycle/node on 1 flit/cycle links keeps every router busy
    every cycle — the regime where the event engine has no idle time to
    skip and the vector engine's flat per-cycle advance is the whole story.
    """
    mesh = NoCTopology.mesh(4, 4, link_bandwidth=1600.0)
    config = SimConfig(
        warmup_cycles=300,
        measure_cycles=1_500 if smoke else 8_000,
        drain_cycles=500,
        seed=7,
    )
    def make(engine):
        def kernel():
            network = build_synthetic_network(mesh, config, "uniform", 0.30)
            return Simulator(network, engine=engine).run()
        return kernel
    return make, {"cycles_per_round": config.total_cycles, "load": 0.30}


@contextmanager
def _no_jit():
    """Pin the interpreted vector loops regardless of available backends."""
    prior = os.environ.get("REPRO_NO_JIT")
    os.environ["REPRO_NO_JIT"] = "1"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_NO_JIT", None)
        else:
            os.environ["REPRO_NO_JIT"] = prior


def bench_simulate_vopd_saturation(smoke: bool):
    """Interpreted vector engine vs the seed's cycle loop at saturation.

    JIT is forced off so this kernel keeps measuring the structure-of-
    arrays tier itself — the floor below guards the fallback every machine
    can run.  The compiled tier has its own kernel
    (``simulate_vopd_saturation_jit``) with a much higher floor.
    """
    make, extra = _saturation_network_factory(smoke)
    def kernel():
        engine = "vector" if fastpath.fast_paths_enabled() else "cycle"
        with _no_jit():
            return make(engine)()
    return kernel, {**extra, "engines": "vector-vs-cycle"}


def bench_simulate_vopd_saturation_jit(smoke: bool):
    """Compiled kernel tier vs the seed's cycle loop at saturation (guarded).

    The fast side is the vector engine on whichever JIT backend resolves
    (numba, or the C kernels on a bare system compiler); the baseline is
    the seed's scalar cycle loop.  ``jit.warmup()`` runs in the factory so
    the timed rounds never include compilation.  On a machine with no
    backend at all this degrades to re-measuring the interpreted tier.
    """
    from repro.simnoc.engines import jit

    make, extra = _saturation_network_factory(smoke)
    backend_name, _ = jit.warmup()
    def kernel():
        engine = "vector" if fastpath.fast_paths_enabled() else "cycle"
        return make(engine)()
    return kernel, {
        **extra, "engines": "jit-vector-vs-cycle", "jit_backend": backend_name
    }


def bench_latency_sweep_replica_batch(smoke: bool):
    """One batched kernel invocation vs per-point vector runs (documented).

    Sixteen ``latency_sweep``-shaped points advance together through
    ``run_batch(executor="replica")`` on the fast side and one at a time
    (``executor="serial"``, same vector engine, same JIT backend) on the
    baseline side — so the ratio isolates what replica batching itself
    buys.  Expect ≈ 1.0x: with the compiled kernels a sweep point is
    dominated by the Python flatten/report around the call, and replica
    batching moves zero bytes (``advance_batch`` takes per-replica
    pointers), so it saves only R-1 microsecond-scale ctypes invocations.
    The mapping behind the points comes from the request cache on both
    sides (warmed by the untimed round).  Byte-identity of the two
    executors is regression-tested in ``tests/api/test_engine.py``.
    """
    from repro.api import MapRequest, SimOptions, SimRequest, TopologySpec
    from repro.api.engine import run_batch
    from repro.simnoc.engines import jit

    backend_name, _ = jit.warmup()
    base_map = MapRequest(
        app="vopd",
        mapper="nmap",
        topology=TopologySpec.parse("mesh:4x4", link_bandwidth=6400.0),
        price_bandwidth=False,
    )
    requests = [
        SimRequest(
            map_request=base_map,
            measure_cycles=600 if smoke else 2_500,
            warmup_cycles=200,
            drain_cycles=400,
            sim_seed=11,
            options=SimOptions(
                engine="vector", traffic="uniform", injection_rate=round(rate, 3)
            ),
        )
        for rate in (0.02 + 0.02 * i for i in range(16))
    ]

    def kernel():
        executor = "replica" if fastpath.fast_paths_enabled() else "serial"
        return run_batch(requests, executor=executor)

    return kernel, {
        "points": len(requests),
        "engines": "replica-vs-serial-vector",
        "jit_backend": backend_name,
    }


def bench_simulate_vopd_saturation_event(smoke: bool):
    """Event engine vs the seed's cycle loop at the same saturation load.

    Documents *why* the vector engine exists: with no dead cycles to skip
    the event engine's speedup collapses toward (or below) 1x, exactly
    where the vector engine still holds its margin.
    """
    make, extra = _saturation_network_factory(smoke)
    def kernel():
        engine = "event" if fastpath.fast_paths_enabled() else "cycle"
        return make(engine)()
    return kernel, {**extra, "engines": "event-vs-cycle"}


def bench_simulate_24x24_sharded(smoke: bool):
    """Sharded parallel engine (4 workers) vs one-process vector, 24x24 mesh.

    The scale the partition subsystem exists for: a 576-node fabric at
    saturation, cut 4 ways by the greedy-edge partitioner, one worker
    process per shard exchanging boundary flits at cycle barriers.  Both
    sides run with fast paths on and JIT pinned off, so the ratio is the
    parallel protocol vs the same interpreted per-cycle sweep — engine
    choice is the only variable.  The 1.5x floor binds only on hosts with
    at least 4 CPUs (see ``FLOOR_MIN_CPUS``): on fewer cores the workers
    time-slice one core and the barrier overhead makes the ratio *below*
    1x, which the committed JSON records honestly rather than hiding.
    """
    mesh = NoCTopology.mesh(24, 24, link_bandwidth=1600.0)
    config = SimConfig(
        warmup_cycles=100 if smoke else 300,
        measure_cycles=300 if smoke else 1_500,
        drain_cycles=100 if smoke else 500,
        seed=7,
    )
    workers = 4

    def kernel():
        engine = "sharded" if fastpath.fast_paths_enabled() else "vector"
        with fastpath.fast_paths(), _no_jit():
            network = build_synthetic_network(mesh, config, "uniform", 0.30)
            if engine == "sharded":
                sim = Simulator(
                    network,
                    engine="sharded",
                    shards=workers,
                    partitioner="greedy-edge",
                )
            else:
                sim = Simulator(network, engine="vector")
            return sim.run()

    return kernel, {
        "cycles_per_round": config.total_cycles,
        "load": 0.30,
        "engines": "sharded4-vs-vector",
        "workers": workers,
        "host_cpus": os.cpu_count(),
    }


def bench_simulate_vopd_saturation_active_set(smoke: bool):
    """Vector engine vs the cycle engine *with fast paths on*, at saturation.

    The harness's baseline mode normally disables fast paths (the seed
    reference); this kernel instead pins the cycle engine's own production
    configuration on both sides, so the reported speedup is the honest
    engine-vs-engine margin rather than engine-plus-fastpath.  The vector
    side runs its production configuration too — the compiled kernel tier
    when a JIT backend resolves, the interpreted loops otherwise.
    """
    make, extra = _saturation_network_factory(smoke)
    def kernel():
        engine = "vector" if fastpath.fast_paths_enabled() else "cycle"
        with fastpath.fast_paths():
            return make(engine)()
    return kernel, {**extra, "engines": "vector-vs-cycle-fastpath"}


KERNELS = {
    "comm_cost_vopd": bench_comm_cost_vopd,
    "swap_deltas_65_cores": bench_swap_deltas_65,
    "nmap_vopd": bench_nmap_vopd,
    "nmap_65_cores": bench_nmap_65_cores,
    "min_path_routing_vopd": bench_min_path_routing_vopd,
    "simulate_vopd_low_load": bench_simulate_vopd_low_load,
    "simulate_dsp_low_load": bench_simulate_dsp_low_load,
    "simulate_vopd_saturation": bench_simulate_vopd_saturation,
    "simulate_vopd_saturation_jit": bench_simulate_vopd_saturation_jit,
    "simulate_vopd_saturation_event": bench_simulate_vopd_saturation_event,
    "simulate_vopd_saturation_active_set": bench_simulate_vopd_saturation_active_set,
    "simulate_24x24_sharded": bench_simulate_24x24_sharded,
    "latency_sweep_replica_batch": bench_latency_sweep_replica_batch,
}

#: Guarded speedup floors: kernels named here fail the run (under
#: ``--enforce-floors``, which CI passes via ``make bench-smoke``) when
#: their measured speedup drops below the floor.  Floors sit well under the
#: committed full-bench margins (BENCH_perf.json) so loaded CI runners
#: don't flake, but far above 1.0 so a real regression — the vector engine
#: losing its saturation win, the mapping kernels losing their
#: vectorization — fails loudly.
FLOORS = {
    "simulate_vopd_saturation": 2.5,
    "simulate_vopd_saturation_jit": 12.0,
    "simulate_vopd_low_load": 5.0,
    "simulate_dsp_low_load": 2.0,
    "comm_cost_vopd": 2.0,
    "swap_deltas_65_cores": 2.0,
    "simulate_24x24_sharded": 1.5,
}

#: Floors that only bind with enough CPU cores.  The sharded engine's win
#: is multi-core parallelism; on a host with fewer cores than workers the
#: speedup is physically unreachable, so the floor is waived (recorded in
#: the JSON as ``floor_waived``) instead of failing CI on small runners.
FLOOR_MIN_CPUS = {
    "simulate_24x24_sharded": 4,
}


def _effective_floor(name: str) -> tuple[float | None, str | None]:
    """The floor that applies on this host, and the waiver reason if any."""
    floor = FLOORS.get(name)
    needed = FLOOR_MIN_CPUS.get(name)
    cpus = os.cpu_count() or 1
    if floor is not None and needed is not None and cpus < needed:
        return None, (
            f"floor {floor} waived: needs >= {needed} CPUs, host has {cpus}"
        )
    return floor, None

#: Documentation kernels: they exist to *record* a ratio (the event
#: engine's ~1x collapse at saturation), not to win one, so the global
#: ``--min-speedup`` gate skips them — scheduler noise around 1x must not
#: fail CI.  Per-kernel FLOORS still apply if one is ever added here.
UNGUARDED = {
    "simulate_vopd_saturation_event",
    "simulate_vopd_saturation_active_set",
    "latency_sweep_replica_batch",
    # Guarded by its FLOOR (with the CPU-count waiver) instead of the
    # global gate: on hosts below FLOOR_MIN_CPUS the honest ratio is < 1x.
    "simulate_24x24_sharded",
}


def run_benches(smoke: bool, rounds: int) -> dict:
    # Compile whatever kernel backend resolves before any clock starts, so
    # no kernel's first timed round ever includes compilation.
    from repro.simnoc.engines import jit

    backend_name, backend_reason = jit.warmup()
    print(f"jit backend: {backend_name} ({backend_reason})")

    results: dict[str, dict] = {}
    for name, factory in KERNELS.items():
        kernel, extra = factory(smoke)
        with fastpath.fast_paths():
            fast = _median_seconds(kernel, rounds)
        with fastpath.scalar_reference():
            baseline = _median_seconds(kernel, rounds)
        floor, waived = _effective_floor(name)
        results[name] = {
            "fast_median_s": fast,
            "seed_baseline_median_s": baseline,
            "speedup": baseline / fast if fast > 0 else float("inf"),
            "rounds": rounds,
            "floor": floor,
            **({"floor_waived": waived} if waived else {}),
            **extra,
        }
        print(
            f"{name:36s} fast {fast * 1e3:9.3f} ms   seed {baseline * 1e3:9.3f} ms"
            f"   speedup {baseline / fast:6.2f}x"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_perf.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workloads (seconds, not minutes)",
    )
    parser.add_argument("--rounds", type=int, default=None, help="timing rounds")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero if any kernel's speedup falls below this",
    )
    parser.add_argument(
        "--enforce-floors",
        action="store_true",
        help="exit non-zero if any guarded kernel falls below its floor",
    )
    args = parser.parse_args()
    rounds = args.rounds if args.rounds is not None else (3 if args.smoke else 5)

    results = run_benches(args.smoke, rounds)
    report = {
        "meta": {
            "mode": "smoke" if args.smoke else "full",
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "kernels": results,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None:
        slow = {
            name: entry["speedup"]
            for name, entry in results.items()
            if name not in UNGUARDED and entry["speedup"] < args.min_speedup
        }
        if slow:
            raise SystemExit(
                f"kernels below --min-speedup {args.min_speedup}: {slow}"
            )

    if args.enforce_floors:
        regressed = {
            name: (round(entry["speedup"], 2), entry["floor"])
            for name, entry in results.items()
            if entry["floor"] is not None and entry["speedup"] < entry["floor"]
        }
        if regressed:
            raise SystemExit(
                "guarded kernels regressed below their speedup floors "
                f"(measured, floor): {regressed}"
            )


if __name__ == "__main__":
    main()
