"""Figure 5c bench: average packet latency vs link bandwidth (simulator).

Shape asserted (paper): latency rises as bandwidth falls; the single-path
curve sits above the split curve at the low-bandwidth end and rises more
sharply across the sweep.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig5c import run_fig5c


def test_fig5c_latency_sweep(benchmark):
    table = run_once(
        benchmark,
        run_fig5c,
        sweep_gbps=(1.1, 1.3, 1.5, 1.8),
        seeds=(1, 2),
        measure_cycles=15_000,
    )
    print()
    print(table.render())
    lows = table.rows[0]  # 1.1 GB/s
    highs = table.rows[-1]  # 1.8 GB/s
    _bw_low, minp_low, split_low = lows
    _bw_high, minp_high, split_high = highs
    # latency falls with bandwidth for both routings
    assert minp_low > minp_high
    assert split_low > split_high
    # single path suffers more at the congested end and grows faster
    assert minp_low > split_low
    assert (minp_low - minp_high) > (split_low - split_high)
