"""Figure 3 bench: communication cost of the four algorithms on six apps.

Shape asserted (paper): NMAP and PBB perform well for all applications when
compared to PMAP and GMAP.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig3 import run_fig3


def test_fig3_communication_cost(benchmark):
    table = run_once(benchmark, run_fig3)
    print()
    print(table.render())
    assert len(table.rows) == 6
    for row in table.rows:
        app, pmap_cost, gmap_cost, pbb_cost, nmap_cost = row
        # every cost finite (all algorithms feasible at the Fig 3 constraint)
        assert all(c != float("inf") for c in (pmap_cost, gmap_cost, pbb_cost, nmap_cost))
        # the paper's shape: the NMAP/PBB pair is never beaten by PMAP, and
        # NMAP stays within a whisker of GMAP everywhere
        assert min(nmap_cost, pbb_cost) <= pmap_cost + 1e-9, app
        assert nmap_cost <= gmap_cost * 1.05, app
