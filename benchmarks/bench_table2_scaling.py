"""Table 2 bench: PBB vs NMAP on random graphs of 25-65 cores.

Shape asserted (paper: ratios 1.54-1.85): NMAP beats the bounded-queue PBB
on every size, and its advantage at 65 cores clearly exceeds that at 25.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.table2 import run_table2


def test_table2_scaling(benchmark):
    table = run_once(benchmark, run_table2)
    print()
    print(table.render())
    ratios = {row[0]: row[3] for row in table.rows}
    assert set(ratios) == {25, 35, 45, 55, 65}
    assert all(ratio >= 1.0 for ratio in ratios.values())
    assert ratios[65] > ratios[25]
    assert ratios[65] >= 1.3
