#!/usr/bin/env python3
"""CI smoke for the job service: a real server process, end to end.

Boots ``repro serve`` as a subprocess (ephemeral port, on-disk store,
``executor=process`` — the production configuration), then proves the
contracts the service ships on:

* health and mapper introspection answer;
* a mapping served over HTTP matches the local ``run_map`` exactly;
* two concurrent identical submissions execute the underlying request
  once and both read byte-identical result bodies (in-flight dedup);
* a resubmission after that is a store hit with the same bytes (warm);
* a fresh server process on the same store serves the same bytes without
  executing anything (cold start, persistent tier);
* a streamed sweep delivers every slot in order;
* SIGTERM drains cleanly — exit code 0, no dropped work.

Exits non-zero on the first violated contract.  Run via ``make
serve-smoke``; wired into ``make check``.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.api import MapRequest, SimOptions, SimRequest, run_map  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

ANNOUNCE = re.compile(r"listening on http://[\d.]+:(\d+)")


def boot(store: str) -> tuple[subprocess.Popen, ServiceClient]:
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--store", store, "--executor", "process",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"server exited before announcing (rc={proc.wait()})"
            )
        match = ANNOUNCE.search(line)
        if match:
            return proc, ServiceClient(
                f"http://127.0.0.1:{match.group(1)}", timeout=120.0
            )
    proc.kill()
    raise SystemExit("server did not announce a port within 60 s")


def check(condition: bool, label: str) -> None:
    if not condition:
        raise SystemExit(f"serve-smoke FAILED: {label}")
    print(f"  ok: {label}")


def main() -> None:
    map_request = MapRequest(app="vopd", price_bandwidth=False)
    sim_request = SimRequest(
        map_request=map_request,
        measure_cycles=400,
        warmup_cycles=100,
        drain_cycles=200,
        options=SimOptions(traffic="uniform", injection_rate=0.05, engine="event"),
    )

    with tempfile.TemporaryDirectory() as store:
        print("== cold server ==")
        proc, client = boot(store)
        try:
            check(client.health()["status"] == "ok", "health answers ok")
            check(
                any(m["name"] == "nmap" for m in client.mappers()),
                "mapper registry served",
            )
            check(
                client.map(map_request).to_dict()
                == run_map(map_request).to_dict(),
                "HTTP mapping matches local run_map",
            )

            # In-flight dedup: two identical submissions racing.
            before = client.health()["store"]["executed"]
            tickets: list = [None, None]

            def submit(slot: int) -> None:
                tickets[slot] = client.submit(sim_request)

            threads = [
                threading.Thread(target=submit, args=(slot,)) for slot in (0, 1)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            bodies = set()
            for ticket in tickets:
                client.wait(ticket.id, timeout=300)
                bodies.add(client.result_raw(ticket.id))
            executed = client.health()["store"]["executed"] - before
            check(executed == 1, f"duplicate pair executed once (got {executed})")
            check(len(bodies) == 1, "duplicate pair bodies byte-identical")
            warm_bytes = bodies.pop()

            # Warm resubmission: store hit, same bytes.
            ticket = client.submit(sim_request)
            client.wait(ticket.id, timeout=300)
            check(
                client.result_raw(ticket.id) == warm_bytes,
                "warm resubmission byte-identical",
            )
            check(
                client.status(ticket.id)["slots"][0]["cached"] is True,
                "warm resubmission flagged cached",
            )

            # Streamed sweep arrives in order.
            sweep = [
                SimRequest(
                    map_request=map_request,
                    measure_cycles=400,
                    warmup_cycles=100,
                    drain_cycles=200,
                    options=SimOptions(
                        traffic="uniform", injection_rate=rate, engine="event"
                    ),
                )
                for rate in (0.02, 0.08)
            ]
            events = list(client.stream(client.submit(sweep).id))
            check(
                [event.index for event in events] == [0, 1],
                "sweep streamed in slot order",
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=120)
        check(rc == 0, f"SIGTERM drains to exit 0 (got {rc})")

        print("== fresh server, same store ==")
        proc, client = boot(store)
        try:
            before = client.health()["store"]["executed"]
            ticket = client.submit(sim_request)
            client.wait(ticket.id, timeout=300)
            check(
                client.result_raw(ticket.id) == warm_bytes,
                "cold restart serves byte-identical body from disk",
            )
            check(
                client.health()["store"]["executed"] == before,
                "cold restart executed nothing",
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=120)
        check(rc == 0, f"second SIGTERM drains to exit 0 (got {rc})")

    print("serve-smoke passed")


if __name__ == "__main__":
    main()
