#!/usr/bin/env python3
"""CI chaos smoke for the job service: kill -9, recover, byte-identical.

The serve smoke (scripts/serve_smoke.py) proves the graceful paths; this
script proves the crash-durability contract the write-ahead journal ships:

* a real ``repro serve`` subprocess is SIGKILLed mid-batch — one job
  finished, one executing, one queued;
* a fresh server process on the same store replays the unfinished jobs
  under their **original ids** (pre-crash pollers just see them complete)
  and marks them ``recovered``;
* every result — finished before the crash or replayed after it — is
  byte-identical to a local ``run_map`` of the same request;
* a journal whose tail was torn by the crash (simulated with appended
  garbage) still boots: the corrupt record is dropped, the service
  answers, and the warm store still serves the same bytes.

Exits non-zero on the first violated contract.  Run via ``make
chaos-smoke``; wired into ``make check``.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.api import MapRequest, run_map  # noqa: E402
from repro.service import ServiceClient, canonical_response_bytes  # noqa: E402

ANNOUNCE = re.compile(r"listening on http://[\d.]+:(\d+)")
SLOW_TAG = "chaos-slow"


def boot(store: str) -> tuple[subprocess.Popen, ServiceClient]:
    env = dict(
        os.environ,
        PYTHONPATH=os.path.join(REPO, "src"),
        # Every matching slot sleeps, so the SIGKILL below lands
        # deterministically mid-batch (job 1 done, job 2 executing).
        REPRO_SLOW_TAG=SLOW_TAG,
        REPRO_SLOW_SECONDS="0.8",
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--store", store,
            "--executor", "serial", "--workers", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(f"server exited before announcing (rc={proc.wait()})")
        match = ANNOUNCE.search(line)
        if match:
            return proc, ServiceClient(
                f"http://127.0.0.1:{match.group(1)}",
                timeout=120.0,
                retries=3,
                backoff=0.2,
            )
    proc.kill()
    raise SystemExit("server did not announce a port within 60 s")


def check(condition: bool, label: str) -> None:
    if not condition:
        raise SystemExit(f"chaos-smoke FAILED: {label}")
    print(f"  ok: {label}")


def wait_done(client: ServiceClient, job_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        envelope = client.status(job_id)
        if envelope["status"] == "done":
            return envelope
        time.sleep(0.05)
    raise SystemExit(f"chaos-smoke FAILED: job {job_id} never completed")


def main() -> None:
    requests = [
        MapRequest(app=app, price_bandwidth=False, tag=SLOW_TAG)
        for app in ("vopd", "dsp", "pip")
    ]
    # The ground truth the recovered results must match byte-for-byte.
    reference = [canonical_response_bytes(run_map(r)) for r in requests]

    with tempfile.TemporaryDirectory() as store:
        print("== server, about to be killed ==")
        proc, client = boot(store)
        tickets = [client.submit(request) for request in requests]
        # Let the first job finish (its tombstone lands), then SIGKILL
        # while job 2 executes and job 3 sits in the queue.
        wait_done(client, tickets[0].id)
        unfinished = [
            t.id for t in tickets[1:]
            if client.status(t.id)["status"] != "done"
        ]
        check(len(unfinished) >= 1, "jobs still in flight at kill time")
        proc.kill()  # SIGKILL: no drain, no atexit, no flush
        proc.wait(timeout=30)
        print("  ok: server SIGKILLed mid-batch")

        print("== fresh server, same store: recovery ==")
        proc, client = boot(store)
        try:
            for index, ticket in enumerate(tickets):
                if ticket.id in unfinished:
                    # Replayed under the original id, flagged recovered.
                    envelope = wait_done(client, ticket.id)
                    check(
                        envelope["recovered"] is True,
                        f"job {index + 1} replayed as recovered",
                    )
                    check(
                        client.result_raw(ticket.id) == reference[index],
                        f"job {index + 1} recovered byte-identical",
                    )
                else:
                    # Finished pre-crash: tombstoned, served from the store.
                    fresh = client.submit(requests[index])
                    wait_done(client, fresh.id)
                    check(
                        client.result_raw(fresh.id) == reference[index],
                        f"job {index + 1} store entry survived byte-identical",
                    )
            journal = client.health()["journal"]
            check(journal is not None, "journal active on the store root")
            deadline = time.monotonic() + 30
            while client.health()["journal"]["pending"] and (
                time.monotonic() < deadline
            ):
                time.sleep(0.05)
            check(
                client.health()["journal"]["pending"] == 0,
                "journal fully tombstoned after recovery",
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=120)
        check(rc == 0, f"drain after recovery exits 0 (got {rc})")

        print("== torn journal tail ==")
        journal_path = os.path.join(store, "journal.ndjson")
        with open(journal_path, "ab") as handle:
            handle.write(b'deadbeef0123 {"type":"accepted","job":"to')
        proc, client = boot(store)
        try:
            check(client.health()["status"] == "ok", "boots past the torn tail")
            check(
                client.health()["journal"]["pending"] == 0,
                "torn record dropped, nothing ghost-replayed",
            )
            ticket = client.submit(requests[0])
            wait_done(client, ticket.id)
            check(
                client.result_raw(ticket.id) == reference[0],
                "warm store still serves identical bytes",
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=120)
        check(rc == 0, f"final drain exits 0 (got {rc})")

    print("chaos-smoke passed")


if __name__ == "__main__":
    main()
