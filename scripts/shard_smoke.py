#!/usr/bin/env python3
"""CI smoke for the partition subsystem and the sharded parallel engine.

Three contracts, checked end to end on a 16x16 mesh (256 nodes — big
enough that the 4-way partition has real interior *and* boundary traffic):

* the greedy-edge partitioner cuts the fabric into 4 balanced,
  JSON-round-trippable shards;
* the sharded engine — four worker processes exchanging boundary flits at
  cycle barriers — produces a report **byte-identical** (as the full
  dataclass repr, every statistic included) to the single-process cycle
  engine's, at a load that keeps every boundary link busy;
* the flit traces agree event for event, so the identity is not a lucky
  aggregate.

Exits non-zero on the first violated contract.  Run via ``make
shard-smoke``; wired into ``make check``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.graphs.topology import NoCTopology  # noqa: E402
from repro.partition import PartitionSpec, partition_topology  # noqa: E402
from repro.simnoc import (  # noqa: E402
    SimConfig,
    Simulator,
    build_synthetic_network,
)
from repro.simnoc.trace import TraceRecorder  # noqa: E402

SHARDS = 4


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def main() -> None:
    if "fork" not in multiprocessing.get_all_start_methods():
        print("SKIP: sharded engine needs the fork start method")
        return

    fabric = NoCTopology.mesh(16, 16, link_bandwidth=1600.0)

    spec = partition_topology(fabric, SHARDS, "greedy-edge")
    if sorted(spec.shard_sizes) != [64] * SHARDS:
        fail(f"unbalanced 16x16 partition: {spec.shard_sizes}")
    if PartitionSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) != spec:
        fail("partition spec does not survive a JSON round trip")
    print(
        f"partition: {SHARDS} shards of 64, edge cut {spec.edge_cut}"
        f"/{spec.num_edges} ({spec.cut_fraction * 100:.1f}%)"
    )

    def run(engine: str, **kwargs):
        config = SimConfig(
            warmup_cycles=200, measure_cycles=800, drain_cycles=300, seed=11
        )
        network = build_synthetic_network(fabric, config, "uniform", 0.25)
        recorder = TraceRecorder(max_events=10**6)
        report = Simulator(
            network, trace=recorder, engine=engine, **kwargs
        ).run()
        return repr(report), recorder.events, report

    sharded_blob, sharded_events, sharded_report = run(
        "sharded", shards=SHARDS, partitioner="greedy-edge"
    )
    cycle_blob, cycle_events, _ = run("cycle")

    if sharded_blob != cycle_blob:
        fail("sharded report is not byte-identical to the cycle engine's")
    if sharded_events != cycle_events:
        fail("sharded flit trace diverges from the cycle engine's")

    print(
        f"sharded({SHARDS}) == cycle on 16x16: report {len(sharded_blob)} "
        f"bytes identical, {len(sharded_events)} trace events identical, "
        f"{sharded_report.packets_delivered} packets delivered"
    )
    print("PASS: shard smoke")


if __name__ == "__main__":
    main()
