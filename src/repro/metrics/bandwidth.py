"""Minimum uniform link bandwidth required by a mapping (Figure 4's metric).

With uniform link capacities, the smallest capacity that satisfies
Inequality 3 equals the maximum aggregate link load produced by the routing
discipline.  Deterministic routers (XY, the quadrant heuristic) give it
directly; for split traffic it is the min-congestion LP's optimum.
"""

from __future__ import annotations

from repro.graphs.commodities import build_commodities
from repro.mapping.base import Mapping
from repro.routing.base import RoutingResult
from repro.routing.dimension_ordered import xy_routing
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion


def min_bandwidth_xy(mapping: Mapping) -> tuple[float, RoutingResult]:
    """Min uniform capacity under dimension-ordered routing (DPMAP/DGMAP)."""
    commodities = build_commodities(mapping.core_graph, mapping)
    routing = xy_routing(mapping.topology, commodities)
    return routing.max_link_load(), routing


def min_bandwidth_min_path(mapping: Mapping) -> tuple[float, RoutingResult]:
    """Min uniform capacity under the load-balancing quadrant heuristic."""
    commodities = build_commodities(mapping.core_graph, mapping)
    routing = min_path_routing(mapping.topology, commodities)
    return routing.max_link_load(), routing


def min_bandwidth_split(
    mapping: Mapping, quadrant_only: bool = False
) -> tuple[float, RoutingResult]:
    """Min uniform capacity with traffic splitting (NMAPTM/NMAPTA).

    Args:
        quadrant_only: True restricts each commodity to its minimum paths
            (NMAPTM, Equation 10); False allows all paths (NMAPTA).
    """
    commodities = build_commodities(mapping.core_graph, mapping)
    return solve_min_congestion(mapping.topology, commodities, quadrant_only=quadrant_only)


def link_utilizations(routing: RoutingResult) -> dict[tuple[int, int], float]:
    """Load / capacity per directed link under the topology's capacities."""
    topology = routing.topology
    return {
        link: load / topology.link_bandwidth(*link)
        for link, load in routing.link_loads().items()
    }
