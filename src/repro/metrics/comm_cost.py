"""Communication cost (Equation 7) and related delay proxies.

``commcost = sum_k vl(d_k) * dist(source(d_k), dest(d_k))`` where ``dist``
is the minimum hop count on the mesh.  Note the cost depends only on the
*mapping*, not on which minimum paths the router picks — routing affects
feasibility (Inequality 3), not this objective.  That property is what lets
NMAP pre-screen swap candidates cheaply (see DESIGN.md).

Every kernel here exists twice: the scalar loop from the seed implementation
(kept verbatim as ``*_reference``, the oracle the property tests compare
against) and a numpy fast path over the cached array views
(:meth:`CoreGraph.flow_arrays`, :meth:`Mapping.position_arrays`,
:meth:`NoCTopology.distance_matrix`).  Which one runs is governed by
:mod:`repro.fastpath`.  Bandwidth labels in this repository are
integer-valued (VOPD/MPEG tables, rounded random graphs), so every product
and sum is exact in float64 and the two paths agree bit for bit; see
PERFORMANCE.md for the argument.
"""

from __future__ import annotations

import numpy as np

from repro import fastpath
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping

#: Stand-in for the pseudo-code's ``maxvalue`` (cost of an infeasible mapping).
MAXVALUE = float("inf")


def comm_cost_reference(mapping: Mapping) -> float:
    """Equation 7 for a complete mapping — the scalar reference loop.

    Raises:
        repro.errors.MappingError: via :meth:`Mapping.node_of` when a flow
            endpoint is unmapped.
    """
    topology = mapping.topology
    total = 0.0
    for flow in mapping.core_graph.flows():
        total += flow.bandwidth * topology.distance(
            mapping.node_of(flow.src), mapping.node_of(flow.dst)
        )
    return total


def comm_cost(mapping: Mapping) -> float:
    """Equation 7 for a complete mapping.

    Vectorized as one gather over the cached hop-distance matrix when fast
    paths are enabled; falls back to :func:`comm_cost_reference` (and its
    exact error behaviour) on partial mappings.

    Raises:
        repro.errors.MappingError: via :meth:`Mapping.node_of` when a flow
            endpoint is unmapped.
    """
    if not fastpath.fast_paths_enabled():
        return comm_cost_reference(mapping)
    src, dst, bw = mapping.core_graph.flow_arrays()
    if src.size == 0:
        return 0.0
    positions, _ = mapping.position_arrays()
    src_nodes = positions[src]
    dst_nodes = positions[dst]
    if src_nodes.min() < 0 or dst_nodes.min() < 0:
        return comm_cost_reference(mapping)
    distances = mapping.topology.distance_matrix()
    return float(bw @ distances[src_nodes, dst_nodes])


def comm_cost_limit_reference(mapping: Mapping, limit: float) -> float:
    """Equation 7 with early exit once the partial sum exceeds ``limit``.

    Used by the swap loops: most candidate swaps are worse than the current
    best, so the scan usually stops early.  Returns a value ``> limit``
    (not necessarily the exact cost) when the limit is exceeded.
    """
    topology = mapping.topology
    total = 0.0
    for flow in mapping.core_graph.flows():
        total += flow.bandwidth * topology.distance(
            mapping.node_of(flow.src), mapping.node_of(flow.dst)
        )
        if total > limit:
            return total
    return total


def comm_cost_limit(mapping: Mapping, limit: float) -> float:
    """Equation 7 capped at ``limit`` — see :func:`comm_cost_limit_reference`.

    The fast path computes the exact full sum in one vectorized pass (which
    is cheaper than any scalar early exit) and therefore still satisfies the
    contract: the returned value exceeds ``limit`` iff the true cost does.
    """
    if not fastpath.fast_paths_enabled():
        return comm_cost_limit_reference(mapping, limit)
    return comm_cost(mapping)


def average_hop_count(mapping: Mapping) -> float:
    """Bandwidth-weighted mean hop distance — the paper's "average delay".

    Equals ``comm_cost / total_bandwidth``; 0.0 for a graph without flows.
    """
    total_bw = mapping.core_graph.total_bandwidth()
    if total_bw == 0:
        return 0.0
    return comm_cost(mapping) / total_bw


def swap_cost_delta(mapping: Mapping, node_a: int, node_b: int) -> float:
    """Exact change in Equation 7 if the contents of two nodes were swapped.

    Only flows incident to the affected cores change, so this is
    ``O(deg(a) + deg(b))`` instead of ``O(|E|)`` — the workhorse of NMAP's
    improvement loop on large random graphs (Table 2).  Single-pair calls
    (the annealer's move loop) stay on this scalar kernel — its hop lookups
    already hit the topology's cached distance table, and numpy dispatch
    overhead would dominate at ``O(deg)`` size; batch candidate scans should
    use :func:`swap_cost_deltas` instead.
    """
    topology = mapping.topology
    graph = mapping.core_graph
    core_a = mapping.core_at(node_a)
    core_b = mapping.core_at(node_b)
    moved = {}
    if core_a is not None:
        moved[core_a] = node_b
    if core_b is not None:
        moved[core_b] = node_a
    if not moved:
        return 0.0

    def located(core: str) -> int:
        return moved.get(core, mapping.node_of(core))

    delta = 0.0
    seen_pairs: set[tuple[str, str]] = set()
    for core in moved:
        for other in graph.neighbors(core):
            pair = (core, other) if core <= other else (other, core)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            bandwidth = graph.traffic_between(core, other)
            old = topology.distance(mapping.node_of(core), mapping.node_of(other))
            new = topology.distance(located(core), located(other))
            delta += bandwidth * (new - old)
    return delta


#: The scalar kernel doubles as the reference oracle for the batch scorer.
swap_cost_delta_reference = swap_cost_delta


def swap_cost_deltas(
    mapping: Mapping, node_a: int, candidates: "np.ndarray | list[int]"
) -> np.ndarray:
    """Equation-7 deltas for swapping ``node_a`` with *every* candidate node.

    One vectorized call replaces ``len(candidates)`` scalar
    :func:`swap_cost_delta` evaluations — the inner ``j`` scan of NMAP's
    pairwise-improvement loop and the annealer's candidate screens.  For
    each candidate ``b`` (current cores ``ca`` on ``node_a``, ``cb`` on
    ``b``, either possibly empty) the delta decomposes as::

        delta(a, b) = S(ca, a, b) + S(cb, b, a) + 2 * w(ca, cb) * D[a, b]

    where ``S(c, u, v)`` is the cost change of moving core ``c`` from node
    ``u`` to ``v`` with all its neighbors pinned, and the last term cancels
    the double-counted ``ca``–``cb`` edge (their mutual distance is
    unchanged by the swap).  ``S`` terms are evaluated as gathers over the
    distance matrix: a dense ``(B, deg(ca))`` block for the first, a
    CSR segment-sum over every candidate's neighborhood for the second.

    Falls back to per-pair :func:`swap_cost_delta_reference` calls (same
    results, same exceptions) for out-of-range nodes or partial mappings.

    Returns:
        ``float64`` array of deltas, one per candidate, in candidate order.
    """
    nodes = np.asarray(candidates, dtype=np.int64)
    if nodes.size == 0:
        return np.zeros(0, dtype=np.float64)

    def _fallback() -> np.ndarray:
        return np.array(
            [swap_cost_delta_reference(mapping, node_a, int(b)) for b in nodes],
            dtype=np.float64,
        )

    topology = mapping.topology
    num_nodes = topology.num_nodes
    if (
        not fastpath.fast_paths_enabled()
        or not (0 <= node_a < num_nodes)
        or int(nodes.min()) < 0
        or int(nodes.max()) >= num_nodes
    ):
        return _fallback()

    distances = topology.distance_matrix()
    positions, node_core = mapping.position_arrays()
    indptr, nbr_idx, nbr_wt = mapping.core_graph.adjacency_arrays()

    deltas = np.zeros(nodes.size, dtype=np.float64)
    pair_wt = np.zeros(nodes.size, dtype=np.float64)
    cand_cores = node_core[nodes]
    core_a = int(node_core[node_a])

    if core_a >= 0:
        lo, hi = int(indptr[core_a]), int(indptr[core_a + 1])
        a_nbrs = nbr_idx[lo:hi]
        a_wts = nbr_wt[lo:hi]
        if a_nbrs.size:
            nbr_pos = positions[a_nbrs]
            if int(nbr_pos.min()) < 0:
                return _fallback()
            deltas += distances[np.ix_(nodes, nbr_pos)] @ a_wts
            deltas -= float(a_wts @ distances[node_a, nbr_pos])
            weight_of = np.zeros(positions.size, dtype=np.float64)
            weight_of[a_nbrs] = a_wts
            mapped = cand_cores >= 0
            pair_wt[mapped] = weight_of[cand_cores[mapped]]

    mapped = cand_cores >= 0
    if mapped.any():
        mapped_cores = cand_cores[mapped]
        starts = indptr[mapped_cores]
        counts = indptr[mapped_cores + 1] - starts
        total = int(counts.sum())
        if total:
            segments = np.repeat(np.arange(mapped_cores.size), counts)
            offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            flat = starts[segments] + offsets
            b_nbrs = nbr_idx[flat]
            b_wts = nbr_wt[flat]
            nbr_pos = positions[b_nbrs]
            if int(nbr_pos.min()) < 0:
                return _fallback()
            b_rep = nodes[mapped][segments]
            contrib = b_wts * (distances[node_a, nbr_pos] - distances[b_rep, nbr_pos])
            deltas[mapped] += np.bincount(
                segments, weights=contrib, minlength=mapped_cores.size
            )

    deltas += 2.0 * pair_wt * distances[node_a, nodes]
    return deltas
