"""Communication cost (Equation 7) and related delay proxies.

``commcost = sum_k vl(d_k) * dist(source(d_k), dest(d_k))`` where ``dist``
is the minimum hop count on the mesh.  Note the cost depends only on the
*mapping*, not on which minimum paths the router picks — routing affects
feasibility (Inequality 3), not this objective.  That property is what lets
NMAP pre-screen swap candidates cheaply (see DESIGN.md).
"""

from __future__ import annotations

from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping

#: Stand-in for the pseudo-code's ``maxvalue`` (cost of an infeasible mapping).
MAXVALUE = float("inf")


def comm_cost(mapping: Mapping) -> float:
    """Equation 7 for a complete mapping.

    Raises:
        repro.errors.MappingError: via :meth:`Mapping.node_of` when a flow
            endpoint is unmapped.
    """
    topology = mapping.topology
    total = 0.0
    for flow in mapping.core_graph.flows():
        total += flow.bandwidth * topology.distance(
            mapping.node_of(flow.src), mapping.node_of(flow.dst)
        )
    return total


def comm_cost_limit(mapping: Mapping, limit: float) -> float:
    """Equation 7 with early exit once the partial sum exceeds ``limit``.

    Used by the swap loops: most candidate swaps are worse than the current
    best, so the scan usually stops early.  Returns a value ``> limit``
    (not necessarily the exact cost) when the limit is exceeded.
    """
    topology = mapping.topology
    total = 0.0
    for flow in mapping.core_graph.flows():
        total += flow.bandwidth * topology.distance(
            mapping.node_of(flow.src), mapping.node_of(flow.dst)
        )
        if total > limit:
            return total
    return total


def average_hop_count(mapping: Mapping) -> float:
    """Bandwidth-weighted mean hop distance — the paper's "average delay".

    Equals ``comm_cost / total_bandwidth``; 0.0 for a graph without flows.
    """
    total_bw = mapping.core_graph.total_bandwidth()
    if total_bw == 0:
        return 0.0
    return comm_cost(mapping) / total_bw


def swap_cost_delta(mapping: Mapping, node_a: int, node_b: int) -> float:
    """Exact change in Equation 7 if the contents of two nodes were swapped.

    Only flows incident to the affected cores change, so this is
    ``O(deg(a) + deg(b))`` instead of ``O(|E|)`` — the workhorse of NMAP's
    improvement loop on large random graphs (Table 2).
    """
    topology = mapping.topology
    graph = mapping.core_graph
    core_a = mapping.core_at(node_a)
    core_b = mapping.core_at(node_b)
    moved = {}
    if core_a is not None:
        moved[core_a] = node_b
    if core_b is not None:
        moved[core_b] = node_a
    if not moved:
        return 0.0

    def located(core: str) -> int:
        return moved.get(core, mapping.node_of(core))

    delta = 0.0
    seen_pairs: set[tuple[str, str]] = set()
    for core in moved:
        for other in graph.neighbors(core):
            pair = (core, other) if core <= other else (other, core)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            bandwidth = graph.traffic_between(core, other)
            old = topology.distance(mapping.node_of(core), mapping.node_of(other))
            new = topology.distance(located(core), located(other))
            delta += bandwidth * (new - old)
    return delta
