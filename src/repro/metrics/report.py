"""One-stop evaluation report for a completed mapping.

Bundles every quantity the paper evaluates — cost, average hops, per-scheme
minimum bandwidth, energy, routing-table overhead, deadlock verdict — into
one structure with a text renderer.  The CLI's ``map`` command and the
examples use it so users see the full picture without stitching calls
together.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.commodities import build_commodities
from repro.mapping.base import Mapping
from repro.metrics.bandwidth import (
    min_bandwidth_min_path,
    min_bandwidth_split,
    min_bandwidth_xy,
)
from repro.metrics.comm_cost import average_hop_count, comm_cost
from repro.metrics.energy import BitEnergyModel, communication_energy
from repro.routing.deadlock import is_deadlock_free
from repro.routing.min_path import min_path_routing
from repro.routing.tables import table_overhead_ratio


@dataclass(frozen=True)
class MappingReport:
    """Every paper metric for one mapping, ready to render or assert on."""

    app_name: str
    mesh: str
    comm_cost: float
    avg_hops: float
    min_bw_xy: float
    min_bw_min_path: float
    min_bw_split_min_paths: float
    min_bw_split_all_paths: float
    energy_mw: float
    table_overhead_ratio: float
    xy_deadlock_free: bool

    @property
    def split_saving_factor(self) -> float:
        """Bandwidth saving of all-path splitting over single min-path."""
        if self.min_bw_split_all_paths == 0:
            return 1.0
        return self.min_bw_min_path / self.min_bw_split_all_paths

    def render(self) -> str:
        lines = [
            f"mapping report: {self.app_name} on {self.mesh}",
            f"  comm cost (Eq.7)        : {self.comm_cost:.0f} hops*MB/s",
            f"  avg hop count           : {self.avg_hops:.2f}",
            f"  min BW, XY routing      : {self.min_bw_xy:.0f} MB/s",
            f"  min BW, min-path        : {self.min_bw_min_path:.0f} MB/s",
            f"  min BW, split min paths : {self.min_bw_split_min_paths:.0f} MB/s",
            f"  min BW, split all paths : {self.min_bw_split_all_paths:.0f} MB/s"
            f"  ({self.split_saving_factor:.2f}x saving)",
            f"  comm energy             : {self.energy_mw:.2f} mW",
            f"  routing-table overhead  : {self.table_overhead_ratio * 100:.1f}% of buffer bits",
            f"  XY deadlock-free        : {self.xy_deadlock_free}",
        ]
        return "\n".join(lines) + "\n"


def evaluate_mapping(
    mapping: Mapping, energy_model: BitEnergyModel | None = None
) -> MappingReport:
    """Compute the full report for a complete mapping.

    Raises:
        repro.errors.MappingError: when the mapping is incomplete.
    """
    mapping.validate()
    topology = mapping.topology
    commodities = build_commodities(mapping.core_graph, mapping)
    split_routing = min_path_routing(topology, commodities)

    xy_bw, xy_result = min_bandwidth_xy(mapping)
    mp_bw, _ = min_bandwidth_min_path(mapping)
    tm_bw, _ = min_bandwidth_split(mapping, quadrant_only=True)
    ta_bw, _ = min_bandwidth_split(mapping, quadrant_only=False)

    return MappingReport(
        app_name=mapping.core_graph.name,
        mesh=f"{topology.width}x{topology.height}"
        + (" torus" if topology.torus else " mesh"),
        comm_cost=comm_cost(mapping),
        avg_hops=average_hop_count(mapping),
        min_bw_xy=xy_bw,
        min_bw_min_path=mp_bw,
        min_bw_split_min_paths=tm_bw,
        min_bw_split_all_paths=ta_bw,
        energy_mw=communication_energy(mapping, energy_model),
        table_overhead_ratio=table_overhead_ratio(split_routing),
        xy_deadlock_free=is_deadlock_free(xy_result),
    )
