"""Hu–Marculescu bit-energy model (ASP-DAC 2003), used by the PBB baseline.

The PBB algorithm the paper compares against originally minimizes
communication *energy*: moving one bit across a link costs ``E_link`` and
through a router costs ``E_router``, so a ``h``-hop route costs
``h * E_link + (h + 1) * E_router`` per bit.  With uniform per-hop costs the
energy objective is an affine function of Equation 7's hop-weighted cost,
which is why the paper can compare the algorithms on cost directly.  The
model is included for completeness and for the energy ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.mapping.base import Mapping


@dataclass(frozen=True)
class BitEnergyModel:
    """Per-bit energy parameters in picojoules.

    Defaults follow the ballpark of 0.18um NoC literature: a router hop
    costs roughly 2-5x a link traversal.
    """

    link_pj_per_bit: float = 0.39
    router_pj_per_bit: float = 1.17

    def path_energy_pj(self, hops: int) -> float:
        """Energy to move one bit across ``hops`` links (``hops+1`` routers)."""
        if hops < 0:
            raise ReproError(f"hop count must be non-negative, got {hops}")
        return hops * self.link_pj_per_bit + (hops + 1) * self.router_pj_per_bit


def communication_energy(
    mapping: Mapping, model: BitEnergyModel | None = None
) -> float:
    """Total communication power in milliwatts-equivalent (pJ x MB/s).

    Each flow contributes ``bandwidth * 8e6 bits/s * path_energy_pj``;
    the result is returned in milliwatts (pJ/s * 1e-9).
    """
    model = model or BitEnergyModel()
    topology = mapping.topology
    total_pj_per_s = 0.0
    for flow in mapping.core_graph.flows():
        hops = topology.distance(mapping.node_of(flow.src), mapping.node_of(flow.dst))
        bits_per_s = flow.bandwidth * 8e6
        total_pj_per_s += bits_per_s * model.path_energy_pj(hops)
    return total_pj_per_s * 1e-9
