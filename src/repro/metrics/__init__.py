"""Evaluation metrics: communication cost, bandwidth needs, energy.

* :func:`~repro.metrics.comm_cost.comm_cost` — Equation 7, the paper's
  primary objective (bandwidth-weighted minimum hop count).
* :mod:`repro.metrics.bandwidth` — link loads and the minimum uniform link
  bandwidth required under each routing discipline (Figure 4's metric).
* :mod:`repro.metrics.energy` — the Hu–Marculescu bit-energy model used by
  the PBB baseline's original objective (extension; the DATE'04 paper
  compares on cost/bandwidth only).

Cost kernels are numpy-vectorized with bit-identical scalar references
behind :mod:`repro.fastpath`; :func:`swap_cost_deltas` scores every
candidate swap partner of a node in one call (see PERFORMANCE.md).
"""

from repro.metrics.bandwidth import (
    min_bandwidth_min_path,
    min_bandwidth_split,
    min_bandwidth_xy,
)
from repro.metrics.comm_cost import (
    average_hop_count,
    comm_cost,
    comm_cost_limit,
    comm_cost_reference,
    swap_cost_delta,
    swap_cost_deltas,
)
from repro.metrics.energy import BitEnergyModel, communication_energy
from repro.metrics.report import MappingReport, evaluate_mapping

__all__ = [
    "BitEnergyModel",
    "MappingReport",
    "average_hop_count",
    "comm_cost",
    "comm_cost_limit",
    "comm_cost_reference",
    "communication_energy",
    "swap_cost_delta",
    "swap_cost_deltas",
    "evaluate_mapping",
    "min_bandwidth_min_path",
    "min_bandwidth_split",
    "min_bandwidth_xy",
]
