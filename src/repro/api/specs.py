"""Typed, JSON-round-trippable request/response payloads (the API facade).

Every surface of the repository (CLI, experiments, benchmarks, examples,
and any future service) speaks these four payloads:

* :class:`MapRequest` -> :class:`MapResponse` — run one mapping algorithm.
* :class:`SimRequest` -> :class:`SimResponse` — map, then simulate packets.

All of them are frozen dataclasses with ``to_dict``/``from_dict`` that
round-trip losslessly through ``json.dumps``; payloads carry a schema
version so cached/logged responses stay readable as the format evolves.
Option payloads are validated when the request is *built* (typos fail
before a batch fans out, not minutes into it).

:class:`TopologySpec` is the serializable description of the NoC — it
parses the CLI's ``--topology`` strings (``"mesh:4x4"``, ``"torus:8x8"``,
``"auto"``) and builds the concrete :class:`~repro.graphs.topology
.NoCTopology` on demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from repro.api.options import MapperOptions
from repro.api.registry import get_mapper, with_seed
from repro.errors import ApiError
from repro.faults.spec import FaultSpec
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology

#: Version stamped into every serialized payload.
SCHEMA_VERSION = 1

_TOPOLOGY_KINDS = ("auto", "mesh", "torus")


def _encode_float(value: float) -> float | str:
    """JSON-safe float: infinities become the string ``"inf"``."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: Any) -> float:
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ApiError(f"expected a number, got {value!r}")
    return float(value)


def _check_envelope(payload: Any, kind: str) -> dict[str, Any]:
    """Validate the ``schema``/``kind`` envelope shared by every payload."""
    if not isinstance(payload, dict):
        raise ApiError(f"{kind} payload must be a dict, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != SCHEMA_VERSION:
        raise ApiError(
            f"unsupported {kind} schema {schema!r}; this build reads "
            f"schema {SCHEMA_VERSION}"
        )
    if payload.get("kind") != kind:
        raise ApiError(f"expected kind {kind!r}, got {payload.get('kind')!r}")
    return payload


def _required(data: dict[str, Any], key: str, kind: str) -> Any:
    """A required payload field, or :class:`ApiError` naming what's missing."""
    try:
        return data[key]
    except KeyError:
        raise ApiError(f"{kind} payload is missing required field {key!r}") from None


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """Serializable description of the NoC topology to map onto.

    Attributes:
        kind: ``"auto"`` (smallest near-square mesh fitting the app),
            ``"mesh"`` or ``"torus"``.
        width/height: grid dimensions; required unless ``kind == "auto"``.
        link_bandwidth: uniform link capacity in MB/s; None defaults to the
            application's total bandwidth (every routing feasible — the
            paper's pure-cost comparison regime).
    """

    kind: str = "auto"
    width: int | None = None
    height: int | None = None
    link_bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _TOPOLOGY_KINDS:
            raise ApiError(
                f"topology kind must be one of {', '.join(_TOPOLOGY_KINDS)}, "
                f"got {self.kind!r}"
            )
        if self.kind == "auto":
            if self.width is not None or self.height is not None:
                raise ApiError("auto topology must not carry explicit dimensions")
        else:
            if self.width is None or self.height is None:
                raise ApiError(f"{self.kind} topology needs explicit width and height")
            if self.width < 1 or self.height < 1:
                raise ApiError(
                    f"topology dimensions must be >= 1, got {self.width}x{self.height}"
                )
        if self.link_bandwidth is not None and self.link_bandwidth <= 0:
            raise ApiError(
                f"link bandwidth must be positive, got {self.link_bandwidth}"
            )

    @classmethod
    def parse(cls, text: str, link_bandwidth: float | None = None) -> "TopologySpec":
        """Parse a CLI-style spec string.

        Accepted forms: ``"auto"``, ``"mesh:4x4"``, ``"torus:8x8"`` and the
        bare ``"4x4"`` shorthand (a mesh, for backward compatibility with
        the old ``--mesh`` flag).
        """
        spec = text.strip().lower()
        if spec == "auto":
            return cls(kind="auto", link_bandwidth=link_bandwidth)
        kind, sep, dims = spec.partition(":")
        if not sep:
            kind, dims = "mesh", spec
        if kind not in ("mesh", "torus"):
            raise ApiError(
                f"topology must look like 'auto', 'mesh:4x4' or 'torus:8x8', "
                f"got {text!r}"
            )
        width_str, sep, height_str = dims.partition("x")
        try:
            width, height = int(width_str), int(height_str)
        except ValueError:
            raise ApiError(
                f"topology dimensions must look like '4x4', got {dims!r}"
            ) from None
        if not sep:
            raise ApiError(f"topology dimensions must look like '4x4', got {dims!r}")
        return cls(kind=kind, width=width, height=height, link_bandwidth=link_bandwidth)

    def describe(self) -> str:
        """The canonical spec string (inverse of :meth:`parse`)."""
        if self.kind == "auto":
            return "auto"
        return f"{self.kind}:{self.width}x{self.height}"

    def build(self, app: CoreGraph) -> NoCTopology:
        """Materialize the concrete topology for ``app``.

        Raises:
            ApiError: when the grid is too small for the application.
        """
        bandwidth = (
            self.link_bandwidth
            if self.link_bandwidth is not None
            else app.total_bandwidth()
        )
        if self.kind == "auto":
            return NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=bandwidth)
        assert self.width is not None and self.height is not None
        if self.width * self.height < app.num_cores:
            raise ApiError(
                f"{self.describe()} has {self.width * self.height} nodes but "
                f"{app.name!r} needs {app.num_cores}"
            )
        if self.kind == "torus":
            return NoCTopology.torus_grid(
                self.width, self.height, link_bandwidth=bandwidth
            )
        return NoCTopology.mesh(self.width, self.height, link_bandwidth=bandwidth)

    def resolved_for(self, topology: NoCTopology) -> "TopologySpec":
        """This spec with ``auto`` pinned to the concrete topology built."""
        return TopologySpec(
            kind="torus" if topology.torus else "mesh",
            width=topology.width,
            height=topology.height,
            link_bandwidth=topology.min_link_bandwidth(),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "width": self.width,
            "height": self.height,
            "link_bandwidth": self.link_bandwidth,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TopologySpec":
        if not isinstance(payload, dict):
            raise ApiError(f"topology payload must be a dict, got {payload!r}")
        unknown = sorted(set(payload) - {"kind", "width", "height", "link_bandwidth"})
        if unknown:
            raise ApiError(f"unknown topology field(s): {', '.join(unknown)}")
        return cls(
            kind=payload.get("kind", "auto"),
            width=payload.get("width"),
            height=payload.get("height"),
            link_bandwidth=payload.get("link_bandwidth"),
        )


# ----------------------------------------------------------------------
# mapping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MapRequest:
    """One mapping job: application x topology x algorithm (+ options).

    Attributes:
        app: registered application name (``"vopd"``), a core-graph JSON
            path (anything containing ``/`` or ending in ``.json``), or an
            inline core-graph payload (the :func:`repro.graphs.io
            .core_graph_to_dict` format) for applications that exist only
            in memory — generated graphs, user uploads.
        mapper: registry name of the algorithm (see ``list_mappers()``).
        topology: the NoC to map onto.
        options: typed per-algorithm options; None means defaults.  The
            instance must match the mapper's registered options class.
        seed: convenience override for stochastic mappers; folded into the
            options' ``seed`` field at run time and rejected for
            deterministic algorithms.
        price_bandwidth: also compute the minimum feasible uniform link
            bandwidth (single-path and split) for the final mapping.  Split
            pricing solves an LP; batch callers that only need costs turn
            this off.
        faults: fault scenario injected *before* mapping — the algorithm
            places cores on the degraded fabric (failed routers are never
            placement targets, distances are surviving-hop distances).
            None means a pristine fabric.
        tag: opaque caller label, carried through to the response (batch
            correlation).
    """

    app: str | dict[str, Any]
    mapper: str = "nmap"
    topology: TopologySpec = field(default_factory=TopologySpec)
    options: MapperOptions | None = None
    seed: int | None = None
    price_bandwidth: bool = True
    faults: FaultSpec | None = None
    tag: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.app, dict):
            if self.app.get("kind") != "core-graph":
                raise ApiError(
                    "inline app payload must have kind 'core-graph' "
                    "(see repro.graphs.io.core_graph_to_dict)"
                )
        elif not isinstance(self.app, str) or not self.app:
            raise ApiError(f"app must be a name, path or payload, got {self.app!r}")
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ApiError(
                f"faults must be a FaultSpec, got {type(self.faults).__name__}"
            )
        entry = get_mapper(self.mapper)  # raises ApiError for unknown names
        entry.coerce_options(self.options)
        if self.seed is not None and not entry.seedable:
            raise ApiError(
                f"mapper {self.mapper!r} is deterministic and takes no seed"
            )

    def resolved_options(self) -> MapperOptions:
        """The options this request runs with (defaults + seed applied)."""
        entry = get_mapper(self.mapper)
        options = entry.coerce_options(self.options)
        if self.seed is not None:
            options = with_seed(options, self.seed)
        return options

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "map-request",
            "app": self.app,
            "mapper": self.mapper,
            "topology": self.topology.to_dict(),
            "options": None if self.options is None else self.options.to_dict(),
            "seed": self.seed,
            "price_bandwidth": self.price_bandwidth,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MapRequest":
        data = _check_envelope(payload, "map-request")
        mapper = data.get("mapper", "nmap")
        entry = get_mapper(mapper)
        raw_options = data.get("options")
        raw_faults = data.get("faults")
        return cls(
            app=_required(data, "app", "map-request"),
            mapper=mapper,
            topology=TopologySpec.from_dict(data.get("topology", {"kind": "auto"})),
            options=None if raw_options is None else entry.options_from_dict(raw_options),
            seed=data.get("seed"),
            price_bandwidth=data.get("price_bandwidth", True),
            faults=None if raw_faults is None else FaultSpec.from_dict(raw_faults),
            tag=data.get("tag"),
        )


@dataclass(frozen=True)
class MapResponse:
    """Outcome of one :class:`MapRequest`, fully serializable.

    Attributes:
        request: the request that produced this response.
        app_name: the application's own name (may differ from the request's
            ``app`` when that was a file path).
        algorithm: the algorithm label reported by the mapper.
        topology: the *resolved* topology (``auto`` pinned to concrete
            dimensions and bandwidth).
        comm_cost: Equation 7 cost; infinity when infeasible.
        feasible: whether the backing routing satisfied Inequality 3.
        placement: core name -> node id of the final mapping.
        min_bw_single/min_bw_split: minimum feasible uniform link bandwidth
            under single-minimum-path / split-traffic routing; None when
            the request skipped pricing or the mapping was infeasible.
        stats: algorithm counters (swaps tried, LPs solved, ...).
    """

    request: MapRequest
    app_name: str
    algorithm: str
    topology: TopologySpec
    comm_cost: float
    feasible: bool
    placement: dict[str, int]
    min_bw_single: float | None = None
    min_bw_split: float | None = None
    stats: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "map-response",
            "request": self.request.to_dict(),
            "app_name": self.app_name,
            "algorithm": self.algorithm,
            "topology": self.topology.to_dict(),
            "comm_cost": _encode_float(self.comm_cost),
            "feasible": self.feasible,
            "placement": dict(self.placement),
            "min_bw_single": self.min_bw_single,
            "min_bw_split": self.min_bw_split,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MapResponse":
        data = _check_envelope(payload, "map-response")
        return cls(
            request=MapRequest.from_dict(_required(data, "request", "map-response")),
            app_name=_required(data, "app_name", "map-response"),
            algorithm=_required(data, "algorithm", "map-response"),
            topology=TopologySpec.from_dict(_required(data, "topology", "map-response")),
            comm_cost=_decode_float(_required(data, "comm_cost", "map-response")),
            feasible=bool(_required(data, "feasible", "map-response")),
            placement={
                str(core): int(node)
                for core, node in _required(data, "placement", "map-response").items()
            },
            min_bw_single=data.get("min_bw_single"),
            min_bw_split=data.get("min_bw_split"),
            stats=dict(data.get("stats", {})),
        )


# ----------------------------------------------------------------------
# simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SimOptions:
    """The simulation-substrate knobs: which engine, traffic and router.

    Grouped separately from :class:`SimRequest`'s workload parameters so
    the same workload can be re-run against a different backend or router
    model by swapping one sub-payload.

    Attributes:
        engine: registered engine name — ``"cycle"`` (cycle-accurate
            reference), ``"event"`` (event-driven, skips dead time),
            ``"vector"`` (structure-of-arrays, fastest at high load) or
            ``"auto"`` (picks event at low load, vector at high load).
            All backends are bit-consistent with ``cycle``.
        traffic: ``"trace"`` replays the mapped core graph's bandwidths;
            ``"uniform"``, ``"transpose"`` and ``"onoff"`` are synthetic
            patterns driven per node (see :mod:`repro.simnoc.synthetic`).
        injection_rate: offered load per node in flits/cycle; required for
            synthetic patterns, rejected for ``"trace"`` (the core graph
            sets the rates there).
        num_vcs: virtual channels per link; >1 selects the VC wormhole
            router.
        vc_buffer_depth: per-VC input FIFO depth; None shares the global
            ``buffer_depth``.
        shards: worker-process count for the ``sharded`` engine; rejected
            for every other engine.  None lets the engine default (2).
        partitioner: fabric partitioner for the ``sharded`` engine
            (``"auto"`` walks the metis -> greedy-edge -> round-robin
            ladder); rejected for every other engine.

    The two sharding knobs serialize only when set, so requests that do
    not use them keep their canonical key (and cached results) from
    before the knobs existed.
    """

    engine: str = "cycle"
    traffic: str = "trace"
    injection_rate: float | None = None
    num_vcs: int = 1
    vc_buffer_depth: int | None = None
    shards: int | None = None
    partitioner: str | None = None

    def __post_init__(self) -> None:
        from repro.simnoc import list_engines, list_traffic_patterns

        if self.engine not in list_engines():
            raise ApiError(
                f"engine must be one of {', '.join(list_engines())}, "
                f"got {self.engine!r}"
            )
        if self.traffic not in list_traffic_patterns():
            raise ApiError(
                f"traffic must be one of {', '.join(list_traffic_patterns())}, "
                f"got {self.traffic!r}"
            )
        if self.traffic == "trace":
            if self.injection_rate is not None:
                raise ApiError(
                    "trace traffic derives rates from the core graph; "
                    "injection_rate must be None"
                )
        else:
            if self.injection_rate is None or self.injection_rate <= 0:
                raise ApiError(
                    f"synthetic traffic {self.traffic!r} needs a positive "
                    f"injection_rate (flits/cycle per node)"
                )
        if self.num_vcs < 1:
            raise ApiError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.vc_buffer_depth is not None:
            if self.num_vcs == 1:
                raise ApiError(
                    "vc_buffer_depth only applies to the VC router; set "
                    "num_vcs >= 2 (the plain wormhole router uses the "
                    "global buffer_depth)"
                )
            if self.vc_buffer_depth < 2:
                raise ApiError(
                    f"vc_buffer_depth must be >= 2, got {self.vc_buffer_depth}"
                )
        if self.engine != "sharded":
            if self.shards is not None or self.partitioner is not None:
                raise ApiError(
                    "shards/partitioner only apply to the sharded engine, "
                    f"got engine={self.engine!r}"
                )
        else:
            if self.shards is not None and self.shards < 1:
                raise ApiError(f"shards must be >= 1, got {self.shards}")
            if self.partitioner is not None and self.partitioner != "auto":
                from repro.partition import list_partitioners

                if self.partitioner not in list_partitioners():
                    raise ApiError(
                        "partitioner must be 'auto' or one of "
                        f"{', '.join(list_partitioners())}, "
                        f"got {self.partitioner!r}"
                    )

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "engine": self.engine,
            "traffic": self.traffic,
            "injection_rate": self.injection_rate,
            "num_vcs": self.num_vcs,
            "vc_buffer_depth": self.vc_buffer_depth,
        }
        # Emitted only when set: pre-sharding requests keep their exact
        # canonical blob (and content-addressed cache entries).
        if self.shards is not None:
            payload["shards"] = self.shards
        if self.partitioner is not None:
            payload["partitioner"] = self.partitioner
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SimOptions":
        if not isinstance(payload, dict):
            raise ApiError(f"sim options payload must be a dict, got {payload!r}")
        known = {
            "engine",
            "traffic",
            "injection_rate",
            "num_vcs",
            "vc_buffer_depth",
            "shards",
            "partitioner",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ApiError(f"unknown sim option(s): {', '.join(unknown)}")
        return cls(
            engine=payload.get("engine", "cycle"),
            traffic=payload.get("traffic", "trace"),
            injection_rate=payload.get("injection_rate"),
            num_vcs=payload.get("num_vcs", 1),
            vc_buffer_depth=payload.get("vc_buffer_depth"),
            shards=payload.get("shards"),
            partitioner=payload.get("partitioner"),
        )


@dataclass(frozen=True)
class SimRequest:
    """One packet-level simulation job over a mapped application.

    Attributes:
        map_request: how to produce the mapping to simulate.
        measure_cycles: cycles over which latencies are recorded.
        warmup_cycles/drain_cycles: simulator ramp-up / flush windows.
        mean_burst_packets: traffic burstiness (1.0 disables).
        sim_seed: traffic-generation RNG seed (independent of the mapper's
            ``seed``).  Every random stream of the run derives from this
            seed plus stable per-component indices, so results are a pure
            function of the request — independent of batch worker counts.
        routing: ``"auto"`` uses the mapper's own routing for split
            variants and load-balanced minimum paths otherwise;
            ``"min-path"`` and ``"xy"`` force those routers.  Synthetic
            traffic always routes XY.
        faults: fault scenario injected *at simulation time*, on top of any
            faults the mapping request already carries — the placement is
            kept, but traffic is rerouted around the failures (see
            :func:`repro.faults.fault_reroute`).  Fault scenarios require
            deterministic XY routing to be off (``routing != "xy"``) and
            trace traffic, because only the min-path router is fault-aware.
        options: engine/traffic/router-model knobs (:class:`SimOptions`).
    """

    map_request: MapRequest
    measure_cycles: int = 20_000
    warmup_cycles: int = 2_000
    drain_cycles: int = 5_000
    mean_burst_packets: float = 4.0
    sim_seed: int = 1
    routing: str = "auto"
    faults: FaultSpec | None = None
    options: SimOptions = field(default_factory=SimOptions)

    def __post_init__(self) -> None:
        if self.routing not in ("auto", "min-path", "xy"):
            raise ApiError(
                f"routing must be auto, min-path or xy, got {self.routing!r}"
            )
        for name in ("measure_cycles", "warmup_cycles", "drain_cycles"):
            if getattr(self, name) < 0:
                raise ApiError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.measure_cycles < 1:
            raise ApiError(f"measure_cycles must be >= 1, got {self.measure_cycles}")
        if not isinstance(self.options, SimOptions):
            raise ApiError(
                f"options must be a SimOptions, got {type(self.options).__name__}"
            )
        if self.options.traffic != "trace" and self.routing != "auto":
            raise ApiError(
                f"synthetic traffic {self.options.traffic!r} always routes XY; "
                f"routing must stay 'auto', got {self.routing!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise ApiError(
                f"faults must be a FaultSpec, got {type(self.faults).__name__}"
            )
        has_faults = (self.faults is not None and not self.faults.is_empty) or (
            self.map_request.faults is not None
            and not self.map_request.faults.is_empty
        )
        if has_faults:
            if self.options.traffic != "trace":
                raise ApiError(
                    "fault scenarios require trace traffic; synthetic "
                    "patterns route XY, which cannot steer around failures"
                )
            if self.routing == "xy":
                raise ApiError(
                    "fault scenarios cannot use XY routing — deterministic "
                    "dimension-order paths cannot avoid failed links; use "
                    "'auto' or 'min-path'"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "sim-request",
            "map_request": self.map_request.to_dict(),
            "measure_cycles": self.measure_cycles,
            "warmup_cycles": self.warmup_cycles,
            "drain_cycles": self.drain_cycles,
            "mean_burst_packets": self.mean_burst_packets,
            "sim_seed": self.sim_seed,
            "routing": self.routing,
            "faults": None if self.faults is None else self.faults.to_dict(),
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SimRequest":
        data = _check_envelope(payload, "sim-request")
        raw_options = data.get("options")
        raw_faults = data.get("faults")
        return cls(
            map_request=MapRequest.from_dict(
                _required(data, "map_request", "sim-request")
            ),
            measure_cycles=data.get("measure_cycles", 20_000),
            warmup_cycles=data.get("warmup_cycles", 2_000),
            drain_cycles=data.get("drain_cycles", 5_000),
            mean_burst_packets=data.get("mean_burst_packets", 4.0),
            sim_seed=data.get("sim_seed", 1),
            routing=data.get("routing", "auto"),
            faults=None if raw_faults is None else FaultSpec.from_dict(raw_faults),
            options=(
                SimOptions() if raw_options is None
                else SimOptions.from_dict(raw_options)
            ),
        )


@dataclass(frozen=True)
class SimResponse:
    """Latency/utilization summary of one :class:`SimRequest`.

    ``link_utilization``/``link_flits`` key directed links as
    ``"src->dst"`` strings and ``per_flow`` keys flows by their commodity
    index as a string, so the payload stays plain JSON.

    Each ``per_flow`` entry carries ``count``, ``mean``, ``p50``, ``p95``,
    ``std``, ``jitter`` and ``histogram`` — the histogram is power-of-two
    binned (bin ``i`` counts latencies in ``[2**i, 2**(i+1))``), compact
    enough to ship for every flow yet detailed enough for saturation and
    tail analysis.
    """

    request: SimRequest
    map_response: MapResponse
    packets_measured: int
    latency_mean: float
    latency_mean_network: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    packets_created: int
    packets_delivered: int
    cycles: int
    link_utilization: dict[str, float] = field(default_factory=dict)
    link_flits: dict[str, int] = field(default_factory=dict)
    per_flow: dict[str, dict[str, Any]] = field(default_factory=dict)

    def hottest_link(self) -> tuple[str, float]:
        """The most utilized directed link as ``("src->dst", utilization)``."""
        if not self.link_utilization:
            raise ApiError("no link utilization recorded")
        link = max(self.link_utilization, key=self.link_utilization.__getitem__)
        return link, self.link_utilization[link]

    def worst_flow(self) -> tuple[str, dict[str, Any]]:
        """The flow with the highest mean latency, as ``(flow, stats)``."""
        if not self.per_flow:
            raise ApiError("no per-flow statistics recorded")
        flow = max(self.per_flow, key=lambda key: self.per_flow[key]["mean"])
        return flow, self.per_flow[flow]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "sim-response",
            "request": self.request.to_dict(),
            "map_response": self.map_response.to_dict(),
            "packets_measured": self.packets_measured,
            "latency_mean": self.latency_mean,
            "latency_mean_network": self.latency_mean_network,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_max": self.latency_max,
            "packets_created": self.packets_created,
            "packets_delivered": self.packets_delivered,
            "cycles": self.cycles,
            "link_utilization": dict(self.link_utilization),
            "link_flits": dict(self.link_flits),
            "per_flow": {flow: dict(stats) for flow, stats in self.per_flow.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SimResponse":
        data = _check_envelope(payload, "sim-response")
        need = lambda key: _required(data, key, "sim-response")
        return cls(
            request=SimRequest.from_dict(need("request")),
            map_response=MapResponse.from_dict(need("map_response")),
            packets_measured=int(need("packets_measured")),
            latency_mean=float(need("latency_mean")),
            latency_mean_network=float(need("latency_mean_network")),
            latency_p50=float(need("latency_p50")),
            latency_p95=float(need("latency_p95")),
            latency_p99=float(need("latency_p99")),
            latency_max=float(need("latency_max")),
            packets_created=int(need("packets_created")),
            packets_delivered=int(need("packets_delivered")),
            cycles=int(need("cycles")),
            link_utilization={
                str(k): float(v) for k, v in data.get("link_utilization", {}).items()
            },
            link_flits={
                str(k): int(v) for k, v in data.get("link_flits", {}).items()
            },
            per_flow={
                str(flow): dict(stats)
                for flow, stats in data.get("per_flow", {}).items()
            },
        )


# ----------------------------------------------------------------------
# batch failure reporting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorResponse:
    """A failed batch slot, holding its place so the batch stays aligned.

    :func:`repro.api.run_batch` never lets one bad request abort the whole
    fan-out: a request that raises, crashes its worker, or exceeds the
    batch timeout yields an ``ErrorResponse`` in its slot while every other
    slot completes normally.  The payload echoes the request so a failed
    slot can be retried stand-alone.

    Attributes:
        request: the request that failed (echoed verbatim).
        error: the exception class name (``"FaultError"``, ``"BatchError"``,
            ...).
        message: the exception message, stable across executors so batch
            results are byte-identical whether run serially, in threads or
            in processes.
    """

    request: MapRequest | SimRequest
    error: str
    message: str

    def __post_init__(self) -> None:
        if not isinstance(self.request, (MapRequest, SimRequest)):
            raise ApiError(
                f"request must be a MapRequest or SimRequest, "
                f"got {type(self.request).__name__}"
            )
        if not self.error or not isinstance(self.error, str):
            raise ApiError(f"error must be an exception class name, got {self.error!r}")
        if not isinstance(self.message, str):
            raise ApiError(f"message must be a string, got {self.message!r}")

    def describe(self) -> str:
        """One-line human-readable summary (``FaultError: ...``)."""
        return f"{self.error}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "error-response",
            "request": self.request.to_dict(),
            "error": self.error,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ErrorResponse":
        data = _check_envelope(payload, "error-response")
        raw_request = _required(data, "request", "error-response")
        if not isinstance(raw_request, dict):
            raise ApiError(f"error-response request must be a dict, got {raw_request!r}")
        request: MapRequest | SimRequest
        if raw_request.get("kind") == "sim-request":
            request = SimRequest.from_dict(raw_request)
        else:
            request = MapRequest.from_dict(raw_request)
        return cls(
            request=request,
            error=_required(data, "error", "error-response"),
            message=_required(data, "message", "error-response"),
        )


def request_with_seed(request: MapRequest, seed: int | None) -> MapRequest:
    """A copy of ``request`` with the seed replaced (None clears it)."""
    return replace(request, seed=seed)
