"""``repro.api`` — the typed request/response facade over the library.

Everything the CLI, experiments, benchmarks and examples do goes through
this package:

* :class:`~repro.api.specs.MapRequest` / :class:`~repro.api.specs
  .MapResponse` and :class:`~repro.api.specs.SimRequest` /
  :class:`~repro.api.specs.SimResponse` — frozen, JSON-round-trippable,
  schema-versioned payloads.
* :func:`~repro.api.registry.list_mappers` / :func:`~repro.api.registry
  .get_mapper` — the mapper registry algorithms join with one
  ``@register_mapper`` decorator.
* :func:`~repro.api.engine.run` / :func:`~repro.api.engine.run_batch` —
  the execution engine (thread- or process-pool fan-out for batches).

Quick tour::

    from repro.api import MapRequest, TopologySpec, run

    response = run(MapRequest(app="vopd", mapper="nmap",
                              topology=TopologySpec.parse("torus:4x4")))
    payload = response.to_dict()          # cache / log / serve it
"""

from repro.api.engine import (
    BATCH_EXECUTORS,
    canonical_request_blob,
    canonical_request_key,
    clear_request_caches,
    execute_map,
    rebuild_mapping,
    resolve_app,
    run,
    run_batch,
    run_map,
    run_sim,
)
from repro.api.options import (
    AnnealingOptions,
    GmapOptions,
    MapperOptions,
    NmapOptions,
    NmapSplitOptions,
    PbbOptions,
    PmapOptions,
)
from repro.api.registry import (
    MapperEntry,
    get_mapper,
    list_mappers,
    mapper_entries,
    parse_option_assignments,
    register_mapper,
)
from repro.api.specs import (
    SCHEMA_VERSION,
    ErrorResponse,
    MapRequest,
    MapResponse,
    SimOptions,
    SimRequest,
    SimResponse,
    TopologySpec,
)
from repro.faults.spec import FaultSpec

__all__ = [
    "BATCH_EXECUTORS",
    "SCHEMA_VERSION",
    "AnnealingOptions",
    "ErrorResponse",
    "FaultSpec",
    "GmapOptions",
    "MapperEntry",
    "MapperOptions",
    "MapRequest",
    "MapResponse",
    "NmapOptions",
    "NmapSplitOptions",
    "PbbOptions",
    "PmapOptions",
    "SimOptions",
    "SimRequest",
    "SimResponse",
    "TopologySpec",
    "canonical_request_blob",
    "canonical_request_key",
    "clear_request_caches",
    "execute_map",
    "get_mapper",
    "list_mappers",
    "mapper_entries",
    "parse_option_assignments",
    "rebuild_mapping",
    "register_mapper",
    "resolve_app",
    "run",
    "run_batch",
    "run_map",
    "run_sim",
]
