"""Request execution: the single front door every surface calls through.

``run()`` turns a typed request into a typed response; ``run_batch()`` fans
a list of requests over a thread or process pool — the shape the experiment
runner, the benchmark harness and the CLI ``compare`` subcommand all share
instead of private loops.  The default ``executor="thread"`` fits jobs that
spend their time in numpy kernels and LP solves; ``executor="process"``
sidesteps the GIL for Python-bound jobs — saturation-load simulations above
all — and is possible precisely because every request and response payload
is a frozen, JSON-round-trippable (hence picklable) dataclass.

Simulation requests also share a small process-local cache of mapping and
routing results keyed by the serialized map request: the points of a
``latency_sweep`` differ only in injection rate, so the mapper and the
routing table are computed once per sweep instead of once per point.  The
cache can never change a result — mappers and routers are deterministic
functions of the request (the batch determinism contract) — it only skips
recomputing one.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from pathlib import Path

from repro.api.registry import get_mapper
from repro.api.specs import (
    ErrorResponse,
    MapRequest,
    MapResponse,
    SimRequest,
    SimResponse,
)
from repro.apps import get_app
from repro.errors import ApiError, FaultError, RoutingError
from repro.faults.reroute import fault_reroute
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.io import core_graph_from_dict, load_core_graph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.metrics.bandwidth import min_bandwidth_min_path, min_bandwidth_split
from repro.routing.dimension_ordered import xy_routing
from repro.routing.min_path import min_path_routing
from repro.simnoc import SimConfig
from repro.simnoc.network import build_network, build_synthetic_network
from repro.simnoc.simulator import SimulationReport, Simulator


def resolve_app(spec: str | dict) -> CoreGraph:
    """Resolve a request's ``app`` field: name, JSON path or inline payload."""
    if isinstance(spec, dict):
        return core_graph_from_dict(spec)
    if spec.endswith(".json") or "/" in spec:
        return load_core_graph(Path(spec))
    return get_app(spec)


def execute_map(request: MapRequest) -> tuple[NoCTopology, MappingResult]:
    """Run a map request at the object level (no serialization).

    This is the core :func:`run_map` wraps; callers that need the live
    :class:`~repro.mapping.base.Mapping`/routing objects (the ``design``
    and ``simulate`` surfaces, custom experiments) use it directly.

    When the request carries a fault scenario, the returned topology is the
    degraded view the mapper actually placed onto (failed routers excluded,
    surviving-hop distances); routing failures on the degraded fabric are
    re-raised as :class:`~repro.errors.FaultError` so callers can tell a
    fault-impossible scenario from a mapper bug.
    """
    app = resolve_app(request.app)
    topology = request.topology.build(app)
    if request.faults is not None and not request.faults.is_empty:
        topology = request.faults.apply(topology)
        entry = get_mapper(request.mapper)
        try:
            result = entry.run(app, topology, request.resolved_options())
        except RoutingError as exc:
            raise FaultError(
                f"mapping on the fault-degraded fabric failed: {exc}"
            ) from exc
        return topology, result
    entry = get_mapper(request.mapper)
    result = entry.run(app, topology, request.resolved_options())
    return topology, result


def _build_map_response(
    request: MapRequest,
    topology: NoCTopology,
    result: MappingResult,
    price_bandwidth: bool,
) -> MapResponse:
    """The one place a MappingResult becomes a serializable response."""
    min_bw_single = min_bw_split = None
    if price_bandwidth and result.feasible:
        min_bw_single = min_bandwidth_min_path(result.mapping)[0]
        min_bw_split = min_bandwidth_split(result.mapping)[0]
    return MapResponse(
        request=request,
        app_name=result.mapping.core_graph.name,
        algorithm=result.algorithm,
        topology=request.topology.resolved_for(topology),
        comm_cost=result.comm_cost,
        feasible=result.feasible,
        placement=result.mapping.placement,
        min_bw_single=min_bw_single,
        min_bw_split=min_bw_split,
        stats=dict(result.stats),
    )


def run_map(request: MapRequest) -> MapResponse:
    """Execute one mapping request and package the serializable response."""
    topology, result = execute_map(request)
    return _build_map_response(request, topology, result, request.price_bandwidth)


# ----------------------------------------------------------------------
# canonical request keying (shared by every request-content cache)
# ----------------------------------------------------------------------
def canonical_request_blob(request: MapRequest | SimRequest) -> str:
    """The canonical serialized form of a request.

    Sorted keys, no whitespace: the one string representation every
    request-content cache keys on — this module's per-process map/routing
    caches and the service's on-disk result store
    (:class:`repro.service.store.ResultStore`) — so the in-memory and
    persistent tiers can never disagree about what "the same request"
    means.  Requests are frozen and ``to_dict`` is total, so the blob is a
    pure function of the payload.
    """
    if not isinstance(request, (MapRequest, SimRequest)):
        raise ApiError(
            f"cannot compute a request key for a {type(request).__name__}"
        )
    return json.dumps(request.to_dict(), sort_keys=True, separators=(",", ":"))


def canonical_request_key(request: MapRequest | SimRequest) -> str:
    """SHA-256 hex digest of :func:`canonical_request_blob`.

    This is the content address of a request: equal requests hash equal
    regardless of how they were constructed (Python, JSON, over the wire),
    and the key is stable across processes and sessions — golden values are
    pinned in ``tests/api/test_canonical_key.py``.  Keys are only
    comparable within one ``SCHEMA_VERSION`` (the blob embeds it), which is
    what lets the persistent store namespace entries by schema.
    """
    return hashlib.sha256(canonical_request_blob(request).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# per-process request caches (sweep reuse)
# ----------------------------------------------------------------------
#: Bound on each cache; a sweep touches one mapping, experiments a handful.
_CACHE_LIMIT = 64


class _SyncedLRUCache:
    """A bounded LRU mapping guarded by its own lock.

    The service submits concurrently from several worker threads while
    tests and long-lived deployments may call :func:`clear_request_caches`
    at any moment — every dict operation (lookup + recency bump, insert +
    eviction, clear) happens atomically under the lock so a clear can never
    race a half-finished update.
    """

    def __init__(self, limit: int) -> None:
        self._limit = limit
        self._lock = threading.Lock()
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            while len(self._data) > self._limit:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


_map_cache = _SyncedLRUCache(_CACHE_LIMIT)
_routing_cache = _SyncedLRUCache(_CACHE_LIMIT)

#: The in-memory tiers key on the same canonical content address as the
#: service's persistent store (one keying scheme end to end).
_map_cache_key = canonical_request_key


def clear_request_caches() -> None:
    """Drop the mapping/routing caches (tests, long-lived services).

    Thread-safe against concurrent submissions: a request racing the clear
    either sees its entry (and reuses it) or recomputes — never a torn
    cache state.
    """
    _map_cache.clear()
    _routing_cache.clear()


def _cached_execute_map(request: MapRequest) -> tuple[NoCTopology, MappingResult]:
    """``execute_map`` with sweep reuse.

    Safe to share across threads because every consumer treats the mapping
    and topology as read-only (commodities and simulator fabrics are built
    fresh per request), and safe to cache at all because mapping results
    are deterministic functions of the request payload.
    """
    key = _map_cache_key(request)
    value = _map_cache.get(key)
    if value is None:
        value = execute_map(request)
        _map_cache.put(key, value)
    return value


def _prepare_sim(request: SimRequest):
    """Map, route and build the simulator for a request — without running it.

    Returns ``(simulator, map_response)``.  :func:`run_sim` is this plus
    ``simulator.run()``; the ``replica`` batch executor splits the two so
    it can advance many prepared simulators in one compiled kernel call
    (:func:`repro.simnoc.engines.vector.run_replicas`).
    """
    options = request.options
    topology, result = _cached_execute_map(request.map_request)
    sim_faults = request.faults
    sim_topology = topology
    if sim_faults is not None and not sim_faults.is_empty:
        # Sim-time faults hit a fabric the mapper never saw: the placement
        # is kept, the topology view degrades further, and traffic must be
        # rerouted (and deadlock-re-checked) around the failures.
        sim_topology = sim_faults.apply(topology)
    map_faults = request.map_request.faults
    faults_active = sim_topology is not topology or (
        map_faults is not None and not map_faults.is_empty
    )
    config = SimConfig(
        warmup_cycles=request.warmup_cycles,
        measure_cycles=request.measure_cycles,
        drain_cycles=request.drain_cycles,
        mean_burst_packets=request.mean_burst_packets,
        seed=request.sim_seed,
        num_vcs=options.num_vcs,
        vc_buffer_depth=options.vc_buffer_depth,
    )
    if options.traffic == "trace":
        mapping = result.mapping
        commodities = build_commodities(mapping.core_graph, mapping)
        if faults_active:
            # Any active fault (map-time or sim-time) routes through the
            # fault-aware path: surviving minimal paths with the mandatory
            # deadlock-freedom re-check.  FaultError propagates when the
            # scenario disconnects a commodity or reroutes into a cycle.
            routing_key = (
                _map_cache_key(request.map_request),
                request.routing,
                json.dumps(
                    None if sim_faults is None else sim_faults.to_dict(),
                    sort_keys=True,
                ),
            )
            routing = _routing_cache.get(routing_key)
            if routing is None:
                routing = fault_reroute(sim_topology, commodities)
                _routing_cache.put(routing_key, routing)
        elif result.routing is not None and request.routing == "auto" and (
            request.map_request.mapper.startswith("nmap-t")
        ):
            # The split variants' own fractional routing is the point of
            # those mappers; everything else is priced with minimum paths.
            routing = result.routing
        else:
            # Derived routing tables are pure functions of (mapping,
            # routing mode), so sweep points share one computation.
            routing_key = (_map_cache_key(request.map_request), request.routing, None)
            routing = _routing_cache.get(routing_key)
            if routing is None:
                if request.routing == "xy":
                    routing = xy_routing(topology, commodities)
                else:  # "min-path" or the "auto" default
                    routing = min_path_routing(topology, commodities)
                _routing_cache.put(routing_key, routing)
        network = build_network(sim_topology, commodities, routing, config)
    else:
        # Synthetic patterns drive the mapped topology directly (XY
        # routes); the mapper still runs because the response contract
        # always carries a map_response describing the fabric under test —
        # callers sweeping synthetic load should pair these requests with a
        # cheap mapper (the default nmap maps VOPD in ~2 ms).
        network = build_synthetic_network(
            topology, config, options.traffic, options.injection_rate
        )
    # Bandwidth pricing is skipped here regardless of the map request's
    # flag: the simulation itself is the bandwidth evidence.
    map_response = _build_map_response(
        request.map_request, topology, result, price_bandwidth=False
    )
    sim = Simulator(
        network,
        engine=options.engine,
        shards=options.shards,
        partitioner=options.partitioner,
    )
    return sim, map_response


def run_sim(request: SimRequest) -> SimResponse:
    """Execute one simulation request (map, route, simulate, summarize).

    Every RNG stream of the run derives from the request's own seeds
    (``sim_seed`` for traffic, the map request's ``seed`` for stochastic
    mappers) plus a stable per-component stream index — never from shared
    global state — so the response is a pure function of the request
    regardless of batch worker counts (see :func:`run_batch`).
    """
    simulator, map_response = _prepare_sim(request)
    return _build_sim_response(request, map_response, simulator.run())


def _build_sim_response(
    request: SimRequest, map_response: MapResponse, report: SimulationReport
) -> SimResponse:
    """The one place a SimulationReport becomes a serializable response."""
    stats = report.stats
    return SimResponse(
        request=request,
        map_response=map_response,
        packets_measured=stats.count,
        latency_mean=stats.mean,
        latency_mean_network=stats.mean_network,
        latency_p50=stats.p50,
        latency_p95=stats.p95,
        latency_p99=stats.p99,
        latency_max=stats.maximum,
        packets_created=report.packets_created,
        packets_delivered=report.packets_delivered,
        cycles=report.cycles,
        link_utilization={
            f"{src}->{dst}": utilization
            for (src, dst), utilization in report.link_utilization.items()
        },
        link_flits={
            f"{src}->{dst}": carried
            for (src, dst), carried in report.link_flits.items()
        },
        per_flow={
            str(flow): {
                "count": flow_stats.count,
                "mean": flow_stats.mean,
                "p50": flow_stats.p50,
                "p95": flow_stats.p95,
                "std": flow_stats.std,
                "jitter": flow_stats.jitter,
                "histogram": list(flow_stats.histogram),
            }
            for flow, flow_stats in report.per_flow.items()
        },
    )


def run(request: MapRequest | SimRequest) -> MapResponse | SimResponse:
    """Dispatch one request to its executor by payload type."""
    if isinstance(request, MapRequest):
        return run_map(request)
    if isinstance(request, SimRequest):
        return run_sim(request)
    raise ApiError(f"cannot run a {type(request).__name__}")


#: Executors ``run_batch`` can fan out over.
BATCH_EXECUTORS = ("serial", "thread", "process", "replica")

#: Environment hooks for chaos testing the batch engine itself.  When a
#: request's tag matches ``REPRO_CRASH_TAG``, the worker hard-exits before
#: running it (simulating a segfaulting native kernel or an OOM kill); with
#: ``REPRO_CRASH_ONCE`` set to a sentinel path, only the first worker to
#: claim the sentinel crashes, so retries succeed.  ``REPRO_SLOW_TAG`` makes
#: the matching request sleep ``REPRO_SLOW_SECONDS`` first (deterministic
#: timeout testing).  These are test instruments: they act only when the
#: variables are set, which no production surface does.
_CRASH_TAG_ENV = "REPRO_CRASH_TAG"
_CRASH_ONCE_ENV = "REPRO_CRASH_ONCE"
_SLOW_TAG_ENV = "REPRO_SLOW_TAG"
_SLOW_SECONDS_ENV = "REPRO_SLOW_SECONDS"

#: Marker for a slot whose process worker died before returning anything.
_WORKER_DIED = object()


def _request_tag(request: MapRequest | SimRequest) -> str | None:
    """The batch-correlation tag of a request (sim requests inherit it)."""
    if isinstance(request, SimRequest):
        return request.map_request.tag
    return request.tag


def _inject_batch_chaos(request: MapRequest | SimRequest) -> None:
    """Honor the crash/slow test hooks for a matching request tag."""
    tag = _request_tag(request)
    if tag is None:
        return
    if os.environ.get(_CRASH_TAG_ENV) == tag:
        sentinel = os.environ.get(_CRASH_ONCE_ENV)
        if sentinel:
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return  # already crashed once; let the retry succeed
            os.close(fd)
        # A real crash, not an exception: no cleanup, no pickled traceback.
        os._exit(23)
    if os.environ.get(_SLOW_TAG_ENV) == tag:
        time.sleep(float(os.environ.get(_SLOW_SECONDS_ENV, "1.0")))


def _timeout_message(timeout: float) -> str:
    return f"request did not complete within {timeout} s"


def _guarded_run(
    request: MapRequest | SimRequest, timeout: float | None
) -> MapResponse | SimResponse | ErrorResponse:
    """Run one batch slot; never raises.

    Exceptions become :class:`ErrorResponse` payloads carrying the
    exception class name and message — the same strings every executor
    produces, so batch results stay byte-identical across serial, thread
    and process execution.  When the run outlasts ``timeout``, the (late)
    result is discarded for the timeout error, mirroring what the pool
    front-end reports when it stops waiting.
    """
    start = time.monotonic()
    _inject_batch_chaos(request)
    try:
        response: MapResponse | SimResponse | ErrorResponse = run(request)
    except Exception as exc:  # noqa: BLE001 — slot isolation is the contract
        response = ErrorResponse(
            request=request, error=type(exc).__name__, message=str(exc)
        )
    if timeout is not None and time.monotonic() - start > timeout:
        return ErrorResponse(
            request=request, error="BatchError", message=_timeout_message(timeout)
        )
    return response


def _run_replica_batch(
    requests: list[MapRequest | SimRequest],
) -> list[MapResponse | SimResponse | ErrorResponse]:
    """The ``executor="replica"`` path: batch vector sims into one kernel call.

    Every sim request whose resolved engine is the vector engine is
    prepared (map, route, network build) up front, then all of them
    advance together through
    :func:`repro.simnoc.engines.vector.run_replicas` — one compiled
    ``advance_batch`` invocation per router model when a JIT backend is
    available, bit-identical interpreted fallback otherwise.  Map
    requests and sims pinned to other engines run in-process exactly as
    the serial executor would, so the response list is byte-identical to
    ``executor="serial"`` in every slot, in request order.
    """
    from repro.simnoc.engines.auto import resolve_auto_engine
    from repro.simnoc.engines.vector import run_replicas

    results: list = [None] * len(requests)
    prepared: list[tuple[int, SimRequest, Simulator, MapResponse]] = []
    for index, request in enumerate(requests):
        if not isinstance(request, SimRequest):
            results[index] = _guarded_run(request, None)
            continue
        _inject_batch_chaos(request)
        try:
            simulator, map_response = _prepare_sim(request)
            engine = simulator.engine_name
            if engine == "auto":
                engine = resolve_auto_engine(simulator.network)
        except Exception as exc:  # noqa: BLE001 — slot isolation, as serial
            results[index] = ErrorResponse(
                request=request, error=type(exc).__name__, message=str(exc)
            )
            continue
        if engine != "vector":
            # Pinned to cycle/event (or auto resolved there): the replica
            # kernel cannot batch it, so the slot runs like a serial one.
            try:
                report = simulator.run()
                results[index] = _build_sim_response(request, map_response, report)
            except Exception as exc:  # noqa: BLE001
                results[index] = ErrorResponse(
                    request=request, error=type(exc).__name__, message=str(exc)
                )
            continue
        prepared.append((index, request, simulator, map_response))

    if prepared:
        errors = run_replicas([simulator for _, _, simulator, _ in prepared])
        for (index, request, simulator, map_response), error in zip(
            prepared, errors
        ):
            if error is not None:
                results[index] = ErrorResponse(
                    request=request, error=type(error).__name__, message=str(error)
                )
                continue
            try:
                report = simulator._build_report()
                results[index] = _build_sim_response(request, map_response, report)
            except Exception as exc:  # noqa: BLE001
                results[index] = ErrorResponse(
                    request=request, error=type(exc).__name__, message=str(exc)
                )
    return results


def run_batch(
    requests: list[MapRequest | SimRequest],
    workers: int | None = None,
    executor: str = "thread",
    timeout: float | None = None,
    retries: int = 1,
    isolate: bool = False,
) -> list[MapResponse | SimResponse | ErrorResponse]:
    """Run many requests concurrently; responses keep request order.

    Determinism contract (regression-tested): every response is a pure
    function of its own request.  All RNG streams derive from the seeds
    carried *in* the request payload plus stable per-component stream
    indices — mapper seeds via their options, trace traffic via its
    per-commodity streams, synthetic injectors via
    :func:`repro.seeding.derive_seed` — and no job reads shared global RNG
    state, so ``workers=1`` and ``workers=8``, threads and processes, all
    produce byte-identical response payloads, in the same order.

    Failure contract: one bad request never aborts the batch.  A request
    that raises yields an :class:`ErrorResponse` in its slot (same payload
    on every executor); a request that outlives ``timeout`` yields a
    ``BatchError``-typed ``ErrorResponse``; a process worker that *dies*
    (segfault, OOM kill) breaks only its own slots — the victims are
    retried up to ``retries`` times in fresh single-worker pools (so a
    deterministic crasher cannot take innocents down twice), and a slot
    still failing after that yields a ``BatchError``-typed
    ``ErrorResponse``.  Every other slot completes normally.

    Args:
        requests: any mix of map and sim requests.
        workers: worker count; defaults to ``min(len(requests), cpu_count)``
            and degrades to serial execution for empty/singleton batches.
        executor: ``"serial"`` (in-process, no pool — the reference
            executor), ``"thread"`` (default; fine for numpy/LP-bound
            mapping jobs), ``"process"`` (true multi-core for
            Python-bound jobs — high-load simulation sweeps above all;
            requests and responses cross the process boundary as pickled
            frozen payloads) or ``"replica"`` (in-process; sim requests
            resolving to the vector engine advance together in one
            compiled kernel invocation per router model — the fastest
            shape for a ``latency_sweep`` when a JIT backend is
            available — while every other slot runs serially.  Responses
            stay byte-identical to ``"serial"``.  Incompatible with
            ``timeout``; ``workers``/``retries``/``isolate`` are pool
            parameters and have no effect).
        timeout: per-request wall-clock budget in seconds; None disables.
            Pool executors stop waiting on a late slot (its worker finishes
            in the background); the serial executor detects the overrun
            after the fact.  Either way the slot reports the same payload.
        retries: extra attempts for a slot whose process worker died.
        isolate: force pool dispatch even for singleton / single-worker
            batches, which otherwise degrade to in-process serial
            execution.  A long-lived embedder (the job service) sets this
            so every ``executor="process"`` request keeps crash isolation
            — a request that kills its worker must not kill the host.
            No effect with ``executor="serial"``.

    Raises:
        ApiError: for a non-positive worker count, unknown executor,
            non-positive timeout or negative retries.
    """
    if executor not in BATCH_EXECUTORS:
        raise ApiError(
            f"executor must be one of {', '.join(BATCH_EXECUTORS)}, "
            f"got {executor!r}"
        )
    if timeout is not None and timeout <= 0:
        raise ApiError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ApiError(f"retries must be >= 0, got {retries}")
    if executor == "replica":
        if timeout is not None:
            raise ApiError(
                "the replica executor advances every slot in one shared "
                "kernel invocation; per-request timeouts are not supported"
            )
        return _run_replica_batch(requests)
    if not requests:
        return []
    if workers is None:
        workers = min(len(requests), os.cpu_count() or 1)
    if workers < 1:
        raise ApiError(f"workers must be >= 1, got {workers}")
    if executor == "serial" or (
        not isolate and (workers == 1 or len(requests) == 1)
    ):
        return [_guarded_run(request, timeout) for request in requests]

    pool_cls = ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
    results: list = [None] * len(requests)
    with pool_cls(max_workers=workers) as pool:
        futures = [
            pool.submit(_guarded_run, request, timeout) for request in requests
        ]
        for index, (request, future) in enumerate(zip(requests, futures)):
            try:
                results[index] = future.result(timeout=timeout)
            except FuturesTimeoutError:
                results[index] = ErrorResponse(
                    request=request,
                    error="BatchError",
                    message=_timeout_message(timeout),
                )
            except BrokenExecutor:
                results[index] = _WORKER_DIED
            except Exception as exc:  # noqa: BLE001 — e.g. unpicklable result
                results[index] = ErrorResponse(
                    request=request, error=type(exc).__name__, message=str(exc)
                )

    # Retry slots whose worker died — each in its own fresh single-worker
    # pool so a deterministically-crashing request cannot re-kill innocent
    # neighbours, and a bounded number of times so it cannot loop forever.
    for index, request in enumerate(requests):
        if results[index] is not _WORKER_DIED:
            continue
        for _ in range(retries):
            with ProcessPoolExecutor(max_workers=1) as retry_pool:
                future = retry_pool.submit(_guarded_run, request, timeout)
                try:
                    results[index] = future.result(timeout=timeout)
                    break
                except FuturesTimeoutError:
                    results[index] = ErrorResponse(
                        request=request,
                        error="BatchError",
                        message=_timeout_message(timeout),
                    )
                    break
                except BrokenExecutor:
                    continue
        if results[index] is _WORKER_DIED:
            results[index] = ErrorResponse(
                request=request,
                error="BatchError",
                message=(
                    f"worker process died while running this request "
                    f"({1 + retries} attempt(s))"
                ),
            )
    return results


def rebuild_mapping(response: MapResponse) -> Mapping:
    """Reconstruct the live :class:`Mapping` a response describes.

    The response's placement plus the resolved topology are a complete
    description, so cached/logged responses can be rehydrated for
    rendering, re-routing or simulation without re-running the mapper.
    """
    app = resolve_app(response.request.app)
    topology = response.topology.build(app)
    if response.request.faults is not None and not response.request.faults.is_empty:
        topology = response.request.faults.apply(topology)
    return Mapping(app, topology, response.placement)
