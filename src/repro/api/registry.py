"""The mapper registry: one catalogue of mapping algorithms for all surfaces.

Algorithms self-register at import time via the :func:`register_mapper`
decorator placed on their defining module (so adding an algorithm is one
decorator, not edits to N hard-coded tuples).  The CLI, the experiment
runner, the benchmark harness and the batch engine all resolve algorithms
here; none of them carries its own dispatch table any more.

This module deliberately imports nothing from :mod:`repro.mapping` at the
top level — the mapping modules import *us* to register themselves, and the
registry pulls them in lazily the first time a lookup happens.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.api.options import MapperOptions
from repro.errors import ApiError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graphs.core_graph import CoreGraph
    from repro.graphs.topology import NoCTopology
    from repro.mapping.base import MappingResult


@dataclass(frozen=True)
class MapperEntry:
    """One registered mapping algorithm.

    Attributes:
        name: public registry key (e.g. ``"nmap-tm"``).
        fn: the algorithm callable ``fn(app, topology, **kwargs)``.
        options_type: dataclass of user-tunable keyword arguments.
        fixed: keyword arguments pinned by the registration (e.g. the
            quadrant mode that distinguishes ``nmap-tm`` from ``nmap-ta``).
        summary: one-line description for ``list-mappers`` output.
    """

    name: str
    fn: Callable[..., "MappingResult"]
    options_type: type[MapperOptions]
    fixed: tuple[tuple[str, Any], ...]
    summary: str

    def default_options(self) -> MapperOptions:
        return self.options_type()

    @property
    def seedable(self) -> bool:
        """True when the algorithm accepts a ``seed`` option."""
        return self.options_type().seedable

    def options_from_dict(self, payload: dict[str, Any] | None) -> MapperOptions:
        """Validated options from a JSON-style dict (None -> defaults)."""
        if payload is None:
            return self.options_type()
        return self.options_type.from_dict(payload)

    def coerce_options(self, options: MapperOptions | None) -> MapperOptions:
        """Validate a typed options instance against this entry.

        Raises:
            ApiError: when ``options`` is of another mapper's type.
        """
        if options is None:
            return self.options_type()
        if type(options) is not self.options_type:
            raise ApiError(
                f"mapper {self.name!r} takes {self.options_type.__name__}, "
                f"got {type(options).__name__}"
            )
        options.validate()
        return options

    def run(
        self,
        app: "CoreGraph",
        topology: "NoCTopology",
        options: MapperOptions | None = None,
    ) -> "MappingResult":
        """Invoke the algorithm with validated options."""
        opts = self.coerce_options(options)
        kwargs = opts.to_dict()
        kwargs.update(self.fixed)
        return self.fn(app, topology, **kwargs)


_REGISTRY: dict[str, MapperEntry] = {}

#: Presentation order for surfaces that list mappers (the paper's order:
#: NMAP variants first, then the compared baselines, then extensions).
#: Registered names missing from this list sort after it, alphabetically.
_CANONICAL_ORDER = (
    "nmap",
    "nmap-tm",
    "nmap-ta",
    "pmap",
    "gmap",
    "pbb",
    "annealing",
    "hmap",
)


def register_mapper(
    name: str,
    *,
    options: type[MapperOptions],
    fixed: dict[str, Any] | None = None,
    summary: str = "",
) -> Callable[[Callable[..., "MappingResult"]], Callable[..., "MappingResult"]]:
    """Class-decorator factory registering a mapping algorithm.

    The decorated function is returned unchanged — registration is a side
    effect, so the plain functional API (``nmap_single_path(app, mesh)``)
    keeps working untouched.

    Raises:
        ApiError: when ``name`` is already registered.
    """

    def decorate(fn: Callable[..., "MappingResult"]) -> Callable[..., "MappingResult"]:
        if name in _REGISTRY:
            raise ApiError(f"mapper {name!r} is already registered")
        doc = (fn.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = MapperEntry(
            name=name,
            fn=fn,
            options_type=options,
            fixed=tuple(sorted((fixed or {}).items())),
            summary=summary or (doc[0] if doc else ""),
        )
        return fn

    return decorate


def _ensure_loaded() -> None:
    """Import the mapping package so its decorators have run."""
    import repro.mapping  # noqa: F401  (registration side effect)


def _sort_key(name: str) -> tuple[int, str]:
    try:
        return (_CANONICAL_ORDER.index(name), name)
    except ValueError:
        return (len(_CANONICAL_ORDER), name)


def list_mappers() -> tuple[str, ...]:
    """All registered mapper names, in presentation order."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY, key=_sort_key))


def mapper_entries() -> list[MapperEntry]:
    """All registered entries, in :func:`list_mappers` order."""
    return [_REGISTRY[name] for name in list_mappers()]


def get_mapper(name: str) -> MapperEntry:
    """Resolve one mapper by name.

    Raises:
        ApiError: for unknown names; the message lists valid ones.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ApiError(
            f"unknown mapper {name!r}; known: {', '.join(list_mappers())}"
        ) from None


def parse_option_assignments(pairs: Iterable[str]) -> dict[str, Any]:
    """Parse CLI-style ``key=value`` strings into an options payload.

    Values are decoded as JSON when possible (``3``, ``0.95``, ``true``,
    ``null``) and fall back to bare strings; ``none`` is accepted as an
    alias for ``null`` so shell users need no quoting tricks.

    Raises:
        ApiError: on entries without ``=``.
    """
    payload: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ApiError(f"mapper option must look like key=value, got {pair!r}")
        lowered = raw.strip().lower()
        if lowered in {"none", "null"}:
            payload[key] = None
        elif lowered == "true":
            payload[key] = True
        elif lowered == "false":
            payload[key] = False
        else:
            try:
                payload[key] = json.loads(raw)
            except json.JSONDecodeError:
                payload[key] = raw
    return payload


def with_seed(options: MapperOptions, seed: int) -> MapperOptions:
    """A copy of ``options`` with its ``seed`` field replaced.

    Raises:
        ApiError: when the options carry no seed (deterministic algorithm).
    """
    if not options.seedable:
        raise ApiError(
            f"{type(options).__name__} has no seed — the algorithm is deterministic"
        )
    return dataclasses.replace(options, seed=seed)
