"""Typed per-algorithm option dataclasses for the mapper registry.

Every mapping algorithm exposes its knobs as a frozen dataclass whose field
names match the algorithm function's keyword arguments, so the registry can
invoke ``fn(app, topology, **asdict(options))`` uniformly.  Options are
validated when a request is built (not when it runs), which is what lets a
queued batch fail fast on a typo instead of minutes into a fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from repro.errors import ApiError

#: Accepted runtime types per annotation token (bool is checked first and
#: excluded from int, since bool subclasses int).
_ANNOTATION_TYPES: dict[str, tuple[type, ...]] = {
    "bool": (bool,),
    "int": (int,),
    "float": (int, float),
    "str": (str,),
}

#: Objectives the cost-driven mappers (NMAP, annealing) can optimize.
#: ``"comm-cost"`` is Equation 7 on the pristine fabric; ``"resilience"``
#: is the expected Equation-7 cost over the single-link-failure ensemble
#: (see :mod:`repro.faults.resilience`).
MAPPER_OBJECTIVES = ("comm-cost", "resilience")


def _check_objective(cls_name: str, objective: str) -> None:
    if objective not in MAPPER_OBJECTIVES:
        raise ApiError(
            f"{cls_name}.objective must be one of "
            f"{', '.join(MAPPER_OBJECTIVES)}, got {objective!r}"
        )


def _check_field_type(cls_name: str, name: str, annotation: str, value: Any) -> None:
    """Validate one option value against its field annotation string.

    Annotations here are always simple unions of ``bool``/``int``/``float``
    and ``None`` (stringified by ``from __future__ import annotations``).

    Raises:
        ApiError: when the value's type does not match.
    """
    tokens = {token.strip() for token in annotation.split("|")}
    if value is None:
        if "None" in tokens:
            return
        raise ApiError(f"{cls_name}.{name} must not be None")
    for token in tokens - {"None"}:
        expected = _ANNOTATION_TYPES.get(token)
        if expected is None:
            return  # unknown annotation: leave validation to validate()
        if isinstance(value, expected) and not (
            token != "bool" and isinstance(value, bool)
        ):
            return
    raise ApiError(
        f"{cls_name}.{name} expects {annotation}, got {value!r} "
        f"({type(value).__name__})"
    )


@dataclass(frozen=True)
class MapperOptions:
    """Base class for per-algorithm options.

    Subclasses declare the algorithm's keyword arguments as fields and may
    override :meth:`validate` for range checks.  ``to_dict``/``from_dict``
    give the JSON round-trip used by :class:`repro.api.specs.MapRequest`.
    """

    def validate(self) -> None:
        """Raise :class:`ApiError` on out-of-range values."""

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MapperOptions":
        """Build and validate options from a plain dictionary.

        Raises:
            ApiError: on unknown keys or values rejected by ``validate``.
        """
        if not isinstance(payload, dict):
            raise ApiError(f"{cls.__name__} payload must be a dict, got {payload!r}")
        by_name = {f.name: f for f in fields(cls)}
        unknown = sorted(set(payload) - set(by_name))
        if unknown:
            raise ApiError(
                f"unknown {cls.__name__} option(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(by_name)) or '(none)'}"
            )
        for name, value in payload.items():
            _check_field_type(cls.__name__, name, str(by_name[name].type), value)
        options = cls(**payload)
        options.validate()
        return options

    @property
    def seedable(self) -> bool:
        """True when the algorithm is stochastic (has a ``seed`` field)."""
        return any(f.name == "seed" for f in fields(self))


@dataclass(frozen=True)
class NmapOptions(MapperOptions):
    """Knobs of :func:`repro.mapping.nmap.nmap_single_path`."""

    improve: bool = True
    max_passes: int | None = None
    objective: str = "comm-cost"

    def validate(self) -> None:
        if self.max_passes is not None and self.max_passes < 1:
            raise ApiError(f"max_passes must be >= 1, got {self.max_passes}")
        _check_objective(type(self).__name__, self.objective)


@dataclass(frozen=True)
class NmapSplitOptions(MapperOptions):
    """Knobs of :func:`repro.mapping.nmap_split.nmap_with_splitting`.

    The quadrant mode (NMAPTM vs NMAPTA) is part of the mapper *name*
    (``nmap-tm`` / ``nmap-ta``), not an option, so responses stay
    self-describing.
    """

    improve: bool = True


@dataclass(frozen=True)
class PmapOptions(MapperOptions):
    """PMAP has no tunable knobs; the empty options keep the API uniform."""


@dataclass(frozen=True)
class GmapOptions(MapperOptions):
    """GMAP has no tunable knobs; the empty options keep the API uniform."""


@dataclass(frozen=True)
class HmapOptions(MapperOptions):
    """Knobs of :func:`repro.mapping.hmap.hmap` (partition-aware mapper)."""

    regions: int | None = None
    partitioner: str = "auto"
    refine: bool = True

    def validate(self) -> None:
        if self.regions is not None and self.regions < 1:
            raise ApiError(f"regions must be >= 1, got {self.regions}")
        if self.partitioner != "auto":
            from repro.partition import list_partitioners

            if self.partitioner not in list_partitioners():
                raise ApiError(
                    "partitioner must be 'auto' or one of "
                    f"{', '.join(list_partitioners())}, "
                    f"got {self.partitioner!r}"
                )


@dataclass(frozen=True)
class PbbOptions(MapperOptions):
    """Knobs of :func:`repro.mapping.pbb.pbb` (the paper's runtime budget)."""

    max_queue: int = 2000
    tight_bounds: bool | None = None

    def validate(self) -> None:
        if self.max_queue < 1:
            raise ApiError(f"max_queue must be >= 1, got {self.max_queue}")


@dataclass(frozen=True)
class AnnealingOptions(MapperOptions):
    """Knobs of :func:`repro.mapping.annealing.annealing_mapping`."""

    seed: int = 1
    initial_temperature: float | None = None
    cooling: float = 0.95
    moves_per_temperature: int | None = None
    min_temperature_fraction: float = 1e-4
    objective: str = "comm-cost"

    def validate(self) -> None:
        _check_objective(type(self).__name__, self.objective)
        if not (0.0 < self.cooling < 1.0):
            raise ApiError(f"cooling must be in (0, 1), got {self.cooling}")
        if self.initial_temperature is not None and self.initial_temperature <= 0:
            raise ApiError(
                f"initial_temperature must be positive, got {self.initial_temperature}"
            )
        if self.moves_per_temperature is not None and self.moves_per_temperature < 1:
            raise ApiError(
                f"moves_per_temperature must be >= 1, got {self.moves_per_temperature}"
            )
        if self.min_temperature_fraction <= 0:
            raise ApiError(
                "min_temperature_fraction must be positive, "
                f"got {self.min_temperature_fraction}"
            )
