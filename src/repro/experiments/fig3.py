"""Figure 3: communication cost of PMAP/GMAP/PBB/NMAP on six video apps.

The paper plots Equation 7's cost (hops x bandwidth) per application under
the same bandwidth constraints for every algorithm.  The expected shape:
NMAP and PBB track each other and beat PMAP and GMAP on every application.
"""

from __future__ import annotations

from typing import Callable

from repro.apps import VIDEO_APPS, get_app
from repro.experiments.common import (
    ExperimentTable,
    generous_link_bandwidth,
    mesh_for_app,
)
from repro.mapping import gmap, nmap_single_path, pbb, pmap
from repro.mapping.base import MappingResult

ALGORITHMS: dict[str, Callable[..., MappingResult]] = {
    "pmap": pmap,
    "gmap": gmap,
    "pbb": pbb,
    "nmap": nmap_single_path,
}


def run_fig3(
    apps: tuple[str, ...] = VIDEO_APPS,
    algorithms: tuple[str, ...] = ("pmap", "gmap", "pbb", "nmap"),
    pbb_max_queue: int = 1000,
) -> ExperimentTable:
    """Regenerate Figure 3's data.

    Args:
        apps: application names (defaults to the paper's six).
        algorithms: which algorithms to run (subset for quick checks).
        pbb_max_queue: PBB's bounded queue length.

    Returns:
        Table with one row per application and one cost column per
        algorithm.
    """
    table = ExperimentTable(
        title="Figure 3 - communication cost (hops x MB/s)",
        headers=["app"] + [name.upper() for name in algorithms],
        notes=[
            "mesh: smallest near-square fitting the app; uniform link bandwidth = "
            "total app bandwidth (all algorithms feasible, pure cost comparison)",
            f"pbb max_queue = {pbb_max_queue}",
        ],
    )
    for app_name in apps:
        app = get_app(app_name)
        mesh = mesh_for_app(app, generous_link_bandwidth(app))
        row: list[object] = [app_name]
        for algorithm in algorithms:
            runner = ALGORITHMS[algorithm]
            if algorithm == "pbb":
                result = runner(app, mesh, max_queue=pbb_max_queue)
            else:
                result = runner(app, mesh)
            row.append(result.comm_cost)
        table.rows.append(row)
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_fig3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
