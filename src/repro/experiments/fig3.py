"""Figure 3: communication cost of PMAP/GMAP/PBB/NMAP on six video apps.

The paper plots Equation 7's cost (hops x bandwidth) per application under
the same bandwidth constraints for every algorithm.  The expected shape:
NMAP and PBB track each other and beat PMAP and GMAP on every application.
"""

from __future__ import annotations

from repro.api import PbbOptions
from repro.apps import VIDEO_APPS
from repro.experiments.common import ExperimentTable, map_grid


def run_fig3(
    apps: tuple[str, ...] = VIDEO_APPS,
    algorithms: tuple[str, ...] = ("pmap", "gmap", "pbb", "nmap"),
    pbb_max_queue: int = 1000,
) -> ExperimentTable:
    """Regenerate Figure 3's data.

    Args:
        apps: application names (defaults to the paper's six).
        algorithms: which registered mappers to run (subset for quick checks).
        pbb_max_queue: PBB's bounded queue length.

    Returns:
        Table with one row per application and one cost column per
        algorithm.
    """
    table = ExperimentTable(
        title="Figure 3 - communication cost (hops x MB/s)",
        headers=["app"] + [name.upper() for name in algorithms],
        notes=[
            "mesh: smallest near-square fitting the app; uniform link bandwidth = "
            "total app bandwidth (all algorithms feasible, pure cost comparison)",
            f"pbb max_queue = {pbb_max_queue}",
        ],
    )
    grid = map_grid(
        apps,
        algorithms,
        options={"pbb": PbbOptions(max_queue=pbb_max_queue)},
    )
    for position, app_name in enumerate(apps):
        row: list[object] = [app_name]
        for algorithm in algorithms:
            row.append(grid[(position, "auto", algorithm)].comm_cost)
        table.rows.append(row)
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_fig3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
