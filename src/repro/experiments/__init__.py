"""Experiment harness: one module per table/figure of the paper (§7).

Every module exposes ``run_*`` returning a structured result and a
``render`` helper producing the text table printed by the CLI and recorded
in EXPERIMENTS.md.  The benchmarks under ``benchmarks/`` call the same
``run_*`` functions, so the bench suite regenerates exactly what is
documented.

| Paper artifact | Module |
|---|---|
| Figure 3 (comm cost, 4 algorithms x 6 apps) | :mod:`repro.experiments.fig3` |
| Figure 4 (min bandwidth, 7 schemes x 6 apps) | :mod:`repro.experiments.fig4` |
| Table 1 (cost & bandwidth ratios)            | :mod:`repro.experiments.table1` |
| Table 2 (PBB vs NMAP on random graphs)       | :mod:`repro.experiments.table2` |
| Figure 5c (latency vs link bandwidth)        | :mod:`repro.experiments.fig5c` |
| Table 3 (DSP NoC design figures)             | :mod:`repro.experiments.table3` |
| §5 ILP-gap claim (heuristic within ~10%)     | :mod:`repro.experiments.ilp_gap` |
"""

from repro.experiments.common import ExperimentTable, render_table

__all__ = ["ExperimentTable", "render_table"]
