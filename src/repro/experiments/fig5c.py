"""Figure 5c: average packet latency vs link bandwidth, single vs split.

The paper maps the 6-core DSP filter onto the 2x3 mesh, generates the NoC
with ×pipes and sweeps link bandwidth from 1.1 to 1.8 GB/s, plotting average
packet latency for single minimum-path routing ("Minp") and split-traffic
routing ("Split").  Expected shape: latency falls as bandwidth rises; the
single-path curve lies above the split curve at low bandwidth and rises much
more sharply (wormhole blocking snowballs on the 600 MB/s hot link).

Here the substitute simulator (:mod:`repro.simnoc`) runs the same sweep.
The mapping is produced by NMAPTM under a tight link budget so the heavy
Filter<->IFFT pair lands two hops apart with two disjoint minimum paths —
split routing then has equal hop counts (the paper's low-jitter argument)
and the comparison isolates queueing, as in the paper.  Results average a
few seeds since bursty traffic is noisy.
"""

from __future__ import annotations

from statistics import mean

from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.experiments.common import ExperimentTable
from repro.graphs.commodities import build_commodities
from repro.mapping import nmap_with_splitting
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion
from repro.simnoc import SimConfig, simulate_mapping

#: Link-bandwidth sweep of the paper's x-axis (GB/s).
SWEEP_GBPS = (1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8)


def run_fig5c(
    sweep_gbps: tuple[float, ...] = SWEEP_GBPS,
    seeds: tuple[int, ...] = (1, 2, 3),
    measure_cycles: int = 20_000,
    mean_burst_packets: float = 2.0,
) -> ExperimentTable:
    """Regenerate Figure 5c's two latency curves.

    Args:
        sweep_gbps: link bandwidths to simulate.
        seeds: traffic seeds averaged per point.
        measure_cycles: measurement window per run.
        mean_burst_packets: traffic burstiness (the paper's traffic "is
            bursty in nature"; 2 packets/burst keeps the network the
            bottleneck rather than the injection queue).
    """
    app = dsp_filter()
    mesh = dsp_mesh(link_bandwidth=500.0)
    mapped = nmap_with_splitting(app, mesh, quadrant_only=True)
    commodities = build_commodities(app, mapped.mapping)
    single = min_path_routing(mesh, commodities)
    _, split = solve_min_congestion(mesh, commodities, quadrant_only=True)

    table = ExperimentTable(
        title="Figure 5c - avg packet latency (cycles) vs link bandwidth (GB/s)",
        headers=["link_bw_gbps", "minp_latency", "split_latency"],
        notes=[
            "DSP filter on 2x3 mesh; NMAPTM mapping; 64 B packets; "
            "7-cycle switch delay; wormhole with credit flow control",
            f"average over seeds {seeds}; burst mean {mean_burst_packets} packets",
            f"single-path max link load {single.max_link_load():.0f} MB/s vs "
            f"split {split.max_link_load():.0f} MB/s",
        ],
    )
    for gbps in sweep_gbps:
        minp_means: list[float] = []
        split_means: list[float] = []
        for seed in seeds:
            config = SimConfig(
                mean_burst_packets=mean_burst_packets,
                buffer_depth=16,
                measure_cycles=measure_cycles,
                seed=seed,
            )
            rate = config.gbps_link_rate(gbps)
            minp_report = simulate_mapping(
                mesh, commodities, single, config, link_rate_flits_per_cycle=rate
            )
            split_report = simulate_mapping(
                mesh, commodities, split, config, link_rate_flits_per_cycle=rate
            )
            minp_means.append(minp_report.stats.mean)
            split_means.append(split_report.stats.mean)
        table.rows.append(
            [gbps, round(mean(minp_means), 1), round(mean(split_means), 1)]
        )
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_fig5c().render())


if __name__ == "__main__":  # pragma: no cover
    main()
