"""§5 claim: the shortestpath() heuristic lands within ~10% of the ILP.

The paper notes the minimum-path selection could be an ILP taking minutes,
and that the few-second heuristic is "experimentally observed to be within
10% of the solution from ILP".  This experiment routes each application's
NMAP mapping with both the heuristic and the exact max-load-minimizing ILP
(:mod:`repro.routing.ilp`) and reports the gap in maximum link load — the
quantity the heuristic's load balancing optimizes.
"""

from __future__ import annotations

from repro.apps import get_app
from repro.experiments.common import (
    ExperimentTable,
    generous_link_bandwidth,
    mesh_for_app,
)
from repro.graphs.commodities import build_commodities
from repro.mapping import nmap_single_path
from repro.routing.ilp import ilp_single_path_routing
from repro.routing.min_path import min_path_routing

#: Apps small enough for exhaustive minimal-path enumeration.
DEFAULT_APPS = ("dsp", "pip", "vopd", "mpeg4", "mwa", "mwag", "dsd")


def run_ilp_gap(apps: tuple[str, ...] = DEFAULT_APPS) -> ExperimentTable:
    """Compare heuristic vs ILP max link load on each app's NMAP mapping."""
    table = ExperimentTable(
        title="Heuristic shortestpath() vs exact ILP (max link load, MB/s)",
        headers=["app", "heuristic", "ilp", "gap_pct"],
        notes=["paper: heuristic within ~10% of ILP (in seconds vs minutes)"],
    )
    for app_name in apps:
        app = get_app(app_name)
        mesh = mesh_for_app(app, generous_link_bandwidth(app))
        mapping = nmap_single_path(app, mesh).mapping
        commodities = build_commodities(app, mapping)
        heuristic = min_path_routing(mesh, commodities).max_link_load()
        ilp_load, _ = ilp_single_path_routing(mesh, commodities)
        gap = 100.0 * (heuristic - ilp_load) / ilp_load if ilp_load else 0.0
        table.rows.append([app_name, heuristic, round(ilp_load, 1), round(gap, 1)])
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_ilp_gap().render())


if __name__ == "__main__":  # pragma: no cover
    main()
