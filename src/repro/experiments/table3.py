"""Table 3: DSP NoC design results.

The paper's table reports the ×pipes component figures (NI area 0.6 mm^2,
switch area 1.08 mm^2, switch delay 7 cycles, packet size 64 B) and the
bandwidth the design must provision: 600 MB/s per link for single
minimum-path routing versus 200 MB/s with traffic splitting.

Reproduced quantities:

* component figures — from :class:`repro.design.XpipesLibrary` via the
  compiled design;
* ``minp BW`` — maximum aggregate link load under single min-path routing
  of the NMAPTM mapping (exactly 600 MB/s: the Filter<->IFFT stream rides
  one link);
* ``split BW (aggregate)`` — min-congestion LP optimum (the smallest
  uniform capacity any split routing can reach for this mapping);
* ``split BW (hot flow/link)`` — the largest share of the 600 MB/s stream
  on any single link after splitting, the per-link reservation the paper's
  200 MB/s corresponds to.

EXPERIMENTS.md discusses why an *aggregate* 200 MB/s is unattainable for
any connected 6-core placement on a 2x3 mesh (cut-bound argument), which is
why the aggregate value lands above the paper's 200.
"""

from __future__ import annotations

from repro.apps.dsp import dsp_filter, dsp_mesh
from repro.design import XpipesLibrary, compile_design
from repro.experiments.common import ExperimentTable
from repro.graphs.commodities import build_commodities
from repro.mapping import nmap_single_path, nmap_with_splitting
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_min_congestion


def run_table3() -> ExperimentTable:
    """Regenerate Table 3's design figures for the DSP filter NoC."""
    app = dsp_filter()

    # Single minimum-path design: the cost-optimal NMAP mapping carries the
    # 600 MB/s Filter<->IFFT stream on one link -> 600 MB/s provisioning.
    minp_mesh = dsp_mesh(link_bandwidth=app.total_bandwidth())
    minp_mapped = nmap_single_path(app, minp_mesh)
    minp_commodities = build_commodities(app, minp_mapped.mapping)
    single = min_path_routing(minp_mesh, minp_commodities)

    # Split-traffic design: NMAPTA under a 400 MB/s budget (the best any
    # placement of this graph can reach on a 2x3 mesh; see EXPERIMENTS.md
    # for the cut-bound argument versus the paper's 200).
    split_mesh = dsp_mesh(link_bandwidth=400.0)
    split_mapped = nmap_with_splitting(app, split_mesh, quadrant_only=False)
    split_commodities = build_commodities(app, split_mapped.mapping)
    split_lambda, split = solve_min_congestion(
        split_mesh, split_commodities, quadrant_only=False
    )
    hot = max(split_commodities, key=lambda c: c.value)
    hot_paths = sum(
        1 for _link, amount in split.flows[hot.index].items() if amount > 1e-6
    )

    library = XpipesLibrary()
    design = compile_design(minp_mapped.mapping, single, library=library)

    table = ExperimentTable(
        title="Table 3 - DSP NoC design results",
        headers=["quantity", "value", "paper"],
        notes=[
            "areas/delay/packet size are XpipesLibrary parameters (the paper's "
            "x-pipes macros)",
            "minp BW: max link load of the cost-optimal NMAP mapping under "
            "single min-path routing; split BW: min-congestion LP optimum of "
            "the NMAPTA mapping (400 is provably minimal on a 2x3 mesh for "
            "this graph - see EXPERIMENTS.md)",
        ],
    )
    table.rows.append(["NI area (mm2)", library.ni_area_mm2, 0.6])
    table.rows.append(["switch area (mm2, 5x5)", library.switch_base_area_mm2, 1.08])
    table.rows.append(["switch delay (cycles)", library.switch_delay_cycles, 7])
    table.rows.append(["packet size (B)", library.packet_bytes, 64])
    table.rows.append(["minp BW (MB/s)", single.max_link_load(), 600])
    table.rows.append(["split BW (MB/s)", round(split_lambda, 1), 200])
    table.rows.append(["hot-flow links used (split)", hot_paths, 3])
    table.rows.append(["design area total (mm2)", round(design.total_area_mm2, 2), "-"])
    table.rows.append(["switches instantiated", design.num_switches, 6])
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_table3().render())


if __name__ == "__main__":  # pragma: no cover
    main()
