"""Run every experiment and render the full report (CLI: ``experiment all``)."""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.experiments.common import ExperimentTable
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5c import run_fig5c
from repro.experiments.ilp_gap import run_ilp_gap
from repro.experiments.latency_sweep import run_latency_sweep
from repro.experiments.resilience_sweep import run_resilience_sweep
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.topology_explore import run_topology_explore

EXPERIMENTS: dict[str, Callable[[], ExperimentTable]] = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "table1": run_table1,
    "table2": run_table2,
    "fig5c": run_fig5c,
    "table3": run_table3,
    "ilp-gap": run_ilp_gap,
    "topology": run_topology_explore,
    "latency-sweep": run_latency_sweep,
    "resilience": run_resilience_sweep,
}


def run_experiment(name: str) -> ExperimentTable:
    """Run one experiment by name.

    Raises:
        ReproError: for unknown experiment names.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
    return runner()


def run_all() -> list[ExperimentTable]:
    """Run every experiment in a stable order."""
    return [runner() for runner in EXPERIMENTS.values()]


def render_all() -> str:
    """The full paper-reproduction report as one text document."""
    return "\n".join(table.render() for table in run_all())


def main() -> None:  # pragma: no cover - CLI hook
    print(render_all())


if __name__ == "__main__":  # pragma: no cover
    main()
