"""Latency/cost degradation vs. failed-link count: the resilience sweep.

For each failed-link count ``k`` a handful of seeded random fault scenarios
(:class:`~repro.api.FaultSpec` ensembles) hit the fabric two ways:

* **remap** — a :class:`~repro.api.MapRequest` carrying the faults, so NMAP
  places cores around the failures; the comm-cost column shows how much the
  paper's Equation-7 objective degrades as the fabric loses links.
* **reroute** — a :class:`~repro.api.SimRequest` carrying the faults at
  simulation time, so the *pristine* placement keeps running while traffic
  detours over surviving minimal paths; the latency columns show what the
  applications actually feel.

Scenarios that the faults render impossible (a commodity disconnected, a
rerouting cycle) come back as typed :class:`~repro.api.ErrorResponse`
slots — the ``failed_slots`` column counts them instead of aborting the
sweep, which is exactly the batch-engine failure contract this experiment
doubles as a live demonstration of (the batch runs with a timeout and
worker-death retries enabled).
"""

from __future__ import annotations

from dataclasses import replace

from repro.api import (
    ErrorResponse,
    FaultSpec,
    MapRequest,
    SimRequest,
    TopologySpec,
    run_batch,
)
from repro.experiments.common import ExperimentTable

#: Random-failure scenario seeds per failed-link count.
SCENARIO_SEEDS = (1, 2, 3, 4, 5)


def run_resilience_sweep(
    max_failed_links: int = 3,
    seeds: tuple[int, ...] = SCENARIO_SEEDS,
    mesh: str = "mesh:4x4",
    measure_cycles: int = 3_000,
    workers: int | None = None,
    executor: str = "thread",
) -> ExperimentTable:
    """Sweep failed-link count and report remap-cost and reroute-latency.

    Args:
        max_failed_links: sweep ``k = 0 .. max_failed_links`` failed links.
        seeds: fault seeds; each is one random scenario per ``k`` (``k=0``
            is the single pristine baseline).
        mesh: topology spec string for the fabric under test.
        measure_cycles: simulator measurement window per scenario.
        workers: worker count for the request batch.
        executor: ``"serial"``, ``"thread"`` or ``"process"``.
    """
    base_map = MapRequest(
        app="vopd",
        mapper="nmap",
        topology=TopologySpec.parse(mesh, link_bandwidth=6400.0),
        price_bandwidth=False,
    )
    scenarios: list[tuple[int, FaultSpec | None]] = []
    for count in range(max_failed_links + 1):
        if count == 0:
            scenarios.append((0, None))
            continue
        for seed in seeds:
            scenarios.append(
                (count, FaultSpec(random_link_failures=count, fault_seed=seed))
            )

    map_requests = [
        replace(base_map, faults=faults) for _, faults in scenarios
    ]
    sim_requests = [
        SimRequest(
            map_request=base_map,
            faults=faults,
            measure_cycles=measure_cycles,
            warmup_cycles=500,
            drain_cycles=1_000,
            sim_seed=11,
        )
        for _, faults in scenarios
    ]
    responses = run_batch(
        map_requests + sim_requests,
        workers=workers,
        executor=executor,
        timeout=600.0,
        retries=1,
    )
    map_responses = responses[: len(scenarios)]
    sim_responses = responses[len(scenarios) :]

    table = ExperimentTable(
        title="Resilience sweep - degradation vs failed-link count",
        headers=[
            "failed_links",
            "scenarios",
            "failed_slots",
            "remap_cost_mean",
            "latency_mean",
            "latency_p95_mean",
        ],
        notes=[
            f"fabric {mesh}, VOPD, NMAP; remap maps around the faults, "
            f"latency reroutes the pristine mapping's traffic around them",
            "failed_slots counts scenarios the faults make impossible "
            "(typed ErrorResponse batch slots), not a sweep abort",
        ],
    )
    for count in sorted({c for c, _ in scenarios}):
        rows = [i for i, (c, _) in enumerate(scenarios) if c == count]
        failed = 0
        costs: list[float] = []
        means: list[float] = []
        p95s: list[float] = []
        for i in rows:
            map_response, sim_response = map_responses[i], sim_responses[i]
            if isinstance(map_response, ErrorResponse):
                failed += 1
            else:
                costs.append(map_response.comm_cost)
            if isinstance(sim_response, ErrorResponse):
                failed += 1
            else:
                means.append(sim_response.latency_mean)
                p95s.append(sim_response.latency_p95)
        table.rows.append(
            [
                count,
                len(rows),
                failed,
                round(sum(costs) / len(costs), 1) if costs else "-",
                round(sum(means) / len(means), 1) if means else "-",
                round(sum(p95s) / len(p95s), 1) if p95s else "-",
            ]
        )
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_resilience_sweep().render())


if __name__ == "__main__":  # pragma: no cover
    main()
