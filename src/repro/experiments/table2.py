"""Table 2: PBB vs NMAP communication cost on large random core graphs.

The paper generates random graphs of 25-65 cores (LEDA; here the seeded
generator of :mod:`repro.graphs.random_graphs`) and reports the PBB and
NMAP costs and their ratio — rising from 1.54 at 25 cores to ~1.8 at 65 in
the paper.  The shape reproduced here: the ratio exceeds 1 and grows with
core count, because the bounded-queue PBB explores a vanishing fraction of
the search space while NMAP's swap refinement keeps working.

The random graphs exist only in memory, so they enter the facade as inline
core-graph payloads — the same path a service would use for uploads.
"""

from __future__ import annotations

from repro.api import PbbOptions
from repro.experiments.common import ExperimentTable, map_grid
from repro.graphs.io import core_graph_to_dict
from repro.graphs.random_graphs import random_core_graph


def run_table2(
    sizes: tuple[int, ...] = (25, 35, 45, 55, 65),
    seed: int = 2004,
    pbb_max_queue: int = 200,
) -> ExperimentTable:
    """Regenerate Table 2 (one row per core count).

    Args:
        sizes: numbers of cores.
        seed: master seed; graph ``n`` uses ``seed + n``.
        pbb_max_queue: PBB queue bound (the paper sizes it for minutes of
            runtime; the default here keeps each run in seconds).
    """
    table = ExperimentTable(
        title="Table 2 - communication cost, PBB vs NMAP (random graphs)",
        headers=["cores", "PBB", "NMAP", "ratio"],
        notes=[
            f"random graphs: seeded generator (LEDA substitute), seed={seed}",
            f"pbb max_queue = {pbb_max_queue}; paper ratios: 1.54-1.85",
        ],
    )
    payloads = [
        core_graph_to_dict(random_core_graph(size, seed=seed + size))
        for size in sizes
    ]
    grid = map_grid(
        payloads,
        ("pbb", "nmap"),
        options={"pbb": PbbOptions(max_queue=pbb_max_queue)},
    )
    for position, size in enumerate(sizes):
        pbb_cost = grid[(position, "auto", "pbb")].comm_cost
        nmap_cost = grid[(position, "auto", "nmap")].comm_cost
        table.rows.append(
            [size, pbb_cost, nmap_cost, round(pbb_cost / nmap_cost, 2)]
        )
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_table2().render())


if __name__ == "__main__":  # pragma: no cover
    main()
