"""Shared experiment plumbing: result tables, rendering, batch fan-out."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.api import MapRequest, MapResponse, MapperOptions, TopologySpec, run_batch
from repro.errors import ApiError, ReproError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology


@dataclass
class ExperimentTable:
    """A rendered-ready experiment result.

    Attributes:
        title: what the table reproduces (e.g. ``"Figure 3"``).
        headers: column names.
        rows: one list per row; cells may be str/int/float.
        notes: provenance notes (parameters, substitutions) appended under
            the table.
    """

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def column(self, name: str) -> list[Any]:
        """All cells of the named column."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def row_by_key(self, key: Any) -> list[Any]:
        """The row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise ReproError(f"no row with key {key!r} in {self.title}")

    def render(self) -> str:
        return render_table(self.title, self.headers, self.rows, self.notes)


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 1000:
            return f"{cell:.0f}"
        return f"{cell:.2f}".rstrip("0").rstrip(".")
    return str(cell)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: Sequence[str] = (),
) -> str:
    """Plain-text table with aligned columns (CLI / EXPERIMENTS.md output)."""
    cells = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines = [title, "=" * len(title), format_row(headers)]
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in cells)
    for note in notes:
        lines.append(f"note: {note}")
    return "\n".join(lines) + "\n"


def map_grid(
    apps: Sequence[str | dict],
    mappers: Sequence[str],
    *,
    options: dict[str, MapperOptions] | None = None,
    topologies: Sequence[TopologySpec] = (TopologySpec(),),
    price_bandwidth: bool = False,
    workers: int | None = None,
) -> dict[tuple[int, str, str], MapResponse]:
    """Fan one request per (app x topology x mapper) over the batch engine.

    This is the shared shape of every comparison experiment: instead of
    nested inline loops, each experiment declares its grid and indexes the
    responses by ``(app_position, topology.describe(), mapper)``.  The
    default ``auto`` topology with unset bandwidth reproduces the paper's
    regime (smallest fitting mesh, every routing feasible).

    Args:
        apps: app names or inline core-graph payloads.
        mappers: registry names to run.
        options: optional per-mapper typed options (e.g. PBB's queue bound).
        topologies: topology specs to cross with the apps.
        price_bandwidth: also compute min feasible link bandwidths.
        workers: thread count for :func:`repro.api.run_batch`.

    Raises:
        ApiError: when two topologies share a description (the response key
            would silently collide — e.g. a bandwidth-only sweep; run those
            as separate grids or directly through ``run_batch``).
    """
    descriptions = [topology.describe() for topology in topologies]
    if len(set(descriptions)) != len(descriptions):
        raise ApiError(
            f"map_grid topologies must be distinguishable by describe(), "
            f"got {descriptions}"
        )
    requests = [
        MapRequest(
            app=app,
            mapper=mapper,
            topology=topology,
            options=(options or {}).get(mapper),
            price_bandwidth=price_bandwidth,
        )
        for app in apps
        for topology in topologies
        for mapper in mappers
    ]
    responses = run_batch(requests, workers=workers)
    keys = [
        (position, topology.describe(), mapper)
        for position in range(len(apps))
        for topology in topologies
        for mapper in mappers
    ]
    return dict(zip(keys, responses))


def mesh_for_app(app: CoreGraph, link_bandwidth: float) -> NoCTopology:
    """The experiment convention: smallest near-square mesh fitting the app."""
    return NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=link_bandwidth)


def generous_link_bandwidth(app: CoreGraph) -> float:
    """A uniform link capacity loose enough that any routing is feasible.

    Figure 3 compares costs "with the same bandwidth constraints for all
    algorithms"; using the app's total bandwidth guarantees every algorithm
    operates in the feasible regime, so the comparison is purely about cost.
    """
    return app.total_bandwidth()
