"""Latency vs. injection rate: the classical NoC saturation sweep.

The paper evaluates its mappings under application traffic; the pluggable
traffic layer makes the complementary characterization a first-class
experiment: sweep a synthetic pattern's offered load on a fixed fabric and
watch average and tail latency take off at the saturation knee.  Uniform
random is the standard benchmark pattern; transpose stresses the diagonal
under XY routing and saturates earlier on the same mesh.

Runs on the ``auto`` engine by default: the per-point policy picks the
event-driven engine for the low-load points (idle-skipping dominates there)
and the structure-of-arrays vector engine at and above the knee, where
every cycle is busy.  All three backends are bit-consistent — the
equivalence suite under ``tests/properties`` pins that — so the choice
affects wall-clock only.  Every point is a :class:`~repro.api.SimRequest`
through ``run_batch``, like every other experiment; the mapper run behind
the points is computed once and shared via the request cache, and
``executor="process"`` scales a sweep across cores — or
``executor="replica"`` advances all the vector-engine points in a single
compiled kernel invocation when a JIT backend is available.
"""

from __future__ import annotations

from repro.api import MapRequest, SimOptions, SimRequest, TopologySpec, run_batch
from repro.experiments.common import ExperimentTable

#: Offered load sweep in flits/cycle per node.
SWEEP_RATES = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


def run_latency_sweep(
    rates: tuple[float, ...] = SWEEP_RATES,
    patterns: tuple[str, ...] = ("uniform", "transpose"),
    mesh: str = "mesh:4x4",
    measure_cycles: int = 4_000,
    engine: str = "auto",
    num_vcs: int = 1,
    shards: int | None = None,
    workers: int | None = None,
    executor: str = "thread",
    service_url: str | None = None,
) -> ExperimentTable:
    """Latency-vs-injection-rate curves for synthetic patterns.

    Args:
        rates: offered loads to sweep (flits/cycle per node).
        patterns: registered synthetic traffic patterns to compare.
        mesh: topology spec string for the fabric under test.
        measure_cycles: measurement window per point.
        engine: simulation backend for every point (``"auto"`` picks
            event at low load, vector at high load, per point;
            ``"sharded"`` fans each point across shard workers — pair it
            with serial-ish executors, not ``"process"``, to avoid
            oversubscribing cores).
        num_vcs: virtual channels per link (1 = the paper's router).
        shards: shard-worker count per point for the ``sharded`` engine
            (None lets the engine default; rejected for other engines).
        workers: worker count for the request batch.
        executor: ``"thread"``, ``"process"`` (multi-core sweeps) or
            ``"replica"`` — all vector-engine points advance together in
            one compiled kernel invocation (fastest with a JIT backend;
            see ``repro.simnoc.engines.jit``), byte-identical results.
        service_url: when set, the sweep is submitted as one batch job to
            a running ``repro serve`` instance instead of executing
            locally — same requests, same typed responses, but the
            service's content-addressed store dedups repeated sweeps and
            its admission control shields the box (``workers``/
            ``executor`` then describe the *service's* configuration, not
            this process).
    """
    # VOPD's 16 cores pin the 4x4 fabric; link bandwidth well above the
    # sweep's saturation point so the network, not the spec, is the limit.
    base_map = MapRequest(
        app="vopd",
        mapper="nmap",
        topology=TopologySpec.parse(mesh, link_bandwidth=6400.0),
        price_bandwidth=False,
    )
    requests = [
        SimRequest(
            map_request=base_map,
            measure_cycles=measure_cycles,
            warmup_cycles=500,
            drain_cycles=1_000,
            sim_seed=11,
            options=SimOptions(
                engine=engine,
                traffic=pattern,
                injection_rate=rate,
                num_vcs=num_vcs,
                shards=shards,
            ),
        )
        for pattern in patterns
        for rate in rates
    ]
    if service_url is not None:
        # The client-driven path: one batch job over the wire.  The typed
        # payloads round-trip losslessly, so the table below cannot tell
        # the difference — the dedup/admission behavior is the point.
        from repro.service.client import ServiceClient

        client = ServiceClient(service_url)
        ticket = client.submit(requests)
        responses = client.wait(ticket.id)
    else:
        responses = run_batch(requests, workers=workers, executor=executor)

    table = ExperimentTable(
        title="Latency vs injection rate - synthetic traffic saturation sweep",
        headers=["rate_flits_cycle"]
        + [f"{p}_{col}" for p in patterns for col in ("mean", "p95")],
        notes=[
            f"fabric {mesh}, XY routing, 64 B packets, 7-cycle switch delay, "
            f"{num_vcs} VC(s)",
            f"{engine} engine; {measure_cycles} measured cycles/point; "
            f"offered load in flits/cycle per node",
        ]
        + ([f"served by {service_url}"] if service_url is not None else []),
    )
    by_key = {
        (r.request.options.traffic, r.request.options.injection_rate): r
        for r in responses
    }
    for rate in rates:
        row: list[object] = [rate]
        for pattern in patterns:
            response = by_key[(pattern, rate)]
            row.extend(
                [round(response.latency_mean, 1), round(response.latency_p95, 1)]
            )
        table.rows.append(row)
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_latency_sweep().render())


if __name__ == "__main__":  # pragma: no cover
    main()
