"""Figure 4: minimum link bandwidth needed per algorithm and routing scheme.

Seven bars per application in the paper:

* DPMAP, DGMAP — PMAP/GMAP mappings under dimension-ordered (XY) routing;
* PMAP, GMAP, NMAP — the same mappings under single minimum-path routing
  (the load-balancing quadrant heuristic);
* NMAPTM — the NMAP mapping with traffic split across minimum paths
  (quadrant-restricted min-congestion LP);
* NMAPTA — the NMAP mapping with traffic split across all paths.

The metric is the smallest uniform link capacity satisfying Inequality 3,
i.e. the maximum aggregate link load (LP optimum for the split schemes).
Expected shape: splitting roughly halves the requirement; NMAPTA <= NMAPTM
<= single-path <= dimension-ordered.
"""

from __future__ import annotations

from repro.api import get_mapper
from repro.apps import VIDEO_APPS, get_app
from repro.experiments.common import (
    ExperimentTable,
    generous_link_bandwidth,
    mesh_for_app,
)
from repro.metrics import (
    min_bandwidth_min_path,
    min_bandwidth_split,
    min_bandwidth_xy,
)

SCHEMES = ("DPMAP", "DGMAP", "PMAP", "GMAP", "NMAP", "NMAPTM", "NMAPTA")


def run_fig4(apps: tuple[str, ...] = VIDEO_APPS) -> ExperimentTable:
    """Regenerate Figure 4's data (one row per app, one column per scheme)."""
    table = ExperimentTable(
        title="Figure 4 - minimum uniform link bandwidth (MB/s)",
        headers=["app", *SCHEMES],
        notes=[
            "D* = dimension-ordered routing; PMAP/GMAP/NMAP = single min-path "
            "heuristic; NMAPTM/NMAPTA = min-congestion LP over minimum/all paths",
        ],
    )
    for app_name in apps:
        app = get_app(app_name)
        mesh = mesh_for_app(app, generous_link_bandwidth(app))
        # Each mapping is priced under three routings, so this experiment
        # works with the live objects the registry entries return.
        pmap_result = get_mapper("pmap").run(app, mesh)
        gmap_result = get_mapper("gmap").run(app, mesh)
        nmap_result = get_mapper("nmap").run(app, mesh)

        dpmap_bw, _ = min_bandwidth_xy(pmap_result.mapping)
        dgmap_bw, _ = min_bandwidth_xy(gmap_result.mapping)
        pmap_bw, _ = min_bandwidth_min_path(pmap_result.mapping)
        gmap_bw, _ = min_bandwidth_min_path(gmap_result.mapping)
        nmap_bw, _ = min_bandwidth_min_path(nmap_result.mapping)
        nmaptm_bw, _ = min_bandwidth_split(nmap_result.mapping, quadrant_only=True)
        nmapta_bw, _ = min_bandwidth_split(nmap_result.mapping, quadrant_only=False)

        table.rows.append(
            [
                app_name,
                dpmap_bw,
                dgmap_bw,
                pmap_bw,
                gmap_bw,
                nmap_bw,
                nmaptm_bw,
                nmapta_bw,
            ]
        )
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_fig4().render())


if __name__ == "__main__":  # pragma: no cover
    main()
