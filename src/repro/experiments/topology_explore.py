"""Topology exploration: mesh vs torus (the paper's stated future work).

The conclusion proposes extending the approach "to map cores onto various
NoC topologies for fast and efficient design space exploration for NoC
topology selection".  This experiment does that selection for the paper's
six applications: NMAP maps each app onto the mesh and the same-size torus,
and the table compares communication cost and minimum split-traffic link
bandwidth.  Wrap-around links can only shorten distances, so torus cost is
never worse — the designer's question is whether the saving justifies the
wiring, which is exactly what the two columns quantify.
"""

from __future__ import annotations

from repro.apps import VIDEO_APPS, get_app
from repro.experiments.common import ExperimentTable, generous_link_bandwidth
from repro.graphs.topology import NoCTopology
from repro.mapping import nmap_single_path
from repro.metrics import min_bandwidth_split


def run_topology_explore(apps: tuple[str, ...] = VIDEO_APPS) -> ExperimentTable:
    """Compare NMAP results on mesh vs torus for each application."""
    table = ExperimentTable(
        title="Topology exploration - mesh vs torus (NMAP)",
        headers=[
            "app",
            "mesh_cost",
            "torus_cost",
            "cost_saving_pct",
            "mesh_splitBW",
            "torus_splitBW",
        ],
        notes=[
            "same node count per pair; torus adds wrap links (future-work "
            "experiment, not in the paper's evaluation)",
        ],
    )
    for app_name in apps:
        app = get_app(app_name)
        bandwidth = generous_link_bandwidth(app)
        mesh = NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=bandwidth)
        torus = NoCTopology.torus_grid(mesh.width, mesh.height, link_bandwidth=bandwidth)

        mesh_result = nmap_single_path(app, mesh)
        torus_result = nmap_single_path(app, torus)
        mesh_bw, _ = min_bandwidth_split(mesh_result.mapping, quadrant_only=False)
        torus_bw, _ = min_bandwidth_split(torus_result.mapping, quadrant_only=False)

        saving = 100.0 * (1.0 - torus_result.comm_cost / mesh_result.comm_cost)
        table.rows.append(
            [
                app_name,
                mesh_result.comm_cost,
                torus_result.comm_cost,
                round(saving, 1),
                round(mesh_bw, 1),
                round(torus_bw, 1),
            ]
        )
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_topology_explore().render())


if __name__ == "__main__":  # pragma: no cover
    main()
