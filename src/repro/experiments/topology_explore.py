"""Topology exploration: mesh vs torus (the paper's stated future work).

The conclusion proposes extending the approach "to map cores onto various
NoC topologies for fast and efficient design space exploration for NoC
topology selection".  This experiment does that selection for the paper's
six applications: NMAP maps each app onto the mesh and the same-size torus,
and the table compares communication cost and minimum split-traffic link
bandwidth.  Wrap-around links can only shorten distances, so torus cost is
never worse — the designer's question is whether the saving justifies the
wiring, which is exactly what the two columns quantify.

Both topologies enter the facade as explicit :class:`TopologySpec` grids —
one request per (app x topology), the same fan-out a production service
would queue.
"""

from __future__ import annotations

from repro.api import TopologySpec
from repro.apps import VIDEO_APPS, get_app
from repro.experiments.common import ExperimentTable, generous_link_bandwidth, map_grid
from repro.graphs.topology import NoCTopology


def run_topology_explore(apps: tuple[str, ...] = VIDEO_APPS) -> ExperimentTable:
    """Compare NMAP results on mesh vs torus for each application."""
    table = ExperimentTable(
        title="Topology exploration - mesh vs torus (NMAP)",
        headers=[
            "app",
            "mesh_cost",
            "torus_cost",
            "cost_saving_pct",
            "mesh_splitBW",
            "torus_splitBW",
        ],
        notes=[
            "same node count per pair; torus adds wrap links (future-work "
            "experiment, not in the paper's evaluation)",
        ],
    )
    for app_name in apps:
        app = get_app(app_name)
        bandwidth = generous_link_bandwidth(app)
        fitted = NoCTopology.smallest_mesh_for(app.num_cores)
        mesh = TopologySpec("mesh", fitted.width, fitted.height, bandwidth)
        torus = TopologySpec("torus", fitted.width, fitted.height, bandwidth)

        grid = map_grid(
            [app_name],
            ("nmap",),
            topologies=(mesh, torus),
            price_bandwidth=True,
        )
        mesh_response = grid[(0, mesh.describe(), "nmap")]
        torus_response = grid[(0, torus.describe(), "nmap")]

        saving = 100.0 * (1.0 - torus_response.comm_cost / mesh_response.comm_cost)
        table.rows.append(
            [
                app_name,
                mesh_response.comm_cost,
                torus_response.comm_cost,
                round(saving, 1),
                round(mesh_response.min_bw_split, 1),
                round(torus_response.min_bw_split, 1),
            ]
        )
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_topology_explore().render())


if __name__ == "__main__":  # pragma: no cover
    main()
