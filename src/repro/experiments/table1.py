"""Table 1: cost ratio (cstr) and bandwidth ratio (bwr) versus NMAP-split.

The paper reports, per application, the ratio of the average cost and
average bandwidth requirement of {PMAP, GMAP, PBB} to NMAP with
split-traffic routing; paper averages: cstr = 1.47, bwr = 2.13 ("an average
of 53% savings in bandwidth needs ... 32% reduction in cost").

Derivation here (matching the paper's text):

* ``cstr(app)`` = mean(comm cost of PMAP, GMAP, PBB) / comm cost of NMAP
  (Figure 3's data — cost does not change with splitting when constraints
  are loose, since MCF2's optimum then equals the hop-weighted cost).
* ``bwr(app)`` = mean(min BW of PMAP, GMAP, PBB under their single-path
  routing) / min BW of NMAPTA (Figure 4's data; PBB's bandwidth uses the
  same min-path heuristic).
"""

from __future__ import annotations

from statistics import mean

from repro.api import PbbOptions
from repro.apps import VIDEO_APPS
from repro.experiments.common import ExperimentTable, map_grid

_BASELINES = ("pmap", "gmap", "pbb")


def run_table1(
    apps: tuple[str, ...] = VIDEO_APPS,
    pbb_max_queue: int = 1000,
) -> ExperimentTable:
    """Regenerate Table 1 (one row per app plus the average row)."""
    table = ExperimentTable(
        title="Table 1 - cost ratio (cstr) and bandwidth ratio (bwr) vs NMAP-split",
        headers=["app", "cstr", "bwr"],
        notes=[
            "cstr = mean(cost PMAP,GMAP,PBB)/cost NMAP; "
            "bwr = mean(minBW PMAP,GMAP,PBB under min-path)/minBW NMAPTA",
            "paper averages: cstr 1.47, bwr 2.13",
        ],
    )
    grid = map_grid(
        apps,
        _BASELINES + ("nmap",),
        options={"pbb": PbbOptions(max_queue=pbb_max_queue)},
        price_bandwidth=True,
    )
    cost_ratios: list[float] = []
    bw_ratios: list[float] = []
    for position, app_name in enumerate(apps):
        baselines = [grid[(position, "auto", name)] for name in _BASELINES]
        nmap_response = grid[(position, "auto", "nmap")]

        cstr = mean(r.comm_cost for r in baselines) / nmap_response.comm_cost
        bwr = mean(r.min_bw_single for r in baselines) / nmap_response.min_bw_split

        cost_ratios.append(cstr)
        bw_ratios.append(bwr)
        table.rows.append([app_name, round(cstr, 2), round(bwr, 2)])
    table.rows.append(["avg", round(mean(cost_ratios), 2), round(mean(bw_ratios), 2)])
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_table1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
