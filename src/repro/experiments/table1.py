"""Table 1: cost ratio (cstr) and bandwidth ratio (bwr) versus NMAP-split.

The paper reports, per application, the ratio of the average cost and
average bandwidth requirement of {PMAP, GMAP, PBB} to NMAP with
split-traffic routing; paper averages: cstr = 1.47, bwr = 2.13 ("an average
of 53% savings in bandwidth needs ... 32% reduction in cost").

Derivation here (matching the paper's text):

* ``cstr(app)`` = mean(comm cost of PMAP, GMAP, PBB) / comm cost of NMAP
  (Figure 3's data — cost does not change with splitting when constraints
  are loose, since MCF2's optimum then equals the hop-weighted cost).
* ``bwr(app)`` = mean(min BW of PMAP, GMAP, PBB under their single-path
  routing) / min BW of NMAPTA (Figure 4's data; PBB's bandwidth uses the
  same min-path heuristic).
"""

from __future__ import annotations

from statistics import mean

from repro.apps import VIDEO_APPS, get_app
from repro.experiments.common import (
    ExperimentTable,
    generous_link_bandwidth,
    mesh_for_app,
)
from repro.mapping import gmap, nmap_single_path, pbb, pmap
from repro.metrics import min_bandwidth_min_path, min_bandwidth_split


def run_table1(
    apps: tuple[str, ...] = VIDEO_APPS,
    pbb_max_queue: int = 1000,
) -> ExperimentTable:
    """Regenerate Table 1 (one row per app plus the average row)."""
    table = ExperimentTable(
        title="Table 1 - cost ratio (cstr) and bandwidth ratio (bwr) vs NMAP-split",
        headers=["app", "cstr", "bwr"],
        notes=[
            "cstr = mean(cost PMAP,GMAP,PBB)/cost NMAP; "
            "bwr = mean(minBW PMAP,GMAP,PBB under min-path)/minBW NMAPTA",
            "paper averages: cstr 1.47, bwr 2.13",
        ],
    )
    cost_ratios: list[float] = []
    bw_ratios: list[float] = []
    for app_name in apps:
        app = get_app(app_name)
        mesh = mesh_for_app(app, generous_link_bandwidth(app))
        baselines = [
            pmap(app, mesh),
            gmap(app, mesh),
            pbb(app, mesh, max_queue=pbb_max_queue),
        ]
        nmap_result = nmap_single_path(app, mesh)

        cstr = mean(result.comm_cost for result in baselines) / nmap_result.comm_cost

        baseline_bw = mean(
            min_bandwidth_min_path(result.mapping)[0] for result in baselines
        )
        nmap_split_bw, _ = min_bandwidth_split(nmap_result.mapping, quadrant_only=False)
        bwr = baseline_bw / nmap_split_bw

        cost_ratios.append(cstr)
        bw_ratios.append(bwr)
        table.rows.append([app_name, round(cstr, 2), round(bwr, 2)])
    table.rows.append(["avg", round(mean(cost_ratios), 2), round(mean(bw_ratios), 2)])
    return table


def main() -> None:  # pragma: no cover - CLI hook
    print(run_table1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
