"""The application *core graph* (Definition 1 of the paper).

A :class:`CoreGraph` is a directed graph whose vertices are IP cores
(processors, DSPs, memories, ...) and whose directed edges are communication
flows labelled with average bandwidth demands in MB/s — exactly the
``G(V, E)`` with edge weights ``comm_{i,j}`` used throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx
import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True, order=True)
class TrafficFlow:
    """One directed communication edge ``e_{i,j}`` of the core graph.

    Attributes:
        src: name of the producing core ``v_i``.
        dst: name of the consuming core ``v_j``.
        bandwidth: average bandwidth demand ``comm_{i,j}`` in MB/s.
    """

    src: str
    dst: str
    bandwidth: float

    def reversed(self) -> "TrafficFlow":
        """Return the same flow with endpoints swapped (same bandwidth)."""
        return TrafficFlow(self.dst, self.src, self.bandwidth)


class CoreGraph:
    """Directed, bandwidth-weighted communication graph between cores.

    The class is a thin, explicit wrapper over adjacency dictionaries; it
    offers exactly the queries the mapping and routing algorithms need
    (bandwidth lookup, per-core totals, undirected collapse for
    ``makeundirected()`` in the pseudo-code) plus serialization helpers.

    Args:
        name: human-readable application name (e.g. ``"vopd"``).
    """

    def __init__(self, name: str = "core-graph") -> None:
        self.name = name
        self._succ: dict[str, dict[str, float]] = {}
        self._pred: dict[str, dict[str, float]] = {}
        #: Bumped on every structural mutation; the array caches below and the
        #: per-mapping position arrays key off it.
        self.version = 0
        self._core_index_cache: tuple[int, dict[str, int]] | None = None
        self._flow_arrays_cache: (
            tuple[int, tuple[np.ndarray, np.ndarray, np.ndarray]] | None
        ) = None
        self._adjacency_cache: (
            tuple[int, tuple[np.ndarray, np.ndarray, np.ndarray]] | None
        ) = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_core(self, core: str) -> None:
        """Add a vertex; adding an existing vertex is a no-op."""
        if not core:
            raise GraphError("core name must be a non-empty string")
        if core not in self._succ:
            self.version += 1
        self._succ.setdefault(core, {})
        self._pred.setdefault(core, {})

    def add_traffic(self, src: str, dst: str, bandwidth: float) -> None:
        """Add the directed edge ``src -> dst`` with the given MB/s demand.

        Endpoints are created on demand.  Parallel edges are collapsed by
        summing bandwidths (the paper treats each pair at most once, but
        summing makes builders composable).

        Raises:
            GraphError: on self-loops or non-positive bandwidth.
        """
        if src == dst:
            raise GraphError(f"self-loop traffic on core {src!r} is not allowed")
        if bandwidth <= 0:
            raise GraphError(
                f"bandwidth for {src!r}->{dst!r} must be positive, got {bandwidth}"
            )
        self.add_core(src)
        self.add_core(dst)
        previous = self._succ[src].get(dst, 0.0)
        self._succ[src][dst] = previous + float(bandwidth)
        self._pred[dst][src] = previous + float(bandwidth)
        self.version += 1

    @classmethod
    def from_flows(
        cls, flows: Iterable[TrafficFlow | tuple[str, str, float]], name: str = "core-graph"
    ) -> "CoreGraph":
        """Build a graph from an iterable of flows or ``(src, dst, bw)`` tuples."""
        graph = cls(name=name)
        for flow in flows:
            if isinstance(flow, TrafficFlow):
                graph.add_traffic(flow.src, flow.dst, flow.bandwidth)
            else:
                src, dst, bandwidth = flow
                graph.add_traffic(src, dst, bandwidth)
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def cores(self) -> list[str]:
        """All vertex names, in insertion order."""
        return list(self._succ)

    @property
    def num_cores(self) -> int:
        return len(self._succ)

    @property
    def num_flows(self) -> int:
        return sum(len(out) for out in self._succ.values())

    def flows(self) -> Iterator[TrafficFlow]:
        """Iterate over every directed edge as a :class:`TrafficFlow`."""
        for src, out in self._succ.items():
            for dst, bandwidth in out.items():
                yield TrafficFlow(src, dst, bandwidth)

    def has_core(self, core: str) -> bool:
        return core in self._succ

    def has_traffic(self, src: str, dst: str) -> bool:
        return dst in self._succ.get(src, {})

    def bandwidth(self, src: str, dst: str) -> float:
        """Directed demand ``comm_{src,dst}``; 0.0 when the edge is absent."""
        return self._succ.get(src, {}).get(dst, 0.0)

    def successors(self, core: str) -> dict[str, float]:
        """Outgoing neighbor -> bandwidth map for ``core``."""
        self._require_core(core)
        return dict(self._succ[core])

    def predecessors(self, core: str) -> dict[str, float]:
        """Incoming neighbor -> bandwidth map for ``core``."""
        self._require_core(core)
        return dict(self._pred[core])

    def neighbors(self, core: str) -> set[str]:
        """Cores communicating with ``core`` in either direction."""
        self._require_core(core)
        return set(self._succ[core]) | set(self._pred[core])

    def core_traffic(self, core: str) -> float:
        """Total bandwidth produced plus consumed by ``core`` (MB/s).

        This is the "communication requirement" used by ``initialize()`` to
        pick the seed core.
        """
        self._require_core(core)
        return sum(self._succ[core].values()) + sum(self._pred[core].values())

    def traffic_between(self, a: str, b: str) -> float:
        """Undirected demand between two cores: ``comm_{a,b} + comm_{b,a}``."""
        return self.bandwidth(a, b) + self.bandwidth(b, a)

    def total_bandwidth(self) -> float:
        """Sum of all edge bandwidths (each directed edge counted once)."""
        return sum(flow.bandwidth for flow in self.flows())

    def undirected_weights(self) -> dict[frozenset[str], float]:
        """Collapse direction: ``makeundirected()`` from the pseudo-code.

        Returns a map from the unordered core pair to the summed two-way
        bandwidth.
        """
        collapsed: dict[frozenset[str], float] = {}
        for flow in self.flows():
            key = frozenset((flow.src, flow.dst))
            collapsed[key] = collapsed.get(key, 0.0) + flow.bandwidth
        return collapsed

    # ------------------------------------------------------------------
    # fast-path array views
    # ------------------------------------------------------------------
    def core_index(self) -> dict[str, int]:
        """Core name -> dense integer index (insertion order), cached.

        The index space backs every array view below and the per-mapping
        position arrays; it is invalidated whenever the graph mutates.
        """
        cached = self._core_index_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        index = {core: i for i, core in enumerate(self._succ)}
        self._core_index_cache = (self.version, index)
        return index

    def flow_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Parallel ``(src_idx, dst_idx, bandwidth)`` arrays over all flows.

        Entries follow :meth:`flows` iteration order; indices refer to
        :meth:`core_index`.  These arrays turn Equation-7 style sums into
        single numpy gathers; treat them as read-only.
        """
        cached = self._flow_arrays_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        index = self.core_index()
        count = self.num_flows
        src = np.empty(count, dtype=np.int64)
        dst = np.empty(count, dtype=np.int64)
        bw = np.empty(count, dtype=np.float64)
        k = 0
        for s, out in self._succ.items():
            si = index[s]
            for d, bandwidth in out.items():
                src[k] = si
                dst[k] = index[d]
                bw[k] = bandwidth
                k += 1
        arrays = (src, dst, bw)
        self._flow_arrays_cache = (self.version, arrays)
        return arrays

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR view of the *undirected* neighbor weights, cached.

        Returns ``(indptr, nbr_idx, nbr_wt)`` where the neighbors of core
        index ``c`` are ``nbr_idx[indptr[c]:indptr[c + 1]]`` (ascending) and
        ``nbr_wt`` holds :meth:`traffic_between` for each pair — the
        structure batch swap scoring walks.
        """
        cached = self._adjacency_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        index = self.core_index()
        neighbor_weights: list[dict[int, float]] = [{} for _ in index]
        for s, out in self._succ.items():
            si = index[s]
            for d, bandwidth in out.items():
                di = index[d]
                neighbor_weights[si][di] = neighbor_weights[si].get(di, 0.0) + bandwidth
                neighbor_weights[di][si] = neighbor_weights[di].get(si, 0.0) + bandwidth
        indptr = np.zeros(len(index) + 1, dtype=np.int64)
        for c, weights in enumerate(neighbor_weights):
            indptr[c + 1] = indptr[c] + len(weights)
        total = int(indptr[-1])
        nbr_idx = np.empty(total, dtype=np.int64)
        nbr_wt = np.empty(total, dtype=np.float64)
        for c, weights in enumerate(neighbor_weights):
            start = int(indptr[c])
            for offset, other in enumerate(sorted(weights)):
                nbr_idx[start + offset] = other
                nbr_wt[start + offset] = weights[other]
        arrays = (indptr, nbr_idx, nbr_wt)
        self._adjacency_cache = (self.version, arrays)
        return arrays

    def is_connected(self) -> bool:
        """True when the undirected version of the graph is connected."""
        if self.num_cores <= 1:
            return True
        seen = {self.cores[0]}
        frontier = [self.cores[0]]
        while frontier:
            core = frontier.pop()
            for other in self.neighbors(core):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == self.num_cores

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def renamed(self, renaming: dict[str, str]) -> "CoreGraph":
        """Return a copy with cores renamed via ``renaming`` (total map)."""
        missing = set(self._succ) - set(renaming)
        if missing:
            raise GraphError(f"renaming is missing cores: {sorted(missing)}")
        graph = CoreGraph(name=self.name)
        for core in self.cores:
            graph.add_core(renaming[core])
        for flow in self.flows():
            graph.add_traffic(renaming[flow.src], renaming[flow.dst], flow.bandwidth)
        return graph

    def scaled(self, factor: float) -> "CoreGraph":
        """Return a copy with every bandwidth multiplied by ``factor``."""
        if factor <= 0:
            raise GraphError(f"scale factor must be positive, got {factor}")
        graph = CoreGraph(name=self.name)
        for core in self.cores:
            graph.add_core(core)
        for flow in self.flows():
            graph.add_traffic(flow.src, flow.dst, flow.bandwidth * factor)
        return graph

    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` with ``bandwidth`` edge data."""
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(self.cores)
        for flow in self.flows():
            graph.add_edge(flow.src, flow.dst, bandwidth=flow.bandwidth)
        return graph

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_core(self, core: str) -> None:
        if core not in self._succ:
            raise GraphError(f"unknown core {core!r} in graph {self.name!r}")

    def __contains__(self, core: object) -> bool:
        return core in self._succ

    def __len__(self) -> int:
        return self.num_cores

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoreGraph):
            return NotImplemented
        return self._succ == other._succ

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"CoreGraph(name={self.name!r}, cores={self.num_cores}, "
            f"flows={self.num_flows}, total_bw={self.total_bandwidth():.0f} MB/s)"
        )
