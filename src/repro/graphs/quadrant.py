"""Quadrant subgraphs ``Q(d_k)`` used by minimum-path routing.

Every shortest path between two mesh nodes lies inside the axis-aligned
rectangle ("quadrant" in the paper) spanned by source and destination.  The
``shortestpath()`` routine builds this quadrant graph per commodity and runs
Dijkstra inside it; NMAPTM restricts split traffic to the same region.

For tori the quadrant follows, per axis, the shorter wrap direction (ties
resolved toward the non-wrapping direction), which preserves the property
that all quadrant-monotone paths are minimal.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.topology import NoCTopology


def _axis_steps(src: int, dst: int, size: int, torus: bool) -> tuple[int, int]:
    """Signed per-axis step direction and hop count from ``src`` to ``dst``.

    Returns ``(step, count)`` where ``step`` is -1, 0 or +1 in wrap-aware
    coordinates and ``count`` the number of hops along this axis.
    """
    if src == dst:
        return (0, 0)
    direct = dst - src
    if not torus:
        return (1 if direct > 0 else -1, abs(direct))
    forward = (dst - src) % size
    backward = (src - dst) % size
    if forward <= backward:
        return (1, forward)
    return (-1, backward)


def _axis_positions(src: int, step: int, count: int, size: int) -> list[int]:
    """All coordinates visited along one axis, wrap-aware."""
    return [(src + step * offset) % size for offset in range(count + 1)]


def quadrant_nodes(topology: NoCTopology, src: int, dst: int) -> list[int]:
    """All nodes inside the quadrant between ``src`` and ``dst``.

    For a mesh this is the axis-aligned bounding rectangle; for a torus the
    rectangle follows the minimal wrap direction on each axis.
    """
    sx, sy = topology.coords(src)
    dx, dy = topology.coords(dst)
    step_x, count_x = _axis_steps(sx, dx, topology.width, topology.torus)
    step_y, count_y = _axis_steps(sy, dy, topology.height, topology.torus)
    xs = _axis_positions(sx, step_x, count_x, topology.width)
    ys = _axis_positions(sy, step_y, count_y, topology.height)
    return [topology.node_at(x, y) for y in ys for x in xs]


def quadrant_links(
    topology: NoCTopology,
    src: int,
    dst: int,
    monotone: bool = False,
) -> list[tuple[int, int]]:
    """Directed links whose endpoints both lie inside the quadrant.

    Args:
        topology: the mesh/torus.
        src: commodity source node.
        dst: commodity destination node.
        monotone: when True, keep only links pointing *toward* the
            destination (strictly decreasing hop distance).  Every directed
            path from ``src`` to ``dst`` made of monotone quadrant links is a
            minimum path, which is exactly the NMAPTM path set.

    Returns:
        Link ``(u, v)`` pairs in the topology's stable link order.
    """
    if src == dst:
        raise GraphError("quadrant of a node with itself is empty")
    inside = set(quadrant_nodes(topology, src, dst))
    selected: list[tuple[int, int]] = []
    for u, v in topology.link_keys():
        if u not in inside or v not in inside:
            continue
        if monotone and topology.distance(v, dst) >= topology.distance(u, dst):
            continue
        selected.append((u, v))
    return selected


def count_minimal_paths(topology: NoCTopology, src: int, dst: int) -> int:
    """Number of distinct minimum-hop paths between two nodes.

    Computed by dynamic programming over the monotone quadrant DAG; used by
    tests and by the exact ILP router to bound path enumeration.
    """
    if src == dst:
        return 1
    links = quadrant_links(topology, src, dst, monotone=True)
    incoming: dict[int, list[int]] = {}
    for u, v in links:
        incoming.setdefault(v, []).append(u)
    order = sorted(
        set(quadrant_nodes(topology, src, dst)),
        key=lambda node: -topology.distance(node, dst),
    )
    ways = {src: 1}
    for node in order:
        if node == src:
            continue
        ways[node] = sum(ways.get(parent, 0) for parent in incoming.get(node, []))
    return ways.get(dst, 0)


def enumerate_minimal_paths(
    topology: NoCTopology, src: int, dst: int, limit: int = 1000
) -> list[list[int]]:
    """Enumerate every minimum-hop path from ``src`` to ``dst`` as node lists.

    Args:
        limit: raise :class:`GraphError` if more than this many paths exist
            (guards the exact ILP router against combinatorial blow-up).
    """
    if src == dst:
        return [[src]]
    total = count_minimal_paths(topology, src, dst)
    if total > limit:
        raise GraphError(
            f"{total} minimal paths between {src} and {dst} exceed limit {limit}"
        )
    monotone = set(quadrant_links(topology, src, dst, monotone=True))
    outgoing: dict[int, list[int]] = {}
    for u, v in monotone:
        outgoing.setdefault(u, []).append(v)
    paths: list[list[int]] = []
    stack: list[list[int]] = [[src]]
    while stack:
        path = stack.pop()
        tail = path[-1]
        if tail == dst:
            paths.append(path)
            continue
        for nxt in outgoing.get(tail, []):
            stack.append(path + [nxt])
    paths.sort()
    return paths
