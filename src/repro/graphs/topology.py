"""The *NoC topology graph* ``P(U, F)`` (Definition 2 of the paper).

Vertices are mesh/torus cross-points addressed both by integer id and by
``(x, y)`` coordinate; directed edges are physical links with bandwidth
capacities ``bw_{i,j}``.  The paper restricts its exposition to meshes and
tori, and so does this class, while keeping capacities per-link so that
heterogeneous links remain expressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx
import numpy as np

from repro.errors import GraphError

#: Hop-distance sentinel for node pairs disconnected by failed links/routers.
#: Large enough that any placement using a disconnected pair is dominated by
#: every reachable alternative, small enough that int64 sums over whole
#: distance matrices (resilience ensembles) can never overflow.
UNREACHABLE = 1 << 30


@dataclass(frozen=True, order=True)
class Link:
    """One directed physical link ``f_{i,j}`` with capacity in MB/s."""

    src: int
    dst: int
    bandwidth: float

    @property
    def key(self) -> tuple[int, int]:
        return (self.src, self.dst)


class NoCTopology:
    """A mesh or torus NoC topology graph.

    Nodes are numbered row-major: node ``y * width + x`` sits at coordinate
    ``(x, y)``.  All queries the mapping/routing layers need are provided:
    neighbor sets, Manhattan/torus hop distances, link capacity lookup and
    (for meshes) the monotone "toward destination" link orientation used by
    minimum-path routing.

    Args:
        width: number of columns.
        height: number of rows.
        link_bandwidth: uniform capacity assigned to every directed link.
        torus: when True, add wrap-around links and use torus distances.
    """

    def __init__(
        self,
        width: int,
        height: int,
        link_bandwidth: float = 1000.0,
        torus: bool = False,
    ) -> None:
        if width < 1 or height < 1:
            raise GraphError(f"mesh dimensions must be >= 1, got {width}x{height}")
        if link_bandwidth <= 0:
            raise GraphError(f"link bandwidth must be positive, got {link_bandwidth}")
        self.width = width
        self.height = height
        self.torus = torus
        self._links: dict[tuple[int, int], float] = {}
        self._adjacency: dict[int, list[int]] = {node: [] for node in range(width * height)}
        for node in range(width * height):
            for neighbor in self._physical_neighbors(node):
                self._add_link(node, neighbor, link_bandwidth)
        # Lazily built fast-path caches (see distance_matrix / link_arrays /
        # monotone_outgoing).  Hop distances depend only on the immutable
        # geometry, so those caches never invalidate; the link-bandwidth
        # array is versioned because set_link_bandwidth can change it.
        self._dist_flat: list[int] | None = None
        self._dist_matrix: np.ndarray | None = None
        self._links_version = 0
        self._link_arrays: tuple[int, tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None
        self._monotone_cache: dict[tuple[int, int], dict[int, tuple[int, ...]]] = {}
        # Fault-mask state: degraded views (with_failed_links/_routers) carry
        # a pruned link set, so hop distances come from BFS over the
        # surviving links instead of the geometric formula.
        self._degraded = False
        self._failed_routers: frozenset[int] = frozenset()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def mesh(cls, width: int, height: int, link_bandwidth: float = 1000.0) -> "NoCTopology":
        """A ``width x height`` 2D mesh with uniform link capacity."""
        return cls(width, height, link_bandwidth=link_bandwidth, torus=False)

    @classmethod
    def torus_grid(cls, width: int, height: int, link_bandwidth: float = 1000.0) -> "NoCTopology":
        """A ``width x height`` 2D torus with uniform link capacity."""
        return cls(width, height, link_bandwidth=link_bandwidth, torus=True)

    @classmethod
    def smallest_mesh_for(cls, num_cores: int, link_bandwidth: float = 1000.0) -> "NoCTopology":
        """The smallest near-square mesh with at least ``num_cores`` nodes.

        This mirrors the paper's experimental setup where each application is
        mapped onto a mesh sized to its core count (e.g. 16 cores -> 4x4).
        """
        if num_cores < 1:
            raise GraphError(f"need at least one core, got {num_cores}")
        width = 1
        while width * width < num_cores:
            width += 1
        height = width
        while width * (height - 1) >= num_cores:
            height -= 1
        return cls(width, height, link_bandwidth=link_bandwidth)

    def _add_link(self, src: int, dst: int, bandwidth: float) -> None:
        if (src, dst) not in self._links:
            self._adjacency[src].append(dst)
        self._links[(src, dst)] = bandwidth

    def _physical_neighbors(self, node: int) -> list[int]:
        x, y = self.coords(node)
        neighbors: list[int] = []
        candidates = [(x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)]
        for cx, cy in candidates:
            if self.torus:
                cx %= self.width
                cy %= self.height
            if 0 <= cx < self.width and 0 <= cy < self.height:
                neighbor = self.node_at(cx, cy)
                if neighbor != node:
                    neighbors.append(neighbor)
        return neighbors

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def nodes(self) -> range:
        return range(self.num_nodes)

    def coords(self, node: int) -> tuple[int, int]:
        """The ``(x, y)`` coordinate of a node id."""
        self._require_node(node)
        return (node % self.width, node // self.width)

    def node_at(self, x: int, y: int) -> int:
        """The node id at coordinate ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise GraphError(f"coordinate ({x}, {y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def neighbors(self, node: int) -> list[int]:
        """Adjacent node ids (``Adj_i`` in the paper)."""
        self._require_node(node)
        return list(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Number of physical neighbors (mesh corners 2, edges 3, center 4)."""
        return len(self.neighbors(node))

    def max_degree_nodes(self) -> list[int]:
        """Nodes with the maximum number of neighbors (``initialize()`` seeds)."""
        best = max(self.degree(node) for node in self.nodes)
        return [node for node in self.nodes if self.degree(node) == best]

    def _axis_distance(self, a: int, b: int, size: int) -> int:
        direct = abs(a - b)
        if self.torus:
            return min(direct, size - direct)
        return direct

    def distance(self, a: int, b: int) -> int:
        """Minimum hop count between two nodes (Manhattan / torus metric)."""
        self._require_node(a)
        self._require_node(b)
        if self._dist_flat is None:
            self._build_distance_cache()
        return self._dist_flat[a * self.num_nodes + b]

    def _build_distance_cache(self) -> None:
        """Precompute the full hop-distance table (O(N^2), built once)."""
        if self._degraded:
            self._build_bfs_distance_cache()
            return
        ids = np.arange(self.num_nodes)
        xs = ids % self.width
        ys = ids // self.width
        dx = np.abs(xs[:, None] - xs[None, :])
        dy = np.abs(ys[:, None] - ys[None, :])
        if self.torus:
            dx = np.minimum(dx, self.width - dx)
            dy = np.minimum(dy, self.height - dy)
        matrix = (dx + dy).astype(np.int64)
        self._dist_matrix = matrix
        self._dist_flat = matrix.ravel().tolist()

    def _build_bfs_distance_cache(self) -> None:
        """All-pairs BFS over the surviving links (degraded views only).

        The geometric Manhattan/torus formula is wrong the moment a link is
        gone, so degraded topologies pay one O(N * (N + L)) BFS sweep;
        unreachable pairs get the :data:`UNREACHABLE` sentinel, which makes
        every distance-based kernel (Equation-7 cost, swap scoring, the
        constructive initializer) naturally steer clear of dead regions.
        """
        n = self.num_nodes
        flat: list[int] = []
        for src in range(n):
            dist = [UNREACHABLE] * n
            dist[src] = 0
            frontier = [src]
            while frontier:
                nxt: list[int] = []
                for node in frontier:
                    step = dist[node] + 1
                    for neighbor in self._adjacency[node]:
                        if dist[neighbor] > step:
                            dist[neighbor] = step
                            nxt.append(neighbor)
                frontier = nxt
            flat.extend(dist)
        self._dist_flat = flat
        self._dist_matrix = np.array(flat, dtype=np.int64).reshape(n, n)

    def distance_matrix(self) -> np.ndarray:
        """The cached ``(N, N)`` int64 hop-distance matrix.

        Treat the returned array as read-only: it is shared between every
        vectorized kernel (Equation-7 cost, batch swap scoring, routing).
        """
        if self._dist_matrix is None:
            self._build_distance_cache()
        return self._dist_matrix

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def links(self) -> Iterator[Link]:
        """Iterate over all directed links."""
        for (src, dst), bandwidth in self._links.items():
            yield Link(src, dst, bandwidth)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def link_keys(self) -> list[tuple[int, int]]:
        """All directed link ``(src, dst)`` pairs, in a stable order."""
        return list(self._links)

    def has_link(self, src: int, dst: int) -> bool:
        return (src, dst) in self._links

    def link_bandwidth(self, src: int, dst: int) -> float:
        """Capacity ``bw_{src,dst}`` of a directed link."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise GraphError(f"no link {src}->{dst} in {self!r}") from None

    def set_link_bandwidth(self, src: int, dst: int, bandwidth: float) -> None:
        """Override one directed link's capacity (heterogeneous NoCs)."""
        if bandwidth <= 0:
            raise GraphError(f"link bandwidth must be positive, got {bandwidth}")
        if (src, dst) not in self._links:
            raise GraphError(f"no link {src}->{dst} in {self!r}")
        self._links[(src, dst)] = bandwidth
        self._links_version += 1

    def with_uniform_bandwidth(self, bandwidth: float) -> "NoCTopology":
        """A copy of this topology with every link capacity replaced."""
        clone = NoCTopology(self.width, self.height, bandwidth, torus=self.torus)
        return clone

    def min_link_bandwidth(self) -> float:
        return min(self._links.values())

    def link_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flattened ``(src, dst, bandwidth)`` arrays over all directed links.

        Entries follow :meth:`link_keys` order.  Rebuilt automatically after
        :meth:`set_link_bandwidth`; treat the arrays as read-only.
        """
        cached = self._link_arrays
        if cached is not None and cached[0] == self._links_version:
            return cached[1]
        keys = self.link_keys()
        src = np.fromiter((u for u, _ in keys), dtype=np.int64, count=len(keys))
        dst = np.fromiter((v for _, v in keys), dtype=np.int64, count=len(keys))
        bw = np.fromiter(
            (self._links[key] for key in keys), dtype=np.float64, count=len(keys)
        )
        arrays = (src, dst, bw)
        self._link_arrays = (self._links_version, arrays)
        return arrays

    def monotone_outgoing(self, src: int, dst: int) -> dict[int, tuple[int, ...]]:
        """Outgoing adjacency of the monotone quadrant DAG, memoized.

        This is exactly the structure ``shortestpath()`` Dijkstra walks for
        the commodity ``src -> dst``; it depends only on the (immutable)
        geometry, so it is cached per ``(src, dst)`` pair and shared across
        every routing call — the repeated-quadrant work that dominated
        :func:`repro.routing.min_path.min_path_routing` in the seed.
        """
        key = (src, dst)
        cached = self._monotone_cache.get(key)
        if cached is None:
            from repro.graphs.quadrant import quadrant_links

            outgoing: dict[int, list[int]] = {}
            for u, v in quadrant_links(self, src, dst, monotone=True):
                outgoing.setdefault(u, []).append(v)
            cached = {node: tuple(nexts) for node, nexts in outgoing.items()}
            self._monotone_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # fault masks
    # ------------------------------------------------------------------
    @property
    def is_degraded(self) -> bool:
        """True for views produced by :meth:`with_failed_links`/`_routers`."""
        return self._degraded

    @property
    def failed_routers(self) -> frozenset[int]:
        """Nodes whose router is failed (every incident link removed)."""
        return self._failed_routers

    @property
    def num_healthy_nodes(self) -> int:
        """Nodes with a working router (the placeable set for mappings)."""
        return self.num_nodes - len(self._failed_routers)

    def healthy_nodes(self) -> list[int]:
        """Node ids with a working router, in ascending order."""
        if not self._failed_routers:
            return list(self.nodes)
        return [node for node in self.nodes if node not in self._failed_routers]

    def _masked_copy(
        self,
        removed_links: set[tuple[int, int]],
        failed_routers: frozenset[int],
    ) -> "NoCTopology":
        """A degraded clone without the given links, with fresh lazy caches."""
        clone = NoCTopology(self.width, self.height,
                            link_bandwidth=min(self._links.values(), default=1000.0),
                            torus=self.torus)
        clone._links = {
            key: bandwidth
            for key, bandwidth in self._links.items()
            if key not in removed_links
        }
        clone._adjacency = {
            node: [dst for dst in self._adjacency[node]
                   if (node, dst) not in removed_links]
            for node in self.nodes
        }
        clone._degraded = True
        clone._failed_routers = self._failed_routers | failed_routers
        # The constructor pre-filled full-mesh caches for nothing; reset so
        # the pruned link set drives every lazy rebuild.
        clone._dist_flat = None
        clone._dist_matrix = None
        clone._links_version = 0
        clone._link_arrays = None
        clone._monotone_cache = {}
        return clone

    def with_failed_links(
        self, links: "list[tuple[int, int]] | tuple[tuple[int, int], ...]"
    ) -> "NoCTopology":
        """A degraded view with the given links failed in *both* directions.

        Links are undirected for fault purposes — a broken wire kills both
        channels, and the simulator's credit loops require symmetric
        adjacency.  Hop distances on the view come from BFS over the
        surviving links (:data:`UNREACHABLE` for disconnected pairs).

        Raises:
            GraphError: when a named link does not exist in this topology.
        """
        removed: set[tuple[int, int]] = set()
        for a, b in links:
            if not (self.has_link(a, b) or self.has_link(b, a)):
                raise GraphError(f"no link between {a} and {b} in {self!r}")
            removed.add((a, b))
            removed.add((b, a))
        return self._masked_copy(removed, frozenset())

    def with_failed_routers(self, routers: "list[int] | tuple[int, ...]") -> "NoCTopology":
        """A degraded view with the given routers (and all their links) failed.

        The nodes stay addressable — coordinates and ids are geometry — but
        carry no links, so nothing can route through or terminate at them;
        they are excluded from :meth:`healthy_nodes` and mappings reject
        placements on them.

        Raises:
            GraphError: for node ids outside the topology.
        """
        failed = frozenset(routers)
        for node in failed:
            self._require_node(node)
        removed: set[tuple[int, int]] = set()
        for node in failed:
            for neighbor in self._adjacency[node]:
                removed.add((node, neighbor))
                removed.add((neighbor, node))
        return self._masked_copy(removed, failed)

    def with_distance_metric(self, matrix: np.ndarray) -> "NoCTopology":
        """A clone whose hop-distance metric is replaced by ``matrix``.

        The link set and bandwidths are copied unchanged; only the cached
        distance table is pre-seeded with the given ``(N, N)`` int64 matrix.
        This is the substrate of the resilience mapping objective: Equation-7
        cost is *linear* in the distance matrix, so evaluating a placement
        against an ensemble-summed matrix prices the whole failure ensemble
        in one ordinary cost call.  Do not route on the returned view — its
        metric is no longer the surviving-hop distance.

        Raises:
            GraphError: when the matrix shape does not match the node count.
        """
        n = self.num_nodes
        if getattr(matrix, "shape", None) != (n, n):
            raise GraphError(
                f"distance metric must be ({n}, {n}), got "
                f"{getattr(matrix, 'shape', None)}"
            )
        clone = self._masked_copy(set(), frozenset())
        metric = np.asarray(matrix, dtype=np.int64)
        clone._dist_matrix = metric
        clone._dist_flat = metric.ravel().tolist()
        return clone

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Export to :class:`networkx.DiGraph` with ``bandwidth`` edge data."""
        graph = nx.DiGraph(name=repr(self))
        for node in self.nodes:
            x, y = self.coords(node)
            graph.add_node(node, x=x, y=y)
        for link in self.links():
            graph.add_edge(link.src, link.dst, bandwidth=link.bandwidth)
        return graph

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _require_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise GraphError(f"node {node} outside 0..{self.num_nodes - 1}")

    def __repr__(self) -> str:
        kind = "torus" if self.torus else "mesh"
        return f"NoCTopology({self.width}x{self.height} {kind}, links={self.num_links})"
