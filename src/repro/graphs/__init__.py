"""Graph substrate: core graphs, NoC topology graphs, commodities, quadrants.

This package implements Definitions 1 and 2 of the paper: the *core graph*
``G(V, E)`` whose directed edges carry communication bandwidth demands, and
the *NoC topology graph* ``P(U, F)`` whose directed edges carry link
bandwidth capacities.  It also provides the commodity set ``D`` built from a
mapping (Equation 2), quadrant subgraphs used by the ``shortestpath()``
routine, a seeded random core-graph generator (substitute for LEDA, used by
Table 2), and JSON/DOT serialization.
"""

from repro.graphs.commodities import Commodity, build_commodities
from repro.graphs.core_graph import CoreGraph, TrafficFlow
from repro.graphs.quadrant import quadrant_links, quadrant_nodes
from repro.graphs.random_graphs import random_core_graph
from repro.graphs.topology import Link, NoCTopology

__all__ = [
    "Commodity",
    "CoreGraph",
    "Link",
    "NoCTopology",
    "TrafficFlow",
    "build_commodities",
    "quadrant_links",
    "quadrant_nodes",
    "random_core_graph",
]
