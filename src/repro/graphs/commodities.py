"""Commodities ``D`` (Equation 2): core-graph edges lifted onto mesh nodes.

Once a mapping ``map: V -> U`` is fixed, every core-graph edge ``e_{i,j}``
becomes a single-commodity flow ``d_k`` from ``map(v_i)`` to ``map(v_j)``
with value ``vl(d_k) = comm_{i,j}``.  Routing algorithms consume this list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.mapping.base import Mapping


@dataclass(frozen=True)
class Commodity:
    """One single-commodity flow ``d_k``.

    Attributes:
        index: the commodity number ``k`` (position in the sorted order of
            core-graph edges; stable across calls for a given graph).
        src_core: producing core name ``v_i``.
        dst_core: consuming core name ``v_j``.
        src_node: mesh node ``map(v_i)``.
        dst_node: mesh node ``map(v_j)``.
        value: flow value ``vl(d_k)`` = bandwidth demand in MB/s.
    """

    index: int
    src_core: str
    dst_core: str
    src_node: int
    dst_node: int
    value: float


def build_commodities(core_graph: CoreGraph, mapping: "Mapping") -> list[Commodity]:
    """Lift every core-graph edge onto the mesh through ``mapping``.

    The list is ordered by decreasing flow value (ties broken by core names)
    which is the processing order of the ``shortestpath()`` routine; the
    ``index`` field preserves that rank.

    Raises:
        MappingError: if any endpoint core is unmapped.
    """
    flows = sorted(
        core_graph.flows(), key=lambda flow: (-flow.bandwidth, flow.src, flow.dst)
    )
    commodities: list[Commodity] = []
    for rank, flow in enumerate(flows):
        if not mapping.is_mapped(flow.src):
            raise MappingError(f"core {flow.src!r} is not mapped")
        if not mapping.is_mapped(flow.dst):
            raise MappingError(f"core {flow.dst!r} is not mapped")
        commodities.append(
            Commodity(
                index=rank,
                src_core=flow.src,
                dst_core=flow.dst,
                src_node=mapping.node_of(flow.src),
                dst_node=mapping.node_of(flow.dst),
                value=flow.bandwidth,
            )
        )
    return commodities
