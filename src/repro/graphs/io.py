"""Serialization for core graphs and topologies (JSON and Graphviz DOT).

JSON is the interchange format used by the CLI (`nmap-noc map --app file.json`)
and by users bringing their own applications; DOT export exists for quick
visual inspection of core graphs and mapped meshes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import GraphError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology

_SCHEMA_VERSION = 1


def core_graph_to_dict(graph: CoreGraph) -> dict[str, Any]:
    """A JSON-ready dictionary for a core graph."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "core-graph",
        "name": graph.name,
        "cores": graph.cores,
        "flows": [
            {"src": flow.src, "dst": flow.dst, "bandwidth": flow.bandwidth}
            for flow in graph.flows()
        ],
    }


def core_graph_from_dict(payload: dict[str, Any]) -> CoreGraph:
    """Parse a dictionary produced by :func:`core_graph_to_dict`.

    Raises:
        GraphError: on unknown schema or malformed entries.
    """
    if payload.get("kind") != "core-graph":
        raise GraphError(f"not a core-graph payload: kind={payload.get('kind')!r}")
    if payload.get("schema") != _SCHEMA_VERSION:
        raise GraphError(f"unsupported schema version {payload.get('schema')!r}")
    graph = CoreGraph(name=str(payload.get("name", "core-graph")))
    for core in payload.get("cores", []):
        graph.add_core(str(core))
    for flow in payload.get("flows", []):
        try:
            graph.add_traffic(str(flow["src"]), str(flow["dst"]), float(flow["bandwidth"]))
        except KeyError as exc:
            raise GraphError(f"flow entry missing field: {flow!r}") from exc
    return graph


def save_core_graph(graph: CoreGraph, path: str | Path) -> None:
    """Write a core graph as pretty-printed JSON."""
    Path(path).write_text(json.dumps(core_graph_to_dict(graph), indent=2) + "\n")


def load_core_graph(path: str | Path) -> CoreGraph:
    """Read a core graph from a JSON file written by :func:`save_core_graph`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid JSON in {path}: {exc}") from exc
    return core_graph_from_dict(payload)


def topology_to_dict(topology: NoCTopology) -> dict[str, Any]:
    """A JSON-ready dictionary for a topology (uniform or per-link capacity)."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "noc-topology",
        "width": topology.width,
        "height": topology.height,
        "torus": topology.torus,
        "links": [
            {"src": link.src, "dst": link.dst, "bandwidth": link.bandwidth}
            for link in topology.links()
        ],
    }


def topology_from_dict(payload: dict[str, Any]) -> NoCTopology:
    """Parse a dictionary produced by :func:`topology_to_dict`."""
    if payload.get("kind") != "noc-topology":
        raise GraphError(f"not a topology payload: kind={payload.get('kind')!r}")
    if payload.get("schema") != _SCHEMA_VERSION:
        raise GraphError(f"unsupported schema version {payload.get('schema')!r}")
    topology = NoCTopology(
        int(payload["width"]), int(payload["height"]), torus=bool(payload.get("torus", False))
    )
    for link in payload.get("links", []):
        topology.set_link_bandwidth(int(link["src"]), int(link["dst"]), float(link["bandwidth"]))
    return topology


def core_graph_to_dot(graph: CoreGraph) -> str:
    """Render a core graph in Graphviz DOT with bandwidth edge labels."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;"]
    for core in graph.cores:
        lines.append(f'  "{core}";')
    for flow in graph.flows():
        lines.append(f'  "{flow.src}" -> "{flow.dst}" [label="{flow.bandwidth:g}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def mapping_to_dot(topology: NoCTopology, placement: dict[int, str | None]) -> str:
    """Render a mapped mesh in DOT: one record node per cross-point.

    Args:
        topology: the mesh.
        placement: node id -> core name (or None for an empty node).
    """
    lines = ["digraph mapping {", "  node [shape=record];"]
    for node in topology.nodes:
        x, y = topology.coords(node)
        core = placement.get(node)
        label = core if core is not None else "(empty)"
        lines.append(f'  n{node} [label="u{node} ({x},{y})|{label}" pos="{x},{-y}!"];')
    for src, dst in topology.link_keys():
        if src < dst:
            lines.append(f"  n{src} -> n{dst} [dir=both];")
    lines.append("}")
    return "\n".join(lines) + "\n"
