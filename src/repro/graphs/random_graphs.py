"""Seeded random core-graph generator (LEDA substitute for Table 2).

The paper generates random core graphs of 25-65 cores with the LEDA package
to compare NMAP against PBB at scale.  LEDA is proprietary; this module
produces connected, directed, bandwidth-weighted graphs with the statistical
shape of the paper's video workloads: a connected backbone (random spanning
tree) plus extra cross edges, and bandwidths drawn log-uniformly from a
video-like range (default 16-800 MB/s, matching the spread seen in Fig 1).

Everything is driven by an explicit seed so Table 2 is reproducible bit for
bit.
"""

from __future__ import annotations

import math
import random

from repro.errors import GraphError
from repro.graphs.core_graph import CoreGraph


def _log_uniform(rng: random.Random, low: float, high: float) -> float:
    """Sample log-uniformly in ``[low, high]`` (heavier mass at small values)."""
    return math.exp(rng.uniform(math.log(low), math.log(high)))


def random_core_graph(
    num_cores: int,
    seed: int,
    extra_edge_factor: float = 1.5,
    bandwidth_range: tuple[float, float] = (16.0, 800.0),
    name: str | None = None,
) -> CoreGraph:
    """Generate a connected random core graph.

    Construction: a random spanning tree over shuffled cores guarantees
    connectivity; then ``extra_edge_factor * num_cores`` additional distinct
    directed edges are added between random non-adjacent pairs.  Edge
    bandwidths are log-uniform in ``bandwidth_range`` and rounded to integers
    (the paper's graphs carry integer MB/s labels).

    Args:
        num_cores: number of vertices (the paper sweeps 25..65).
        seed: RNG seed; equal seeds give equal graphs.
        extra_edge_factor: cross edges per core beyond the spanning tree.
        bandwidth_range: inclusive (low, high) MB/s range.
        name: graph name; defaults to ``random-<n>-s<seed>``.

    Raises:
        GraphError: on non-positive sizes or an empty bandwidth range.
    """
    if num_cores < 2:
        raise GraphError(f"random core graph needs >= 2 cores, got {num_cores}")
    low, high = bandwidth_range
    if not (0 < low <= high):
        raise GraphError(f"invalid bandwidth range {bandwidth_range}")
    if extra_edge_factor < 0:
        raise GraphError(f"extra_edge_factor must be >= 0, got {extra_edge_factor}")

    rng = random.Random(seed)
    graph = CoreGraph(name=name or f"random-{num_cores}-s{seed}")
    cores = [f"c{i}" for i in range(num_cores)]
    for core in cores:
        graph.add_core(core)

    shuffled = list(cores)
    rng.shuffle(shuffled)
    for position in range(1, num_cores):
        parent = shuffled[rng.randrange(position)]
        child = shuffled[position]
        bandwidth = round(_log_uniform(rng, low, high))
        src, dst = (parent, child) if rng.random() < 0.5 else (child, parent)
        graph.add_traffic(src, dst, max(1.0, bandwidth))

    target_extra = int(extra_edge_factor * num_cores)
    attempts = 0
    added = 0
    max_attempts = 50 * max(1, target_extra)
    while added < target_extra and attempts < max_attempts:
        attempts += 1
        src, dst = rng.sample(cores, 2)
        if graph.has_traffic(src, dst):
            continue
        bandwidth = round(_log_uniform(rng, low, high))
        graph.add_traffic(src, dst, max(1.0, bandwidth))
        added += 1
    return graph


def random_graph_suite(
    sizes: tuple[int, ...] = (25, 35, 45, 55, 65),
    seed: int = 2004,
    **kwargs: float,
) -> list[CoreGraph]:
    """The Table 2 workload: one random graph per size, derived seeds.

    Args:
        sizes: core counts to generate (paper: 25, 35, 45, 55, 65).
        seed: master seed; each graph gets ``seed + size`` so individual
            graphs can be regenerated in isolation.
        **kwargs: forwarded to :func:`random_core_graph`.
    """
    return [
        random_core_graph(size, seed=seed + size, **kwargs)  # type: ignore[arg-type]
        for size in sizes
    ]
