"""Deterministic seed derivation for independent RNG streams.

Every stochastic component in this repository (traffic sources, synthetic
injectors, stochastic mappers fanned out by ``run_batch``) must draw from a
stream derived *only* from the seed carried by its request plus a stable
stream index — never from shared global state.  That is what makes a batch
of requests produce identical outputs whether it runs on 1 worker or 8:
each job's randomness is a pure function of its own payload.

``derive_seed`` is a splitmix64-style mixer: statistically independent
streams for adjacent ``(base, *streams)`` tuples, stable across processes
and Python versions (no reliance on ``hash``).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def _splitmix64(state: int) -> int:
    """One splitmix64 output step (Steele et al., the JDK's SplittableRandom)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_seed(base: int, *streams: int) -> int:
    """A 64-bit seed derived from ``base`` and a stable stream index path.

    Args:
        base: the user-facing seed (e.g. ``SimConfig.seed``).
        streams: any number of integer stream indices (node id, commodity
            index, batch position, ...) identifying one independent stream.

    Returns:
        A deterministic value in ``[0, 2**64)``; distinct stream paths give
        uncorrelated seeds even when ``base`` values are small and adjacent.
    """
    state = _splitmix64(base & _MASK64)
    for stream in streams:
        state = _splitmix64(state ^ (stream & _MASK64))
    return state
