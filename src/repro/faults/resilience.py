"""The resilience mapping objective: expected cost under link failures.

A placement that is optimal on the pristine fabric can sit its heaviest
flows on paths that a single failed link stretches badly.  The resilience
objective scores a placement by its *expected* Equation-7 communication
cost over the **single-link-failure ensemble** — one scenario per
undirected link, each scenario's hop distances taken from BFS over the
surviving links.

The trick that keeps this exactly as cheap as the normal objective:
Equation-7 cost is *linear* in the hop-distance matrix, so

``sum over scenarios of cost(placement, D_scenario)
  == cost(placement, sum over scenarios of D_scenario)``.

We therefore pre-sum the ensemble's (integer) distance matrices once per
topology and hand the mappers a :meth:`~repro.graphs.topology.NoCTopology
.with_distance_metric` view carrying that summed matrix — every existing
cost kernel (``comm_cost``, the vectorized swap scoring) prices the whole
ensemble per call, bit-exactly (integer bandwidths x integer summed
distances, no averaging round-off; the ensemble size divides out only in
the final reported expectation).  ``argmin`` is unchanged by the constant
factor, so optimizing the view optimizes the expectation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.graphs.topology import NoCTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mapping.base import Mapping


def undirected_links(topology: NoCTopology) -> list[tuple[int, int]]:
    """The topology's undirected links as sorted ``(low, high)`` pairs."""
    return sorted({(min(u, v), max(u, v)) for u, v in topology.link_keys()})


def single_link_failure_ensemble(topology: NoCTopology) -> list["NoCTopology"]:
    """One degraded view per undirected link failure, in stable link order."""
    return [
        topology.with_failed_links([link]) for link in undirected_links(topology)
    ]


def resilience_distance_sum(topology: NoCTopology) -> tuple[np.ndarray, int]:
    """``(sum of masked distance matrices, ensemble size)`` for the topology.

    The sum is exact int64 arithmetic; disconnection sentinels
    (:data:`~repro.graphs.topology.UNREACHABLE`) survive into the sum, so a
    placement that depends on a single-point-of-failure pair is dominated
    by every alternative that does not.
    """
    links = undirected_links(topology)
    total = np.zeros((topology.num_nodes, topology.num_nodes), dtype=np.int64)
    for link in links:
        total += topology.with_failed_links([link]).distance_matrix()
    return total, len(links)


def resilience_view(topology: NoCTopology) -> tuple[NoCTopology, int]:
    """A metric view pricing the whole failure ensemble per cost call.

    Returns ``(view, ensemble_size)``; run placement *search* on the view,
    but route and report on the real topology — the view's metric is a sum
    of scenario distances, not a routable geometry.
    """
    matrix, size = resilience_distance_sum(topology)
    return topology.with_distance_metric(matrix), size


def expected_fault_cost(mapping: "Mapping") -> float:
    """Expected Equation-7 cost of a placement over single-link failures.

    Evaluates the placement against the ensemble-summed metric and divides
    by the ensemble size.  Values at or above
    ``UNREACHABLE / ensemble_size`` mean some scenario disconnects a
    communicating pair.
    """
    from repro.mapping.base import Mapping
    from repro.metrics.comm_cost import comm_cost

    view, size = resilience_view(mapping.topology)
    priced = Mapping(mapping.core_graph, view, mapping.placement)
    return comm_cost(priced) / size
