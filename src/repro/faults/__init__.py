"""``repro.faults`` — fault injection, rerouting and resilience objectives.

Three pieces:

* :class:`~repro.faults.spec.FaultSpec` — the frozen, JSON-round-trippable
  description of a fault scenario (failed links/routers, degraded links,
  seeded random ensembles); ``apply()`` produces the degraded
  :class:`~repro.graphs.topology.NoCTopology` view.
* :func:`~repro.faults.reroute.fault_reroute` — surviving-minimal-path
  rerouting with the mandatory deadlock-freedom re-check
  (:class:`~repro.errors.FaultError` on disconnection or cycles).
* :mod:`~repro.faults.resilience` — the expected-cost-under-failure
  mapping objective NMAP and annealing optimize via
  ``options.objective="resilience"``.
"""

from repro.faults.reroute import (
    check_commodities_connected,
    fault_reroute,
    verify_deadlock_free,
)
from repro.faults.resilience import (
    expected_fault_cost,
    resilience_distance_sum,
    resilience_view,
    single_link_failure_ensemble,
    undirected_links,
)
from repro.faults.spec import FaultSpec

__all__ = [
    "FaultSpec",
    "check_commodities_connected",
    "expected_fault_cost",
    "fault_reroute",
    "resilience_distance_sum",
    "resilience_view",
    "single_link_failure_ensemble",
    "undirected_links",
    "verify_deadlock_free",
]
