"""Fault-tolerant rerouting: surviving minimal paths + deadlock re-check.

Rerouting around faults reuses the existing min-path machinery — the
load-balancing quadrant Dijkstra of :func:`repro.routing.min_path
.min_path_routing`, which on degraded topologies falls back to the global
monotone DAG of the surviving-hop metric when a failed link empties the
geometric quadrant.  What this module adds is the *contract*:

* a commodity whose endpoints the faults disconnect raises
  :class:`~repro.errors.FaultError` (named, actionable) instead of a bare
  routing failure;
* every fault-rerouted path set passes a **mandatory deadlock-freedom
  re-check** (Dally & Seitz channel-dependency cycle search) before it is
  allowed near a wormhole simulator — detours that leave the quadrant
  discipline lose its acyclicity argument, so the property is verified,
  not assumed.
"""

from __future__ import annotations

from repro.errors import FaultError, RoutingError
from repro.graphs.commodities import Commodity
from repro.graphs.topology import UNREACHABLE, NoCTopology
from repro.routing.base import RoutingResult
from repro.routing.deadlock import find_cycle
from repro.routing.min_path import min_path_routing


def check_commodities_connected(
    topology: NoCTopology, commodities: list[Commodity]
) -> None:
    """Raise :class:`FaultError` for any commodity the faults disconnect."""
    for commodity in sorted(commodities, key=lambda c: c.index):
        src, dst = commodity.src_node, commodity.dst_node
        if topology.distance(src, dst) >= UNREACHABLE:
            raise FaultError(
                f"commodity {commodity.index} ({src}->{dst}) is disconnected "
                f"by the injected faults"
            )


def verify_deadlock_free(routing: RoutingResult) -> None:
    """Raise :class:`FaultError` when the routing's CDG contains a cycle.

    This is the mandatory re-check for fault-rerouted path sets: a cyclic
    channel-dependency graph means the wormhole fabric can deadlock, so the
    routing must not ship.
    """
    cycle = find_cycle(routing)
    if cycle is not None:
        rendered = " -> ".join(f"{a}->{b}" for a, b in cycle)
        raise FaultError(
            f"fault rerouting creates a channel-dependency cycle: {rendered}"
        )


def fault_reroute(
    topology: NoCTopology,
    commodities: list[Commodity],
    base_weight: float = 1.0,
) -> RoutingResult:
    """Route all commodities on a fault-masked topology, verified deadlock-free.

    Args:
        topology: a (possibly degraded) topology view; pristine topologies
            are accepted and behave exactly like :func:`min_path_routing`
            plus the deadlock re-check.
        commodities: traffic demands to route.
        base_weight: constant link weight passed through to the Dijkstra.

    Returns:
        A :class:`RoutingResult` with one surviving minimal path per
        commodity, re-labeled ``"fault-reroute"``.

    Raises:
        FaultError: when a commodity is disconnected or the rerouted path
            set re-introduces a channel-dependency cycle.
    """
    check_commodities_connected(topology, commodities)
    try:
        routing = min_path_routing(topology, commodities, base_weight=base_weight)
    except RoutingError as exc:
        # Connectivity was verified above, so any residual routing failure
        # is still a property of the fault scenario (e.g. a quadrant the
        # fallback could not serve); keep the error typed as a fault.
        raise FaultError(f"rerouting around faults failed: {exc}") from exc
    routing.algorithm = "fault-reroute"
    verify_deadlock_free(routing)
    return routing
