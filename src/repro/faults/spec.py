"""The serializable fault scenario: :class:`FaultSpec`.

A fault spec names what is broken in the fabric — failed (undirected)
links, failed routers, degraded-bandwidth links — plus an optional
deterministic *random ensemble* component: ``random_link_failures`` extra
link failures drawn from ``fault_seed`` via :func:`repro.seeding
.derive_seed`, so resilience sweeps can enumerate seeded scenarios without
shipping explicit link lists.

Like every payload of the typed API it is a frozen dataclass with a
lossless ``to_dict``/``from_dict`` JSON round-trip; content errors raise
:class:`~repro.errors.ApiError` at *build* time (malformed values) or
:class:`~repro.errors.FaultError` at *apply* time (the spec names links or
routers the concrete topology does not have, or asks for more random
failures than there are candidate links).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.errors import ApiError, FaultError
from repro.seeding import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.topology import NoCTopology

#: Stable stream tag separating random-fault draws from every other
#: derive_seed consumer (traffic, injectors, batch retries).
FAULT_STREAM = 0xFA177


def _check_node(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ApiError(f"{what} must be a non-negative node id, got {value!r}")
    return value


def _normalize_pair(pair: Any, what: str) -> tuple[int, int]:
    """An undirected link as a canonical ``(low, high)`` node pair."""
    try:
        a, b = pair
    except (TypeError, ValueError):
        raise ApiError(f"{what} must be a (node, node) pair, got {pair!r}") from None
    a = _check_node(a, f"{what} endpoint")
    b = _check_node(b, f"{what} endpoint")
    if a == b:
        raise ApiError(f"{what} cannot connect node {a} to itself")
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class FaultSpec:
    """What is broken: the serializable description of one fault scenario.

    Attributes:
        failed_links: undirected node pairs whose link is gone (both
            directed channels fail — a broken wire kills the credit loop
            too).  Stored canonically as sorted, deduplicated
            ``(low, high)`` pairs.
        failed_routers: node ids whose router is dead; every incident link
            fails and nothing may be placed there.
        degraded_links: ``(a, b, factor)`` triples scaling an undirected
            link's bandwidth by ``factor`` in ``(0, 1)`` — partial faults.
            A link cannot be both failed and degraded.
        random_link_failures: number of *additional* link failures drawn
            deterministically from ``fault_seed`` when the spec is resolved
            against a concrete topology (see :meth:`resolve`).
        fault_seed: seed for the random draws; every draw derives from it
            via :func:`repro.seeding.derive_seed`, so ensembles are a pure
            function of the spec — independent of process or worker count.
    """

    failed_links: tuple[tuple[int, int], ...] = ()
    failed_routers: tuple[int, ...] = ()
    degraded_links: tuple[tuple[int, int, float], ...] = ()
    random_link_failures: int = 0
    fault_seed: int = 0

    def __post_init__(self) -> None:
        links = tuple(sorted({
            _normalize_pair(pair, "failed link") for pair in self.failed_links
        }))
        object.__setattr__(self, "failed_links", links)

        routers = tuple(sorted({
            _check_node(node, "failed router") for node in self.failed_routers
        }))
        object.__setattr__(self, "failed_routers", routers)

        degraded: dict[tuple[int, int], float] = {}
        for entry in self.degraded_links:
            try:
                a, b, factor = entry
            except (TypeError, ValueError):
                raise ApiError(
                    f"degraded link must be (node, node, factor), got {entry!r}"
                ) from None
            pair = _normalize_pair((a, b), "degraded link")
            if isinstance(factor, bool) or not isinstance(factor, (int, float)):
                raise ApiError(f"degrade factor must be a number, got {factor!r}")
            if not (0.0 < factor < 1.0):
                raise ApiError(
                    f"degrade factor must be in (0, 1), got {factor} "
                    f"for link {pair[0]}-{pair[1]}"
                )
            if pair in degraded and degraded[pair] != float(factor):
                raise ApiError(
                    f"link {pair[0]}-{pair[1]} degraded twice with different factors"
                )
            degraded[pair] = float(factor)
        overlap = set(degraded) & set(links)
        if overlap:
            a, b = min(overlap)
            raise ApiError(f"link {a}-{b} cannot be both failed and degraded")
        object.__setattr__(
            self,
            "degraded_links",
            tuple((a, b, degraded[(a, b)]) for a, b in sorted(degraded)),
        )

        if isinstance(self.random_link_failures, bool) or not isinstance(
            self.random_link_failures, int
        ) or self.random_link_failures < 0:
            raise ApiError(
                f"random_link_failures must be a non-negative int, "
                f"got {self.random_link_failures!r}"
            )
        if isinstance(self.fault_seed, bool) or not isinstance(self.fault_seed, int):
            raise ApiError(f"fault_seed must be an int, got {self.fault_seed!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the spec breaks nothing (the pristine scenario)."""
        return not (
            self.failed_links
            or self.failed_routers
            or self.degraded_links
            or self.random_link_failures
        )

    def describe(self) -> str:
        """A short human-readable summary for logs and CLI output."""
        parts: list[str] = []
        if self.failed_links:
            parts.append(
                "failed links "
                + ",".join(f"{a}-{b}" for a, b in self.failed_links)
            )
        if self.failed_routers:
            parts.append(
                "failed routers " + ",".join(str(n) for n in self.failed_routers)
            )
        if self.degraded_links:
            parts.append(
                "degraded "
                + ",".join(f"{a}-{b}x{f:g}" for a, b, f in self.degraded_links)
            )
        if self.random_link_failures:
            parts.append(
                f"{self.random_link_failures} random link failure(s) "
                f"@ seed {self.fault_seed}"
            )
        return "; ".join(parts) if parts else "no faults"

    # ------------------------------------------------------------------
    # resolution and application
    # ------------------------------------------------------------------
    def resolve(self, topology: "NoCTopology") -> "FaultSpec":
        """Expand the random component into concrete failed links.

        Draws ``random_link_failures`` distinct undirected links from the
        topology's surviving candidates (links not already failed, degraded
        or incident to a failed router), each index derived from
        ``fault_seed`` via :func:`~repro.seeding.derive_seed` — stable
        across processes and Python versions.

        Raises:
            FaultError: when fewer candidate links exist than failures asked.
        """
        if self.random_link_failures == 0:
            return self
        excluded = set(self.failed_links) | {
            (a, b) for a, b, _ in self.degraded_links
        }
        failed_routers = set(self.failed_routers)
        candidates = sorted({
            (min(u, v), max(u, v))
            for u, v in topology.link_keys()
            if u not in failed_routers and v not in failed_routers
        } - excluded)
        if self.random_link_failures > len(candidates):
            raise FaultError(
                f"cannot draw {self.random_link_failures} random link "
                f"failures: only {len(candidates)} candidate links in "
                f"{topology!r}"
            )
        drawn: list[tuple[int, int]] = []
        for draw in range(self.random_link_failures):
            index = derive_seed(self.fault_seed, FAULT_STREAM, draw) % len(candidates)
            drawn.append(candidates.pop(index))
        return replace(
            self,
            failed_links=tuple(sorted(self.failed_links + tuple(drawn))),
            random_link_failures=0,
        )

    def apply(self, topology: "NoCTopology") -> "NoCTopology":
        """The degraded topology view this scenario produces.

        Resolves random failures first, then fails routers, then links,
        then scales degraded links' bandwidth (both directions).  A link
        listed both explicitly and implicitly (incident to a failed router)
        fails once — idempotent, not an error.

        Raises:
            FaultError: when the spec names links or routers the topology
                does not have, or degrades a link that is failed.
        """
        if self.is_empty:
            return topology
        spec = self.resolve(topology)

        for node in spec.failed_routers:
            if not (0 <= node < topology.num_nodes):
                raise FaultError(f"failed router {node} outside {topology!r}")
        for a, b in spec.failed_links:
            if not (topology.has_link(a, b) or topology.has_link(b, a)):
                raise FaultError(f"no link between {a} and {b} in {topology!r}")
        for a, b, _factor in spec.degraded_links:
            if not (topology.has_link(a, b) or topology.has_link(b, a)):
                raise FaultError(f"no link between {a} and {b} in {topology!r}")

        masked = topology
        if spec.failed_routers:
            masked = masked.with_failed_routers(spec.failed_routers)
        surviving = [
            (a, b)
            for a, b in spec.failed_links
            if masked.has_link(a, b) or masked.has_link(b, a)
        ]
        # Always take the masking path (even when router failures already
        # removed every listed link) so the result is a degraded view with
        # BFS distances whenever any fault is present.
        masked = masked.with_failed_links(surviving)
        for a, b, factor in spec.degraded_links:
            if not (masked.has_link(a, b) or masked.has_link(b, a)):
                raise FaultError(
                    f"cannot degrade link {a}-{b}: it is failed in this scenario"
                )
            for src, dst in ((a, b), (b, a)):
                if masked.has_link(src, dst):
                    masked.set_link_bandwidth(
                        src, dst, masked.link_bandwidth(src, dst) * factor
                    )
        return masked

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "failed_links": [list(pair) for pair in self.failed_links],
            "failed_routers": list(self.failed_routers),
            "degraded_links": [list(entry) for entry in self.degraded_links],
            "random_link_failures": self.random_link_failures,
            "fault_seed": self.fault_seed,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultSpec":
        if not isinstance(payload, dict):
            raise ApiError(f"fault payload must be a dict, got {payload!r}")
        known = {
            "failed_links", "failed_routers", "degraded_links",
            "random_link_failures", "fault_seed",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ApiError(f"unknown fault field(s): {', '.join(unknown)}")
        return cls(
            failed_links=tuple(
                tuple(pair) if isinstance(pair, (list, tuple)) else pair
                for pair in payload.get("failed_links", ())
            ),
            failed_routers=tuple(payload.get("failed_routers", ())),
            degraded_links=tuple(
                tuple(entry) if isinstance(entry, (list, tuple)) else entry
                for entry in payload.get("degraded_links", ())
            ),
            random_link_failures=payload.get("random_link_failures", 0),
            fault_seed=payload.get("fault_seed", 0),
        )

    # ------------------------------------------------------------------
    # CLI parsing helpers
    # ------------------------------------------------------------------
    @staticmethod
    def parse_link(text: str) -> tuple[int, int]:
        """Parse a CLI link spec like ``"3-4"`` into a node pair."""
        a_str, sep, b_str = text.strip().partition("-")
        try:
            if not sep:
                raise ValueError
            return _normalize_pair((int(a_str), int(b_str)), "failed link")
        except ValueError:
            raise ApiError(
                f"link spec must look like '3-4', got {text!r}"
            ) from None

    @staticmethod
    def parse_degraded(text: str) -> tuple[int, int, float]:
        """Parse a CLI degrade spec like ``"3-4:0.5"``."""
        link_str, sep, factor_str = text.strip().partition(":")
        if not sep:
            raise ApiError(
                f"degrade spec must look like '3-4:0.5', got {text!r}"
            )
        a, b = FaultSpec.parse_link(link_str)
        try:
            factor = float(factor_str)
        except ValueError:
            raise ApiError(
                f"degrade factor must be a number, got {factor_str!r}"
            ) from None
        return (a, b, factor)
