"""Dimension-ordered (XY) deterministic routing.

The classical deadlock-free mesh routing: travel the X dimension first, then
the Y dimension.  Figure 4 uses it as the baseline routing for the PMAP and
GMAP mappings (the DPMAP / DGMAP bars).  On a torus each dimension travels
in the wrap direction with the fewer hops.
"""

from __future__ import annotations

from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.base import RoutingResult


def _axis_step(src: int, dst: int, size: int, torus: bool) -> int:
    """Signed unit step from ``src`` toward ``dst`` along one axis."""
    if src == dst:
        return 0
    if not torus:
        return 1 if dst > src else -1
    forward = (dst - src) % size
    backward = (src - dst) % size
    return 1 if forward <= backward else -1


def xy_path(topology: NoCTopology, src: int, dst: int) -> list[int]:
    """The XY route from ``src`` to ``dst`` as a node list.

    X-coordinate differences are resolved first, then Y — one fixed minimal
    path per node pair, which is what makes the routing deterministic and
    table-free.
    """
    x, y = topology.coords(src)
    dst_x, dst_y = topology.coords(dst)
    path = [src]
    step = _axis_step(x, dst_x, topology.width, topology.torus)
    while x != dst_x:
        x = (x + step) % topology.width if topology.torus else x + step
        path.append(topology.node_at(x, y))
    step = _axis_step(y, dst_y, topology.height, topology.torus)
    while y != dst_y:
        y = (y + step) % topology.height if topology.torus else y + step
        path.append(topology.node_at(x, y))
    return path


def xy_routing(topology: NoCTopology, commodities: list[Commodity]) -> RoutingResult:
    """Route every commodity along its XY path."""
    paths = {
        commodity.index: xy_path(topology, commodity.src_node, commodity.dst_node)
        for commodity in commodities
    }
    return RoutingResult.from_paths(topology, commodities, paths, algorithm="xy")
