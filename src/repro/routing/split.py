"""Traffic splitting via multi-commodity flow (§6 of the paper).

Three LPs over the same flow variables ``x^k_{i,j}`` (commodity ``k`` on
directed link ``(i, j)``), each with per-commodity flow conservation
(Equation 5, read per commodity — see DESIGN.md):

* **MCF1** (Equation 8): minimize the total slack by which link capacities
  are exceeded.  Slack 0 means the mapping satisfies the bandwidth
  constraints with split traffic.
* **MCF2** (Equation 9): capacities hard; minimize total flow over all
  links, which equals the communication cost of the split routing.
* **min-congestion**: minimize a single capacity value ``lambda`` such that
  every link load is at most ``lambda``.  This computes Figure 4's metric —
  the minimum uniform link bandwidth the application needs — directly.

Each builder accepts ``quadrant_only``: when True, commodity ``k``'s
variables exist only on the monotone links of its quadrant ``Q(d_k)``
(Equation 10), so all of its traffic travels minimum paths — the NMAPTM
variant with equal hop delay across split paths, for low-jitter traffic.
When False, variables exist on every link (NMAPTA).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.graphs.quadrant import quadrant_links
from repro.graphs.topology import NoCTopology
from repro.lp.model import LinearProgram, Variable, lin_sum
from repro.lp.solver import Solution, solve
from repro.routing.base import FLOW_EPSILON, LinkKey, RoutingResult


@dataclass
class _McfModel:
    """A built (but unsolved) MCF program plus its variable bookkeeping."""

    program: LinearProgram
    flow_vars: dict[tuple[int, LinkKey], Variable]
    commodities: list[Commodity]
    topology: NoCTopology

    def extract_routing(self, solution: Solution, algorithm: str) -> RoutingResult:
        """Turn an optimal solution's flow variables into a RoutingResult."""
        flows: dict[int, dict[LinkKey, float]] = {c.index: {} for c in self.commodities}
        for (index, link), variable in self.flow_vars.items():
            amount = solution.value_of(variable)
            if amount > FLOW_EPSILON:
                flows[index][link] = amount
        return RoutingResult(
            topology=self.topology,
            commodities=self.commodities,
            flows=flows,
            paths=None,
            algorithm=algorithm,
        )


def _allowed_links(
    topology: NoCTopology, commodity: Commodity, quadrant_only: bool
) -> list[LinkKey]:
    if quadrant_only:
        return quadrant_links(
            topology, commodity.src_node, commodity.dst_node, monotone=True
        )
    return topology.link_keys()


def build_mcf_model(
    topology: NoCTopology,
    commodities: list[Commodity],
    quadrant_only: bool = False,
    name: str = "mcf",
) -> _McfModel:
    """Create flow variables and per-commodity conservation constraints.

    The returned model carries no capacity constraints or objective yet;
    the three public solvers add their own.

    Raises:
        RoutingError: if the commodity list is empty (nothing to route).
    """
    if not commodities:
        raise RoutingError("cannot build an MCF over zero commodities")
    program = LinearProgram(name=name)
    flow_vars: dict[tuple[int, LinkKey], Variable] = {}
    for commodity in commodities:
        for link in _allowed_links(topology, commodity, quadrant_only):
            flow_vars[(commodity.index, link)] = program.add_var(
                f"x[{commodity.index},{link[0]}->{link[1]}]", low=0.0
            )

    # Flow conservation (Equation 5, per commodity): out - in = flow_k(node).
    for commodity in commodities:
        links = _allowed_links(topology, commodity, quadrant_only)
        touched: set[int] = set()
        for u, v in links:
            touched.add(u)
            touched.add(v)
        for node in sorted(touched):
            outgoing = [
                flow_vars[(commodity.index, (u, v))] for (u, v) in links if u == node
            ]
            incoming = [
                flow_vars[(commodity.index, (u, v))] for (u, v) in links if v == node
            ]
            balance = lin_sum(outgoing) - lin_sum(incoming)
            if node == commodity.src_node:
                program.add_constraint(balance.equals(commodity.value))
            elif node == commodity.dst_node:
                program.add_constraint(balance.equals(-commodity.value))
            else:
                program.add_constraint(balance.equals(0.0))
    return _McfModel(program, flow_vars, list(commodities), topology)


def _link_load_expr(model: _McfModel, link: LinkKey):
    terms = [
        variable
        for (index, var_link), variable in model.flow_vars.items()
        if var_link == link
    ]
    return lin_sum(terms)


def _loads_by_link(model: _McfModel) -> dict[LinkKey, list[Variable]]:
    by_link: dict[LinkKey, list[Variable]] = {}
    for (index, link), variable in model.flow_vars.items():
        by_link.setdefault(link, []).append(variable)
    return by_link


def solve_mcf1(
    topology: NoCTopology,
    commodities: list[Commodity],
    quadrant_only: bool = False,
) -> tuple[float, RoutingResult]:
    """MCF1 (Equation 8): minimize total capacity-violation slack.

    Returns:
        ``(total_slack, routing)``.  ``total_slack == 0`` (up to LP
        tolerance) means the mapping satisfies the bandwidth constraints
        with split-traffic routing.

    Raises:
        RoutingError: if the LP is not optimal (conservation alone is always
            feasible with enough slack, so this indicates a modeling bug).
    """
    model = build_mcf_model(topology, commodities, quadrant_only, name="mcf1")
    program = model.program
    slack_vars = []
    for link, variables in sorted(_loads_by_link(model).items()):
        slack = program.add_var(f"s[{link[0]}->{link[1]}]", low=0.0)
        slack_vars.append(slack)
        capacity = topology.link_bandwidth(*link)
        program.add_constraint(lin_sum(variables) - slack <= capacity)
    program.set_objective(lin_sum(slack_vars))
    solution = solve(program)
    if not solution.is_optimal:
        raise RoutingError(f"MCF1 unexpectedly {solution.status.value}")
    slack_total = max(0.0, solution.objective)
    return slack_total, model.extract_routing(
        solution, "mcf-split-minpath" if quadrant_only else "mcf-split"
    )


def solve_mcf2(
    topology: NoCTopology,
    commodities: list[Commodity],
    quadrant_only: bool = False,
) -> tuple[float, RoutingResult] | None:
    """MCF2 (Equation 9): hard capacities, minimize total flow (= comm cost).

    Returns:
        ``(total_flow_cost, routing)`` when a capacity-feasible split routing
        exists, else None (the caller — ``mappingwithsplitting()`` — treats
        that as cost ``maxvalue``).
    """
    model = build_mcf_model(topology, commodities, quadrant_only, name="mcf2")
    program = model.program
    for link, variables in sorted(_loads_by_link(model).items()):
        program.add_constraint(lin_sum(variables) <= topology.link_bandwidth(*link))
    program.set_objective(lin_sum(list(model.flow_vars.values())))
    solution = solve(program)
    if not solution.is_optimal:
        return None
    return solution.objective, model.extract_routing(
        solution, "mcf-split-minpath" if quadrant_only else "mcf-split"
    )


def solve_min_congestion(
    topology: NoCTopology,
    commodities: list[Commodity],
    quadrant_only: bool = False,
    minimize_flow_secondary: bool = True,
) -> tuple[float, RoutingResult]:
    """Minimum uniform link bandwidth achievable with traffic splitting.

    Solves ``min lambda s.t. load(link) <= lambda`` for every link, with
    per-commodity conservation — Figure 4's NMAPTM/NMAPTA metric for a given
    mapping.  Link capacities of the topology are ignored (the whole point
    is to discover the needed capacity).

    Args:
        minimize_flow_secondary: when True a second LP fixes
            ``lambda = lambda*`` and minimizes total flow, yielding a unique,
            decomposable flow pattern (used by the simulator); the congestion
            value is unchanged.

    Returns:
        ``(lambda_star, routing)``.
    """
    model = build_mcf_model(topology, commodities, quadrant_only, name="min-congestion")
    program = model.program
    lam = program.add_var("lambda", low=0.0)
    for link, variables in sorted(_loads_by_link(model).items()):
        program.add_constraint(lin_sum(variables) - lam <= 0.0)
    program.set_objective(lam)
    solution = solve(program)
    if not solution.is_optimal:
        raise RoutingError(f"min-congestion LP unexpectedly {solution.status.value}")
    lambda_star = solution.objective
    if not minimize_flow_secondary:
        return lambda_star, model.extract_routing(solution, "min-congestion")

    # Second phase: pin lambda (with a hair of tolerance) and minimize flow.
    model2 = build_mcf_model(topology, commodities, quadrant_only, name="min-congestion-2")
    program2 = model2.program
    cap = lambda_star * (1.0 + 1e-9) + 1e-9
    for link, variables in sorted(_loads_by_link(model2).items()):
        program2.add_constraint(lin_sum(variables) <= cap)
    program2.set_objective(lin_sum(list(model2.flow_vars.values())))
    solution2 = solve(program2)
    if not solution2.is_optimal:
        # Numerical corner: fall back to the phase-1 flows.
        return lambda_star, model.extract_routing(solution, "min-congestion")
    return lambda_star, model2.extract_routing(solution2, "min-congestion")
