"""Common routing result representation shared by all routers.

A :class:`RoutingResult` records, for a fixed mapping and commodity set, how
much of each commodity crosses each directed link — either as explicit node
paths (single-path routers) or as fractional per-commodity link flows (the
MCF solvers).  Everything the evaluation needs derives from it: aggregate
link loads, the bandwidth-constraint check of Inequality 3, the maximum load
(= minimum uniform link capacity, Figure 4's metric) and flow decompositions
for the simulator's source routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology

LinkKey = tuple[int, int]

#: Loads below this are treated as zero when cleaning up LP output.
FLOW_EPSILON = 1e-9


def path_links(path: list[int]) -> list[LinkKey]:
    """The directed links traversed by a node path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


@dataclass
class RoutingResult:
    """Per-commodity link flows plus derived aggregates.

    Attributes:
        topology: the NoC the flows live on.
        commodities: the routed commodity list (paper's ``D``).
        flows: per commodity index, a map link -> MB/s of that commodity
            crossing the link (``x^k_{i,j}`` in the paper).
        paths: for single-path routers, the node path per commodity index;
            None for fractional routings.
        algorithm: producing router name.
    """

    topology: NoCTopology
    commodities: list[Commodity]
    flows: dict[int, dict[LinkKey, float]]
    paths: dict[int, list[int]] | None = None
    algorithm: str = "routing"
    _link_loads: dict[LinkKey, float] | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def link_loads(self) -> dict[LinkKey, float]:
        """Aggregate load per directed link: ``sum_k x^k_{i,j}`` (cached)."""
        if self._link_loads is None:
            loads: dict[LinkKey, float] = {}
            for flow_map in self.flows.values():
                for link, amount in flow_map.items():
                    loads[link] = loads.get(link, 0.0) + amount
            self._link_loads = loads
        return self._link_loads

    def load_of(self, src: int, dst: int) -> float:
        return self.link_loads().get((src, dst), 0.0)

    def max_link_load(self) -> float:
        """The hottest link's load; the minimum uniform capacity that works."""
        loads = self.link_loads()
        return max(loads.values()) if loads else 0.0

    def total_flow(self) -> float:
        """Sum of all flow over all links — MCF2's objective (Eq. 9)."""
        return sum(self.link_loads().values())

    def is_feasible(self, tolerance: float = 1e-6) -> bool:
        """Check Inequality 3 against the topology's link capacities."""
        for link, load in self.link_loads().items():
            if load > self.topology.link_bandwidth(*link) + tolerance:
                return False
        return True

    def violations(self, tolerance: float = 1e-6) -> dict[LinkKey, float]:
        """Per-link overload amounts (load - capacity) where positive."""
        over: dict[LinkKey, float] = {}
        for link, load in self.link_loads().items():
            excess = load - self.topology.link_bandwidth(*link)
            if excess > tolerance:
                over[link] = excess
        return over

    def commodity_flow(self, index: int) -> dict[LinkKey, float]:
        return dict(self.flows.get(index, {}))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        topology: NoCTopology,
        commodities: list[Commodity],
        paths: dict[int, list[int]],
        algorithm: str,
    ) -> "RoutingResult":
        """Build from one explicit node path per commodity.

        Raises:
            RoutingError: when a path endpoint disagrees with its commodity
                or uses a non-existent link.
        """
        flows: dict[int, dict[LinkKey, float]] = {}
        for commodity in commodities:
            path = paths.get(commodity.index)
            if path is None:
                raise RoutingError(f"no path for commodity {commodity.index}")
            if path[0] != commodity.src_node or path[-1] != commodity.dst_node:
                raise RoutingError(
                    f"path {path} does not join nodes {commodity.src_node}->"
                    f"{commodity.dst_node} of commodity {commodity.index}"
                )
            flow_map: dict[LinkKey, float] = {}
            for link in path_links(path):
                if not topology.has_link(*link):
                    raise RoutingError(f"path uses missing link {link}")
                flow_map[link] = flow_map.get(link, 0.0) + commodity.value
            flows[commodity.index] = flow_map
        return cls(
            topology=topology,
            commodities=commodities,
            flows=flows,
            paths=dict(paths),
            algorithm=algorithm,
        )

    def __repr__(self) -> str:
        return (
            f"RoutingResult({self.algorithm}, commodities={len(self.commodities)}, "
            f"max_load={self.max_link_load():.1f})"
        )


def decompose_flows(
    topology: NoCTopology,
    commodity: Commodity,
    flow_map: dict[LinkKey, float],
) -> list[tuple[list[int], float]]:
    """Decompose one commodity's fractional link flows into weighted paths.

    Standard flow decomposition: repeatedly peel off the bottleneck amount
    along a source-to-destination path of remaining flow.  The result is a
    list of ``(node_path, fraction)`` pairs with fractions summing to 1,
    which is what the simulator's source-routing tables consume.

    Raises:
        RoutingError: when the flow map does not carry the commodity's full
            value out of its source (i.e. is not a valid flow).
    """
    remaining = {
        link: amount for link, amount in flow_map.items() if amount > FLOW_EPSILON
    }
    target = commodity.value
    decomposed: list[tuple[list[int], float]] = []
    shipped = 0.0
    max_iterations = len(flow_map) + 8
    for _ in range(max_iterations):
        if shipped >= target - max(FLOW_EPSILON, 1e-7 * target):
            break
        path = _trace_path(topology, commodity, remaining)
        bottleneck = min(remaining[link] for link in path_links(path))
        for link in path_links(path):
            left = remaining[link] - bottleneck
            if left <= FLOW_EPSILON:
                remaining.pop(link, None)
            else:
                remaining[link] = left
        decomposed.append((path, bottleneck))
        shipped += bottleneck
    if shipped < target - max(1e-6, 1e-6 * target):
        raise RoutingError(
            f"flow decomposition shipped {shipped:.6f} of {target:.6f} for "
            f"commodity {commodity.index}"
        )
    return [(path, amount / shipped) for path, amount in decomposed]


def _trace_path(
    topology: NoCTopology,
    commodity: Commodity,
    remaining: dict[LinkKey, float],
) -> list[int]:
    """Follow remaining flow from source to destination (greedy, max-flow arc).

    Cycles cannot trap the trace: visited nodes are excluded, and LP-optimal
    flows of MCF2/min-congestion are acyclic for positive-cost links anyway.
    """
    path = [commodity.src_node]
    visited = {commodity.src_node}
    while path[-1] != commodity.dst_node:
        here = path[-1]
        options = [
            (amount, link)
            for link, amount in remaining.items()
            if link[0] == here and link[1] not in visited
        ]
        if not options:
            raise RoutingError(
                f"flow of commodity {commodity.index} dead-ends at node {here}"
            )
        _, best = max(options, key=lambda item: item[0])
        path.append(best[1])
        visited.add(best[1])
    return path
