"""Deadlock analysis via channel dependency graphs (Dally & Seitz).

Wormhole routing deadlocks exactly when the *channel dependency graph*
(CDG) — a node per directed link, an edge whenever some route uses one link
immediately after another — contains a cycle.  The paper side-steps the
issue by simulating; this module makes the property checkable:

* XY routing is provably acyclic (the classical result) — asserted in
  tests;
* the quadrant min-path heuristic and LP-split routings are *not*
  guaranteed acyclic, so :func:`find_cycle` lets users audit a routing
  before committing it to silicon, and :func:`is_deadlock_free` gates the
  simulator's riskier configurations.

The analysis is conservative for split routing: every decomposed path of a
commodity contributes its dependencies, as each may be taken by some
packet.
"""

from __future__ import annotations

import networkx as nx

from repro.routing.base import LinkKey, RoutingResult, path_links
from repro.routing.tables import build_routing_tables


def channel_dependency_graph(routing: RoutingResult) -> nx.DiGraph:
    """Build the CDG of a routing result.

    Nodes are directed physical links ``(u, v)``; an edge
    ``(a, b) -> (b, c)`` means some packet may hold link ``(a, b)`` while
    requesting ``(b, c)``.
    """
    graph = nx.DiGraph()
    for link in routing.topology.link_keys():
        graph.add_node(link)

    def add_path_dependencies(path: list[int]) -> None:
        links = path_links(path)
        for held, wanted in zip(links, links[1:]):
            graph.add_edge(held, wanted)

    if routing.paths is not None:
        for path in routing.paths.values():
            add_path_dependencies(path)
        return graph

    # Fractional flows: dependencies follow the per-node next-hop tables —
    # a packet of commodity k holding (a, b) may request any (b, c) that
    # the table at b lists for k.
    tables = build_routing_tables(routing)
    for commodity in routing.commodities:
        for (a, b) in routing.flows.get(commodity.index, {}):
            for c, _weight in tables[b].next_hops(commodity.index):
                graph.add_edge((a, b), (b, c))
    return graph


def find_cycle(routing: RoutingResult) -> list[LinkKey] | None:
    """A channel-dependency cycle if one exists, else None.

    The returned list is the cycle's links in order (last depends on
    first) — directly actionable when debugging a deadlock report from the
    simulator.
    """
    graph = channel_dependency_graph(routing)
    try:
        cycle_edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def is_deadlock_free(routing: RoutingResult) -> bool:
    """True when the routing's CDG is acyclic (sufficient for wormhole)."""
    return find_cycle(routing) is None


def count_dependencies(routing: RoutingResult) -> int:
    """Number of CDG edges — a complexity measure of the routing."""
    return channel_dependency_graph(routing).number_of_edges()
