"""Exact single-path routing as an integer linear program.

Section 5 of the paper notes that the minimum-path selection could be solved
exactly as an ILP, at the price of minutes of runtime, and reports the
heuristic lands within ~10% of the ILP's solution.  This module is that
comparator: each commodity picks exactly one of its (enumerated) minimum
paths, and the ILP minimizes the maximum link load — the quantity the
heuristic's load balancing targets.  The ablation bench
``benchmarks/bench_ablation_ilp.py`` regenerates the comparison.
"""

from __future__ import annotations

from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.graphs.quadrant import enumerate_minimal_paths
from repro.graphs.topology import NoCTopology
from repro.lp.model import LinearProgram, lin_sum
from repro.lp.solver import solve
from repro.routing.base import LinkKey, RoutingResult, path_links


def ilp_single_path_routing(
    topology: NoCTopology,
    commodities: list[Commodity],
    path_limit: int = 200,
) -> tuple[float, RoutingResult]:
    """Choose one minimum path per commodity minimizing the max link load.

    Args:
        topology: the mesh/torus.
        commodities: flows to route.
        path_limit: per-commodity cap on enumerated minimum paths (guards
            against huge quadrants; a 7-hop quadrant already has 35 paths).

    Returns:
        ``(max_link_load, routing)`` at the ILP optimum.

    Raises:
        RoutingError: when the MILP fails (should not happen: selecting any
            path per commodity is always feasible).
    """
    if not commodities:
        raise RoutingError("cannot route zero commodities")
    program = LinearProgram(name="single-path-ilp")
    choice_vars: dict[tuple[int, int], object] = {}
    candidate_paths: dict[int, list[list[int]]] = {}
    for commodity in commodities:
        paths = enumerate_minimal_paths(
            topology, commodity.src_node, commodity.dst_node, limit=path_limit
        )
        candidate_paths[commodity.index] = paths
        selectors = []
        for which, _path in enumerate(paths):
            var = program.add_var(
                f"pick[{commodity.index},{which}]", low=0.0, high=1.0, integer=True
            )
            choice_vars[(commodity.index, which)] = var
            selectors.append(var)
        program.add_constraint(lin_sum(selectors).equals(1.0))

    lam = program.add_var("lambda", low=0.0)
    link_terms: dict[LinkKey, list] = {}
    for commodity in commodities:
        for which, path in enumerate(candidate_paths[commodity.index]):
            for link in path_links(path):
                link_terms.setdefault(link, []).append(
                    choice_vars[(commodity.index, which)] * commodity.value
                )
    for link, terms in sorted(link_terms.items()):
        program.add_constraint(lin_sum(terms) - lam <= 0.0)
    program.set_objective(lam)

    solution = solve(program)
    if not solution.is_optimal:
        raise RoutingError(f"single-path ILP unexpectedly {solution.status.value}")

    chosen: dict[int, list[int]] = {}
    for commodity in commodities:
        for which, path in enumerate(candidate_paths[commodity.index]):
            if solution.value_of(choice_vars[(commodity.index, which)]) > 0.5:
                chosen[commodity.index] = path
                break
        else:  # pragma: no cover - MILP guarantees one pick per commodity
            raise RoutingError(f"ILP picked no path for commodity {commodity.index}")
    routing = RoutingResult.from_paths(
        topology, commodities, chosen, algorithm="ilp-single-path"
    )
    return solution.objective, routing
