"""The paper's ``shortestpath()`` heuristic (§5): load-balanced minimum paths.

Commodities are processed in decreasing order of flow value.  For each, a
*quadrant graph* between its source and destination is built (every minimum
path lies inside it) and Dijkstra picks the path of least accumulated load;
the chosen links' weights are then increased by the commodity's value so
later commodities steer around hot links.

Fidelity note (also recorded in DESIGN.md): we restrict the quadrant to its
*monotone* links — links that strictly approach the destination — so every
candidate path is a minimum path and Dijkstra's load-based weights purely
break ties between equal-hop paths.  Without this restriction a heavily
loaded quadrant could make Dijkstra return a non-minimal detour, which would
contradict the routine's name and the paper's delay model (Equation 7 charges
every commodity its minimum hop count).
"""

from __future__ import annotations

import heapq

from repro import fastpath
from repro.errors import RoutingError
from repro.graphs.commodities import Commodity
from repro.graphs.quadrant import quadrant_links
from repro.graphs.topology import NoCTopology
from repro.routing.base import RoutingResult, path_links


def _dijkstra(
    outgoing: "dict[int, tuple[int, ...]] | dict[int, list[int]]",
    src: int,
    dst: int,
    link_loads: dict[tuple[int, int], float],
    base_weight: float,
) -> list[int] | None:
    """Least-accumulated-load path over a DAG adjacency, or None.

    Dijkstra with ``(total weight, path)`` entries; ties broken by node ids
    via the path tuple, which keeps results deterministic.
    """
    best: dict[int, float] = {src: 0.0}
    heap: list[tuple[float, tuple[int, ...]]] = [(0.0, (src,))]
    while heap:
        weight, path = heapq.heappop(heap)
        node = path[-1]
        if node == dst:
            return list(path)
        if weight > best.get(node, float("inf")):
            continue
        for nxt in outgoing.get(node, []):
            step = base_weight + link_loads.get((node, nxt), 0.0)
            candidate = weight + step
            if candidate < best.get(nxt, float("inf")):
                best[nxt] = candidate
                heapq.heappush(heap, (candidate, path + (nxt,)))
    return None


def _degraded_monotone_outgoing(
    topology: NoCTopology, dst: int
) -> dict[int, list[int]]:
    """The global monotone DAG toward ``dst`` over the surviving links.

    Fault fallback: on a degraded topology a failed link can force every
    surviving minimal path *outside* the geometric quadrant, so the
    quadrant restriction no longer covers the minimal-path set.  Links that
    strictly decrease the masked (BFS) hop distance to ``dst`` do: adjacent
    nodes differ by at most one hop, so every monotone step decreases the
    distance by exactly one and every monotone path is minimal in the
    degraded fabric.
    """
    outgoing: dict[int, list[int]] = {}
    for u, v in topology.link_keys():
        if topology.distance(v, dst) < topology.distance(u, dst):
            outgoing.setdefault(u, []).append(v)
    return outgoing


def least_loaded_quadrant_path(
    topology: NoCTopology,
    src: int,
    dst: int,
    link_loads: dict[tuple[int, int], float],
    base_weight: float = 1.0,
) -> list[int]:
    """Dijkstra over the monotone quadrant graph with load-based weights.

    Args:
        topology: the mesh/torus.
        src: source node; must differ from ``dst``.
        dst: destination node.
        link_loads: current accumulated load per directed link.
        base_weight: constant added to every link weight; keeps weights
            positive and makes the zero-load case deterministic.

    Returns:
        A minimum-hop node path whose total accumulated load is minimal.
        On fault-degraded topologies, "minimum hop" means the surviving
        (BFS) hop distance, and the search widens from the quadrant to the
        full monotone DAG when a failed link leaves the quadrant without a
        monotone route.
    """
    if src == dst:
        raise RoutingError("no path needed between a node and itself")
    if fastpath.fast_paths_enabled():
        # The monotone quadrant DAG depends only on the (immutable) geometry,
        # so it is memoized per (src, dst) on the topology and shared across
        # every commodity and every mapping candidate NMAP prices.
        outgoing: dict[int, tuple[int, ...]] | dict[int, list[int]]
        outgoing = topology.monotone_outgoing(src, dst)
    else:
        allowed = quadrant_links(topology, src, dst, monotone=True)
        outgoing = {}
        for u, v in allowed:
            outgoing.setdefault(u, []).append(v)

    path = _dijkstra(outgoing, src, dst, link_loads, base_weight)
    if path is None and topology.is_degraded:
        # Pristine topologies never take this branch (their quadrant always
        # routes), so legacy behavior is bit-identical.
        path = _dijkstra(
            _degraded_monotone_outgoing(topology, dst),
            src, dst, link_loads, base_weight,
        )
    if path is None:
        raise RoutingError(f"quadrant graph between {src} and {dst} is disconnected")
    return path


def min_path_routing(
    topology: NoCTopology,
    commodities: list[Commodity],
    base_weight: float = 1.0,
) -> RoutingResult:
    """Route all commodities with the load-balancing quadrant heuristic.

    The commodity list from :func:`repro.graphs.build_commodities` is already
    sorted by decreasing value; this function re-sorts defensively so callers
    can pass arbitrary orders.

    Returns:
        A :class:`RoutingResult` with one explicit path per commodity.  The
        caller decides feasibility via :meth:`RoutingResult.is_feasible`
        (``shortestpath()`` returns ``maxvalue`` as the cost in that case —
        that policy lives in the mapping layer).
    """
    ordered = sorted(commodities, key=lambda c: (-c.value, c.index))
    loads: dict[tuple[int, int], float] = {}
    paths: dict[int, list[int]] = {}
    for commodity in ordered:
        path = least_loaded_quadrant_path(
            topology, commodity.src_node, commodity.dst_node, loads, base_weight
        )
        paths[commodity.index] = path
        for link in path_links(path):
            loads[link] = loads.get(link, 0.0) + commodity.value
    return RoutingResult.from_paths(topology, commodities, paths, algorithm="min-path")
