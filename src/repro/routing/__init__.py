"""Routing layer: deterministic, load-balanced and split-traffic routing.

* :mod:`repro.routing.dimension_ordered` — XY (dimension-ordered) routing,
  the deterministic baseline behind DPMAP/DGMAP in Figure 4.
* :mod:`repro.routing.min_path` — the paper's ``shortestpath()`` heuristic:
  commodities in decreasing order, Dijkstra over the quadrant graph with
  load-accumulating edge weights.
* :mod:`repro.routing.split` — traffic splitting via multi-commodity flow:
  MCF1 (slack minimization, Eq. 8), MCF2 (flow/cost minimization, Eq. 9) and
  the min-congestion LP used to size link bandwidth (Fig. 4's NMAPTM/NMAPTA);
  quadrant-restricted (minimum-path) or all-path variants.
* :mod:`repro.routing.ilp` — exact single-path routing as an ILP, the
  comparator for the paper's "heuristic within ~10% of ILP" claim.
* :mod:`repro.routing.tables` — per-node routing tables and the routing-table
  bit-overhead estimate from §6.
"""

from repro.routing.base import RoutingResult, decompose_flows
from repro.routing.deadlock import (
    channel_dependency_graph,
    find_cycle,
    is_deadlock_free,
)
from repro.routing.dimension_ordered import xy_path, xy_routing
from repro.routing.ilp import ilp_single_path_routing
from repro.routing.min_path import min_path_routing
from repro.routing.split import solve_mcf1, solve_mcf2, solve_min_congestion
from repro.routing.tables import RoutingTable, build_routing_tables, table_overhead_bits

__all__ = [
    "RoutingResult",
    "RoutingTable",
    "build_routing_tables",
    "channel_dependency_graph",
    "decompose_flows",
    "find_cycle",
    "ilp_single_path_routing",
    "is_deadlock_free",
    "min_path_routing",
    "solve_mcf1",
    "solve_mcf2",
    "solve_min_congestion",
    "table_overhead_bits",
    "xy_path",
    "xy_routing",
]
