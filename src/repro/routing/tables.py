"""Per-node routing tables and their bit overhead (§6's table-size claim).

Splitting traffic grows each node's routing table because a commodity may
leave a node over several output links with different proportions.  The
paper argues this overhead stays below ~10% of the network buffer bits; this
module synthesizes the tables from a :class:`RoutingResult` and computes
that comparison so the claim can be checked for any mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.graphs.topology import NoCTopology
from repro.routing.base import LinkKey, RoutingResult, path_links


@dataclass
class RoutingTable:
    """Routing table of a single node.

    ``entries`` maps a commodity index to a list of ``(next_node, weight)``
    pairs; weights are the fraction of that commodity's traffic through this
    node that continues to ``next_node`` (1.0 for deterministic routing).
    """

    node: int
    entries: dict[int, list[tuple[int, float]]] = field(default_factory=dict)

    @property
    def num_entries(self) -> int:
        """Total (commodity, next-hop) rows stored at this node."""
        return sum(len(hops) for hops in self.entries.values())

    def next_hops(self, commodity_index: int) -> list[tuple[int, float]]:
        return list(self.entries.get(commodity_index, []))

    def is_deterministic(self) -> bool:
        return all(len(hops) == 1 for hops in self.entries.values())


def build_routing_tables(routing: RoutingResult) -> dict[int, RoutingTable]:
    """Synthesize per-node tables from explicit paths or fractional flows.

    For fractional routings the weight of ``node -> next`` for commodity
    ``k`` is ``x^k_{node,next}`` divided by the commodity's total flow
    through ``node``.

    Raises:
        RoutingError: if a commodity has flow into a node but none out
            (corrupt flow map).
    """
    tables: dict[int, RoutingTable] = {
        node: RoutingTable(node) for node in routing.topology.nodes
    }
    if routing.paths is not None:
        for commodity in routing.commodities:
            path = routing.paths[commodity.index]
            for src, dst in path_links(path):
                tables[src].entries.setdefault(commodity.index, []).append((dst, 1.0))
        return tables

    for commodity in routing.commodities:
        flow_map = routing.flows.get(commodity.index, {})
        outgoing: dict[int, list[tuple[int, float]]] = {}
        for (src, dst), amount in flow_map.items():
            outgoing.setdefault(src, []).append((dst, amount))
        for node, hops in outgoing.items():
            total = sum(amount for _dst, amount in hops)
            if total <= 0:
                raise RoutingError(
                    f"commodity {commodity.index} has zero outflow recorded at {node}"
                )
            tables[node].entries[commodity.index] = [
                (dst, amount / total) for dst, amount in sorted(hops)
            ]
    return tables


def table_overhead_bits(
    routing: RoutingResult,
    weight_bits: int = 8,
) -> int:
    """Total routing-table storage across all nodes, in bits.

    Each entry stores a commodity id, a next-hop port id (3 bits suffice for
    5 ports) and, for split routing, a fixed-point weight.

    Args:
        weight_bits: bits per split weight; deterministic tables store none.
    """
    tables = build_routing_tables(routing)
    commodity_bits = max(1, math.ceil(math.log2(max(1, len(routing.commodities)) + 1)))
    port_bits = 3
    total = 0
    for table in tables.values():
        for hops in table.entries.values():
            per_entry = commodity_bits + port_bits
            if len(hops) > 1:
                per_entry += weight_bits
            total += per_entry * len(hops)
    return total


def buffer_bits(
    topology: NoCTopology,
    buffer_depth_flits: int = 4,
    flit_bits: int = 32,
    ports_per_router: int = 5,
) -> int:
    """Total network buffer storage, for the §6 "<10% of buffer bits" ratio."""
    return topology.num_nodes * ports_per_router * buffer_depth_flits * flit_bits


def table_overhead_ratio(
    routing: RoutingResult,
    buffer_depth_flits: int = 4,
    flit_bits: int = 32,
) -> float:
    """Routing-table bits as a fraction of network buffer bits."""
    return table_overhead_bits(routing) / buffer_bits(
        routing.topology, buffer_depth_flits, flit_bits
    )
