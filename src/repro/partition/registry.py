"""Partitioner registry and the metis -> greedy-edge -> round-robin ladder.

Mirrors the two registry idioms already in the tree: partitioners
self-register under a name like engines and mappers do, and availability
introspection follows the JIT backend ladder
(:func:`repro.simnoc.engines.jit.available_backends`) — each rung reports
``available`` plus a human-readable reason, ``resolve_partitioner`` walks
the ladder for ``"auto"``, and an environment kill switch
(``REPRO_NO_METIS``) pins the pure-python rungs for CI's fallback-rot
guard, exactly like ``REPRO_NO_JIT`` does for the compiled kernels.
"""

from __future__ import annotations

import logging
import os
from typing import Callable

from repro.errors import PartitionError
from repro.partition.spec import PartitionSpec

logger = logging.getLogger("repro.partition")

#: name -> (fn(topology, num_shards) -> PartitionSpec, summary)
_PARTITIONERS: dict[str, tuple[Callable, str]] = {}

#: Ladder order for ``"auto"``: best cut quality first.
_LADDER = ("metis", "greedy-edge", "round-robin")

#: Warn once per process when ``auto`` falls past an unavailable rung.
_warned_fallback = False


def register_partitioner(name: str, *, summary: str = ""):
    """Function decorator registering a partitioner under ``name``."""

    def decorate(fn):
        if name in _PARTITIONERS:
            raise PartitionError(f"partitioner {name!r} is already registered")
        _PARTITIONERS[name] = (fn, summary)
        return fn

    return decorate


def list_partitioners() -> tuple[str, ...]:
    """All registered partitioner names, ladder order first."""
    _ensure_loaded()
    ordered = [name for name in _LADDER if name in _PARTITIONERS]
    ordered.extend(sorted(set(_PARTITIONERS) - set(_LADDER)))
    return tuple(ordered)


def partitioner_availability(name: str) -> tuple[bool, str]:
    """Whether ``name`` can run here, with the reason it can't."""
    _ensure_loaded()
    if name not in _PARTITIONERS:
        raise PartitionError(
            f"unknown partitioner {name!r}; known: "
            f"{', '.join(list_partitioners())}"
        )
    if name == "metis":
        from repro.partition.algorithms import metis_module

        module, reason = metis_module()
        return (module is not None), reason
    return True, "pure python, always available"


def available_partitioners() -> list[dict]:
    """Ladder introspection rows, shaped like ``jit.available_backends``."""
    rows = []
    for name in list_partitioners():
        available, reason = partitioner_availability(name)
        rows.append({"name": name, "available": available, "reason": reason})
    return rows


def resolve_partitioner(name: str = "auto") -> tuple[str, str]:
    """Resolve ``name`` to a runnable partitioner: ``(name, reason)``.

    ``"auto"`` walks the ladder and returns the first available rung,
    logging one warning per process when the preferred rung is missing;
    a concrete name resolves to itself when available and raises
    otherwise (skip-with-reason is the caller's job — tests do exactly
    that for metis).
    """
    global _warned_fallback
    _ensure_loaded()
    if name == "auto":
        skipped: list[str] = []
        for rung in list_partitioners():
            available, reason = partitioner_availability(rung)
            if available:
                if skipped and not _warned_fallback:
                    _warned_fallback = True
                    logger.warning(
                        "partitioner auto-ladder: %s unavailable, "
                        "falling back to %s",
                        ", ".join(skipped),
                        rung,
                    )
                detail = (
                    f"auto ladder (skipped: {', '.join(skipped)})"
                    if skipped
                    else "auto ladder, first rung"
                )
                return rung, detail
            skipped.append(f"{rung} ({reason})")
        raise PartitionError(
            f"no partitioner available: {'; '.join(skipped)}"
        )
    available, reason = partitioner_availability(name)
    if not available:
        raise PartitionError(f"partitioner {name!r} unavailable: {reason}")
    return name, "requested explicitly"


def partition_topology(
    topology, num_shards: int, method: str = "auto"
) -> PartitionSpec:
    """Partition ``topology`` into ``num_shards`` shards.

    Raises:
        PartitionError: for a non-positive or oversubscribed shard count,
            an unknown method, or an explicitly requested but unavailable
            one.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > topology.num_nodes:
        raise PartitionError(
            f"cannot split {topology.num_nodes} routers into "
            f"{num_shards} non-empty shards"
        )
    resolved, _ = resolve_partitioner(method)
    fn, _ = _PARTITIONERS[resolved]
    spec = fn(topology, num_shards)
    if spec.num_shards != num_shards:
        raise PartitionError(
            f"partitioner {resolved!r} produced {spec.num_shards} "
            f"non-empty shards, {num_shards} were requested"
        )
    return spec


def no_metis() -> bool:
    """The ``REPRO_NO_METIS`` kill switch (mirrors ``REPRO_NO_JIT``)."""
    return bool(os.environ.get("REPRO_NO_METIS"))


def _ensure_loaded() -> None:
    """Import the algorithm module so its decorators have run."""
    import repro.partition.algorithms  # noqa: F401
