"""The three partitioners: metis (optional), greedy-edge, round-robin.

The ladder follows fpgagraphlib's ``CoreConfig`` (see SNIPPETS.md): a real
graph partitioner when the optional dependency is installed, a greedy
edge-affinity region grower as the always-available quality rung, and
round-robin as the trivially correct floor.  Every partitioner is
deterministic — same topology, same shard count, same cut — because the
sharded engine's bit-identity contract extends to anything that feeds it.
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.partition.registry import no_metis, register_partitioner
from repro.partition.spec import PartitionSpec, spec_from_assignment


def metis_module() -> tuple[object | None, str]:
    """Import whichever metis binding exists: ``(module, reason)``.

    Tried in order: ``pymetis`` (adjacency-list API), then ``metis``
    (networkx-flavored API).  Returns ``(None, reason)`` — never raises —
    so the registry can report skip-with-reason and the auto ladder can
    fall through.
    """
    if no_metis():
        return None, "disabled by REPRO_NO_METIS"
    try:
        import pymetis  # noqa: F401 — optional dependency

        return pymetis, "pymetis importable"
    except ImportError:
        pass
    try:
        import metis  # noqa: F401 — optional dependency

        return metis, "metis importable"
    except ImportError:
        return None, (
            "optional dependency not installed (no 'pymetis' or 'metis' "
            "module importable)"
        )


def _compact_labels(membership, num_shards: int) -> list[int]:
    """Renumber arbitrary part labels to dense 0..k-1 by first appearance.

    METIS may label parts arbitrarily (and, rarely, leave one empty); the
    :class:`PartitionSpec` contract wants dense non-empty shard ids.  An
    empty part is a hard error here — the caller asked for ``num_shards``
    workers and silently running fewer would skew the balance story.
    """
    remap: dict[int, int] = {}
    compact = []
    for label in membership:
        if label not in remap:
            remap[label] = len(remap)
        compact.append(remap[label])
    if len(remap) != num_shards:
        raise PartitionError(
            f"metis produced {len(remap)} non-empty parts, "
            f"{num_shards} were requested"
        )
    return compact


@register_partitioner(
    "metis", summary="multilevel k-way graph partitioning (optional dep)"
)
def partition_metis(topology, num_shards: int) -> PartitionSpec:
    """K-way cut via METIS, through whichever python binding is installed."""
    module, reason = metis_module()
    if module is None:
        raise PartitionError(f"metis partitioner unavailable: {reason}")
    if num_shards == 1:
        # METIS bindings reject nparts < 2; the 1-shard cut is trivial.
        return spec_from_assignment(
            topology, [0] * topology.num_nodes, "metis"
        )
    adjacency = [sorted(topology.neighbors(node)) for node in topology.nodes]
    if module.__name__ == "pymetis":
        _, membership = module.part_graph(num_shards, adjacency=adjacency)
    else:
        _, membership = module.part_graph(adjacency, num_shards)
    return spec_from_assignment(
        topology, _compact_labels(membership, num_shards), "metis"
    )


@register_partitioner(
    "greedy-edge",
    summary="greedy edge-affinity region growing (contiguous shards)",
)
def partition_greedy_edge(topology, num_shards: int) -> PartitionSpec:
    """Grow one contiguous region per shard, maximizing internal edges.

    Each shard seeds at the lowest unassigned router and repeatedly claims
    the unassigned neighbor with the most links into the region (ties to
    the lowest id), producing compact blobs on meshes and tori.  Shard
    sizes are fixed up front to the balanced split, so ``balance`` is
    always within one router of ideal.
    """
    nodes = list(topology.nodes)
    count = len(nodes)
    base, extra = divmod(count, num_shards)
    assignment = {node: -1 for node in nodes}
    unassigned = set(nodes)
    for shard in range(num_shards):
        target = base + (1 if shard < extra else 0)
        seed = min(unassigned)
        assignment[seed] = shard
        unassigned.discard(seed)
        grown = 1
        affinity: dict[int, int] = {}
        for neighbor in topology.neighbors(seed):
            if neighbor in unassigned:
                affinity[neighbor] = 1
        while grown < target:
            if affinity:
                best = min(affinity, key=lambda n: (-affinity[n], n))
                del affinity[best]
            else:
                # The remainder of the fabric is disconnected from the
                # region (late shards on odd splits): restart from the
                # lowest unassigned router.
                best = min(unassigned)
            assignment[best] = shard
            unassigned.discard(best)
            grown += 1
            for neighbor in topology.neighbors(best):
                if neighbor in unassigned:
                    affinity[neighbor] = affinity.get(neighbor, 0) + 1
    return spec_from_assignment(
        topology, [assignment[node] for node in nodes], "greedy-edge"
    )


@register_partitioner(
    "round-robin", summary="node id modulo shard count (the trivial floor)"
)
def partition_round_robin(topology, num_shards: int) -> PartitionSpec:
    """Deal routers to shards like cards: ``shard = index % num_shards``."""
    assignment = [
        index % num_shards for index, _ in enumerate(topology.nodes)
    ]
    return spec_from_assignment(topology, assignment, "round-robin")
