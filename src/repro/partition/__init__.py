"""Graph partitioning for sharded simulation and hierarchical mapping.

``partition_topology(topology, num_shards, method)`` is the front door;
``method="auto"`` walks the metis -> greedy-edge -> round-robin ladder
(:mod:`repro.partition.registry`).  The result is a frozen, JSON-round-
trippable :class:`~repro.partition.spec.PartitionSpec` consumed by the
``sharded`` engine, the ``hmap`` mapper and ``repro partition``.
"""

from repro.partition.registry import (
    available_partitioners,
    list_partitioners,
    partition_topology,
    partitioner_availability,
    register_partitioner,
    resolve_partitioner,
)
from repro.partition.spec import PartitionSpec, spec_from_assignment

__all__ = [
    "PartitionSpec",
    "available_partitioners",
    "list_partitioners",
    "partition_topology",
    "partitioner_availability",
    "register_partitioner",
    "resolve_partitioner",
    "spec_from_assignment",
]
