"""The frozen, JSON-round-trippable result of partitioning a fabric.

A :class:`PartitionSpec` is the contract between the partitioning layer and
everything that consumes a cut: the sharded engine (one worker process per
shard), the hierarchical mapper (clusters onto shard regions) and the CLI's
cut-quality inspector.  It records the shard assignment of every router,
the cut edges, and enough denominators (node/edge counts) that balance and
edge-cut quality survive a JSON round trip without re-deriving the
topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError


@dataclass(frozen=True)
class PartitionSpec:
    """A complete shard assignment for one fabric.

    Attributes:
        num_nodes: router count of the partitioned topology.
        num_shards: shard count; every shard id in ``range(num_shards)``
            owns at least one router.
        num_edges: undirected fabric link count (the edge-cut denominator).
        method: the partitioner that actually produced the cut (the
            *resolved* name — ``"auto"`` never appears here).
        assignment: ``assignment[node]`` is the shard owning ``node``.
        cut_edges: undirected fabric links ``(u, v)`` with ``u < v`` whose
            endpoints live in different shards, sorted.
    """

    num_nodes: int
    num_shards: int
    num_edges: int
    method: str
    assignment: tuple[int, ...]
    cut_edges: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise PartitionError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if len(self.assignment) != self.num_nodes:
            raise PartitionError(
                f"assignment covers {len(self.assignment)} nodes, "
                f"topology has {self.num_nodes}"
            )
        seen: set[int] = set()
        for node, shard in enumerate(self.assignment):
            if not 0 <= shard < self.num_shards:
                raise PartitionError(
                    f"node {node} assigned to shard {shard}, valid shards "
                    f"are 0..{self.num_shards - 1}"
                )
            seen.add(shard)
        if len(seen) != self.num_shards:
            empty = sorted(set(range(self.num_shards)) - seen)
            raise PartitionError(f"shards {empty} own no routers")
        for u, v in self.cut_edges:
            if not (0 <= u < v < self.num_nodes):
                raise PartitionError(f"malformed cut edge ({u}, {v})")
            if self.assignment[u] == self.assignment[v]:
                raise PartitionError(
                    f"edge ({u}, {v}) is marked cut but both endpoints "
                    f"live in shard {self.assignment[u]}"
                )

    # ------------------------------------------------------------------
    # derived quality figures
    # ------------------------------------------------------------------
    @property
    def shard_sizes(self) -> tuple[int, ...]:
        """Router count per shard, indexed by shard id."""
        sizes = [0] * self.num_shards
        for shard in self.assignment:
            sizes[shard] += 1
        return tuple(sizes)

    def shard_nodes(self, shard: int) -> tuple[int, ...]:
        """The routers owned by ``shard``, ascending."""
        if not 0 <= shard < self.num_shards:
            raise PartitionError(
                f"shard {shard} out of range 0..{self.num_shards - 1}"
            )
        return tuple(
            node for node, s in enumerate(self.assignment) if s == shard
        )

    @property
    def edge_cut(self) -> int:
        """Number of undirected links crossing shard boundaries."""
        return len(self.cut_edges)

    @property
    def cut_fraction(self) -> float:
        """Cut edges as a fraction of all undirected fabric links."""
        return self.edge_cut / self.num_edges if self.num_edges else 0.0

    @property
    def balance(self) -> float:
        """Largest shard over the ideal share (1.0 = perfectly balanced)."""
        ideal = self.num_nodes / self.num_shards
        return max(self.shard_sizes) / ideal

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready payload, including the derived quality stats."""
        return {
            "num_nodes": self.num_nodes,
            "num_shards": self.num_shards,
            "num_edges": self.num_edges,
            "method": self.method,
            "assignment": list(self.assignment),
            "cut_edges": [list(edge) for edge in self.cut_edges],
            "stats": {
                "shard_sizes": list(self.shard_sizes),
                "edge_cut": self.edge_cut,
                "cut_fraction": self.cut_fraction,
                "balance": self.balance,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PartitionSpec":
        """Inverse of :meth:`to_dict`; derived stats are recomputed."""
        known = {
            "num_nodes",
            "num_shards",
            "num_edges",
            "method",
            "assignment",
            "cut_edges",
            "stats",
        }
        unknown = set(payload) - known
        if unknown:
            raise PartitionError(
                f"unknown PartitionSpec fields: {sorted(unknown)}"
            )
        try:
            return cls(
                num_nodes=payload["num_nodes"],
                num_shards=payload["num_shards"],
                num_edges=payload["num_edges"],
                method=payload["method"],
                assignment=tuple(payload["assignment"]),
                cut_edges=tuple(
                    (edge[0], edge[1]) for edge in payload["cut_edges"]
                ),
            )
        except KeyError as exc:
            raise PartitionError(
                f"PartitionSpec payload missing field {exc.args[0]!r}"
            ) from None


def spec_from_assignment(topology, assignment, method: str) -> PartitionSpec:
    """Build a validated spec from a raw node->shard assignment.

    Cut edges and the edge denominator come from the topology's directed
    link set collapsed to undirected pairs, so every partitioner shares one
    definition of cut quality.
    """
    undirected = {
        (min(src, dst), max(src, dst)) for src, dst in topology.link_keys()
    }
    assignment = tuple(assignment)
    cut = tuple(
        sorted(
            (u, v)
            for u, v in undirected
            if assignment[u] != assignment[v]
        )
    )
    return PartitionSpec(
        num_nodes=topology.num_nodes,
        num_shards=max(assignment) + 1,
        num_edges=len(undirected),
        method=method,
        assignment=assignment,
        cut_edges=cut,
    )
