"""repro — reproduction of Murali & De Micheli, *Bandwidth-Constrained
Mapping of Cores onto NoC Architectures* (DATE 2004).

The package implements the NMAP mapping algorithms (single minimum-path and
split-traffic via multi-commodity flow), the PMAP/GMAP/PBB baselines, the
paper's application suite, a wormhole packet-level NoC simulator (the
SystemC/×pipes substitute) and the benchmark harness regenerating every
table and figure of the paper's evaluation.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro.apps import vopd
    from repro.graphs import NoCTopology
    from repro.mapping import nmap_single_path

    app = vopd()
    mesh = NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=1000.0)
    result = nmap_single_path(app, mesh)
    print(result.comm_cost, result.mapping.render())
"""

from repro.errors import (
    BandwidthError,
    DesignError,
    GraphError,
    MappingError,
    ReproError,
    RoutingError,
    SimulationError,
    SolverError,
)

__version__ = "1.0.0"

__all__ = [
    "BandwidthError",
    "DesignError",
    "GraphError",
    "MappingError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "SolverError",
    "__version__",
]
