"""Exception hierarchy for the NMAP reproduction library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class at an API boundary.  Subclasses partition failures by
subsystem (graphs, mapping, routing, LP solving, simulation, design
generation) which keeps error handling in tests and tools precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ApiError(ReproError):
    """A typed API request/response is malformed or names unknown entities."""


class GraphError(ReproError):
    """A core graph or NoC topology graph is malformed or misused."""


class MappingError(ReproError):
    """A core-to-node mapping is invalid, incomplete, or impossible."""


class PartitionError(ReproError):
    """A fabric partition is malformed or a partitioner cannot run.

    Raised by :mod:`repro.partition` for invalid shard counts (non-positive,
    or more shards than routers), malformed :class:`PartitionSpec` payloads,
    unknown partitioner names, and explicitly requested partitioners whose
    optional dependency (metis) is not installed.
    """


class RoutingError(ReproError):
    """A routing request cannot be carried out on the given topology."""


class BandwidthError(RoutingError):
    """Bandwidth constraints (Inequality 3 of the paper) cannot be met."""


class SolverError(ReproError):
    """The LP/ILP backend failed or returned an unusable status."""


class FaultError(ReproError):
    """A fault scenario cannot be carried out on the given fabric.

    Raised when a :class:`repro.faults.FaultSpec` names links or routers the
    topology does not have, when injected faults disconnect a commodity's
    source from its destination (no surviving minimal path), or when
    rerouting around faults re-introduces a channel-dependency cycle that
    the mandatory deadlock re-check refuses to ship.
    """


class BatchError(ReproError):
    """A batch slot failed for infrastructure reasons, not request content.

    Used by :func:`repro.api.run_batch` to label per-slot failures that are
    properties of the execution environment — a worker process that died
    executing the request (after the bounded retries were exhausted) or a
    request exceeding the batch's per-request timeout — as opposed to typed
    library errors the request itself raised.
    """


class ServiceError(ReproError):
    """The mapping/simulation service could not satisfy a client call.

    Raised by :class:`repro.service.client.ServiceClient` for transport
    failures (server unreachable, malformed reply), overload rejections
    (HTTP 429/503) and, from the convenience ``map``/``simulate`` helpers,
    for jobs that completed with a typed failure — in that case the
    worker-side :class:`repro.api.ErrorResponse` payload rides along as
    ``response`` so callers keep the full typed round trip.

    ``retry_after`` carries the server's back-pressure hint in seconds
    (the ``Retry-After`` header on 429/503 rejections) when one was given;
    callers that implement their own retry loops should honor it.
    """

    def __init__(self, message: str, response=None, retry_after=None) -> None:
        super().__init__(message)
        self.response = response
        self.retry_after = retry_after


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open; the call failed fast.

    After ``breaker_threshold`` consecutive transport failures,
    :class:`repro.service.client.ServiceClient` stops hammering a server
    that stays down and fails every call immediately for the cooldown
    window instead of eating a connect timeout per call.  ``retry_after``
    is the remaining cooldown in seconds; the first call after it elapses
    probes the server again (half-open) and closes the breaker on success.
    """


class SimulationError(ReproError):
    """The cycle-level NoC simulator was configured or driven incorrectly."""


class DesignError(ReproError):
    """NoC design generation (the ×pipesCompiler analogue) failed."""
