"""Command-line interface: ``nmap-noc`` (or ``python -m repro.cli``).

Subcommands:

* ``list-apps`` — the registered application core graphs.
* ``map`` — map an application (built-in or JSON file) onto a mesh with a
  chosen algorithm; prints the placement grid, cost and bandwidth figures;
  optional JSON/DOT output.
* ``simulate`` — run the packet-level simulator on a mapped application and
  report latency statistics.
* ``design`` — compile the mapped NoC and emit the SystemC-style netlist.
* ``experiment`` — regenerate a paper table/figure (or ``all``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps import all_apps, get_app
from repro.design import compile_design, emit_netlist
from repro.errors import ReproError
from repro.experiments.runner import EXPERIMENTS, render_all, run_experiment
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.io import load_core_graph, mapping_to_dot
from repro.graphs.topology import NoCTopology
from repro.mapping import (
    annealing_mapping,
    gmap,
    nmap_single_path,
    nmap_with_splitting,
    pbb,
    pmap,
)
from repro.mapping.base import MappingResult
from repro.metrics import min_bandwidth_min_path, min_bandwidth_split
from repro.routing.min_path import min_path_routing
from repro.simnoc import SimConfig, simulate_mapping

_ALGORITHMS = ("nmap", "nmap-tm", "nmap-ta", "pmap", "gmap", "pbb", "annealing")


def _load_app(spec: str) -> CoreGraph:
    """Resolve an app name or a path to a core-graph JSON file."""
    if spec.endswith(".json") or "/" in spec:
        return load_core_graph(Path(spec))
    return get_app(spec)


def _build_mesh(app: CoreGraph, mesh_spec: str | None, link_bw: float | None) -> NoCTopology:
    bandwidth = link_bw if link_bw is not None else app.total_bandwidth()
    if mesh_spec is None:
        return NoCTopology.smallest_mesh_for(app.num_cores, link_bandwidth=bandwidth)
    width_str, _, height_str = mesh_spec.lower().partition("x")
    try:
        return NoCTopology.mesh(int(width_str), int(height_str), link_bandwidth=bandwidth)
    except ValueError:
        raise ReproError(f"mesh must look like '4x4', got {mesh_spec!r}") from None


def _run_algorithm(name: str, app: CoreGraph, mesh: NoCTopology) -> MappingResult:
    if name == "nmap":
        return nmap_single_path(app, mesh)
    if name == "nmap-tm":
        return nmap_with_splitting(app, mesh, quadrant_only=True)
    if name == "nmap-ta":
        return nmap_with_splitting(app, mesh, quadrant_only=False)
    if name == "pmap":
        return pmap(app, mesh)
    if name == "gmap":
        return gmap(app, mesh)
    if name == "pbb":
        return pbb(app, mesh)
    if name == "annealing":
        return annealing_mapping(app, mesh)
    raise ReproError(f"unknown algorithm {name!r}; known: {', '.join(_ALGORITHMS)}")


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------
def _cmd_list_apps(_args: argparse.Namespace) -> int:
    for name, app in sorted(all_apps().items()):
        print(
            f"{name:8s} {app.num_cores:3d} cores {app.num_flows:3d} flows "
            f"{app.total_bandwidth():8.0f} MB/s total"
        )
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    app = _load_app(args.app)
    mesh = _build_mesh(app, args.mesh, args.link_bw)
    result = _run_algorithm(args.algorithm, app, mesh)
    print(f"application : {app.name} ({app.num_cores} cores, {app.num_flows} flows)")
    print(f"mesh        : {mesh.width}x{mesh.height}, link BW {mesh.min_link_bandwidth():.0f} MB/s")
    print(f"algorithm   : {result.algorithm}")
    print(f"comm cost   : {result.comm_cost}")
    print(f"feasible    : {result.feasible}")
    print("placement   :")
    print(result.mapping.render())
    if result.feasible:
        bw_single, _ = min_bandwidth_min_path(result.mapping)
        bw_split, _ = min_bandwidth_split(result.mapping)
        print(f"min link BW : {bw_single:.0f} MB/s single-path, {bw_split:.0f} MB/s split")
    if args.out_json:
        payload = {
            "app": app.name,
            "mesh": [mesh.width, mesh.height],
            "algorithm": result.algorithm,
            "comm_cost": result.comm_cost,
            "feasible": result.feasible,
            "placement": result.mapping.placement,
        }
        Path(args.out_json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out_json}")
    if args.out_dot:
        Path(args.out_dot).write_text(mapping_to_dot(mesh, result.mapping.node_contents))
        print(f"wrote {args.out_dot}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    app = _load_app(args.app)
    mesh = _build_mesh(app, args.mesh, args.link_bw)
    result = _run_algorithm(args.algorithm, app, mesh)
    commodities = build_commodities(app, result.mapping)
    routing = (
        result.routing
        if result.routing is not None and args.algorithm.startswith("nmap-t")
        else min_path_routing(mesh, commodities)
    )
    config = SimConfig(
        measure_cycles=args.cycles,
        mean_burst_packets=args.burst,
        seed=args.seed,
    )
    report = simulate_mapping(mesh, commodities, routing, config)
    stats = report.stats
    print(f"packets measured : {stats.count}")
    print(f"latency mean     : {stats.mean:.1f} cycles (network {stats.mean_network:.1f})")
    print(f"latency p50/p95  : {stats.p50:.0f} / {stats.p95:.0f} cycles")
    print(f"latency max      : {stats.maximum:.0f} cycles")
    hottest = max(report.link_utilization.items(), key=lambda item: item[1])
    print(f"hottest link     : {hottest[0][0]}->{hottest[0][1]} at {hottest[1]*100:.0f}% util")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    app = _load_app(args.app)
    mesh = _build_mesh(app, args.mesh, args.link_bw)
    result = _run_algorithm(args.algorithm, app, mesh)
    commodities = build_commodities(app, result.mapping)
    routing = min_path_routing(mesh, commodities)
    design = compile_design(result.mapping, routing)
    for key, value in design.summary().items():
        print(f"{key:20s} {value}")
    netlist = emit_netlist(design)
    if args.out:
        Path(args.out).write_text(netlist)
        print(f"wrote {args.out}")
    else:
        print()
        print(netlist)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    app = _load_app(args.app)
    mesh = _build_mesh(app, args.mesh, args.link_bw)
    print(
        f"{app.name} on {mesh.width}x{mesh.height} mesh, "
        f"link BW {mesh.min_link_bandwidth():.0f} MB/s"
    )
    print(f"{'algorithm':>10} {'comm cost':>10} {'feasible':>9} {'minBW(1path)':>13} {'minBW(split)':>13}")
    for name in args.algorithms:
        result = _run_algorithm(name, app, mesh)
        if result.feasible:
            single_bw, _ = min_bandwidth_min_path(result.mapping)
            split_bw, _ = min_bandwidth_split(result.mapping)
            print(
                f"{name:>10} {result.comm_cost:>10.0f} {'yes':>9} "
                f"{single_bw:>13.0f} {split_bw:>13.0f}"
            )
        else:
            print(f"{name:>10} {'inf':>10} {'no':>9} {'-':>13} {'-':>13}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "all":
        print(render_all())
    else:
        print(run_experiment(args.name).render())
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmap-noc",
        description="NMAP reproduction: bandwidth-constrained core mapping onto NoCs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list built-in application core graphs")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--app", required=True, help="app name or core-graph JSON path")
        p.add_argument("--algorithm", default="nmap", choices=_ALGORITHMS)
        p.add_argument("--mesh", default=None, help="mesh size like 4x4 (default: smallest fit)")
        p.add_argument("--link-bw", type=float, default=None, help="uniform link BW in MB/s")

    p_map = sub.add_parser("map", help="map an application onto a mesh")
    add_common(p_map)
    p_map.add_argument("--out-json", default=None, help="write mapping JSON here")
    p_map.add_argument("--out-dot", default=None, help="write Graphviz DOT here")

    p_sim = sub.add_parser("simulate", help="simulate a mapped application")
    add_common(p_sim)
    p_sim.add_argument("--cycles", type=int, default=20_000, help="measured cycles")
    p_sim.add_argument("--burst", type=float, default=4.0, help="mean packets per burst")
    p_sim.add_argument("--seed", type=int, default=1)

    p_design = sub.add_parser("design", help="compile the NoC and emit a netlist")
    add_common(p_design)
    p_design.add_argument("--out", default=None, help="write the netlist here")

    p_cmp = sub.add_parser("compare", help="run several algorithms on one app")
    p_cmp.add_argument("--app", required=True, help="app name or core-graph JSON path")
    p_cmp.add_argument("--mesh", default=None, help="mesh size like 4x4")
    p_cmp.add_argument("--link-bw", type=float, default=None, help="uniform link BW in MB/s")
    p_cmp.add_argument(
        "--algorithms",
        nargs="+",
        default=["pmap", "gmap", "pbb", "nmap"],
        choices=_ALGORITHMS,
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list-apps": _cmd_list_apps,
        "map": _cmd_map,
        "simulate": _cmd_simulate,
        "design": _cmd_design,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
