"""Command-line interface: ``nmap-noc`` (or ``python -m repro.cli``).

A thin shell over :mod:`repro.api` — every subcommand builds a typed
request, hands it to the engine and formats the typed response.  The CLI
holds no algorithm dispatch of its own; mappers come from the registry.

Subcommands:

* ``list-apps`` — the registered application core graphs.
* ``list-mappers`` — the registered mapping algorithms and their options.
* ``map`` — map an application (built-in or JSON file) onto a mesh/torus
  with a chosen algorithm; prints the placement grid, cost and bandwidth
  figures; optional JSON/DOT output.
* ``simulate`` — run the packet-level simulator on a mapped application and
  report latency statistics.
* ``partition`` — cut a fabric into shards (for the sharded engine and the
  hmap mapper) and report edge-cut/balance statistics.
* ``design`` — compile the mapped NoC and emit the SystemC-style netlist.
* ``compare`` — run several algorithms on one app; optional JSON output.
* ``experiment`` — regenerate a paper table/figure (or ``all``).
* ``serve`` — run the async mapping/simulation job service (HTTP, with a
  content-addressed result store); drains cleanly on SIGTERM.
* ``submit`` — send a request (flags or JSON payload files) to a running
  service and print the typed response(s).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import fields
from pathlib import Path

from repro.api import (
    BATCH_EXECUTORS,
    ErrorResponse,
    FaultSpec,
    MapRequest,
    SimOptions,
    SimRequest,
    TopologySpec,
    execute_map,
    get_mapper,
    list_mappers,
    mapper_entries,
    parse_option_assignments,
    rebuild_mapping,
    run_batch,
    run_map,
    run_sim,
)
from repro.apps import all_apps
from repro.design import compile_design, emit_netlist
from repro.errors import ApiError, ReproError
from repro.experiments.runner import EXPERIMENTS, render_all, run_experiment
from repro.graphs.io import mapping_to_dot
from repro.simnoc import list_engines, list_traffic_patterns


def _topology_spec(args: argparse.Namespace) -> TopologySpec:
    """The topology from ``--topology`` (or the legacy ``--mesh`` alias)."""
    if args.topology is not None and args.mesh is not None:
        raise ApiError("pass either --topology or --mesh, not both")
    spec = args.topology if args.topology is not None else args.mesh
    if spec is None:
        return TopologySpec(link_bandwidth=args.link_bw)
    return TopologySpec.parse(spec, link_bandwidth=args.link_bw)


def _fault_spec(args: argparse.Namespace) -> FaultSpec | None:
    """The :class:`FaultSpec` the fault flags describe, or None for none."""
    failed_links = tuple(
        FaultSpec.parse_link(text) for text in (getattr(args, "fail_link", None) or [])
    )
    failed_routers = tuple(getattr(args, "fail_router", None) or [])
    degraded = tuple(
        FaultSpec.parse_degraded(text)
        for text in (getattr(args, "degrade_link", None) or [])
    )
    random_failures = getattr(args, "random_link_failures", 0) or 0
    spec = FaultSpec(
        failed_links=failed_links,
        failed_routers=failed_routers,
        degraded_links=degraded,
        random_link_failures=random_failures,
        fault_seed=getattr(args, "fault_seed", 0) or 0,
    )
    return None if spec.is_empty else spec


def _map_request(
    args: argparse.Namespace,
    mapper: str | None = None,
    price_bandwidth: bool = True,
    seed_only_if_seedable: bool = False,
    faults: FaultSpec | None = None,
) -> MapRequest:
    """Build the validated :class:`MapRequest` an argv namespace describes.

    ``seed_only_if_seedable`` silently drops ``--seed`` for deterministic
    algorithms — what ``compare`` wants when seeding a mixed batch (the
    single-mapper subcommands keep the loud rejection).
    """
    name = mapper if mapper is not None else args.algorithm
    entry = get_mapper(name)
    payload = parse_option_assignments(getattr(args, "mapper_opt", None) or [])
    options = entry.options_from_dict(payload) if payload else None
    seed = getattr(args, "seed", None)
    if seed_only_if_seedable and not entry.seedable:
        seed = None
    return MapRequest(
        app=args.app,
        mapper=name,
        topology=_topology_spec(args),
        options=options,
        seed=seed,
        price_bandwidth=price_bandwidth,
        faults=faults,
    )


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------
def _cmd_list_apps(_args: argparse.Namespace) -> int:
    for name, app in sorted(all_apps().items()):
        print(
            f"{name:8s} {app.num_cores:3d} cores {app.num_flows:3d} flows "
            f"{app.total_bandwidth():8.0f} MB/s total"
        )
    return 0


def _cmd_list_mappers(_args: argparse.Namespace) -> int:
    for entry in mapper_entries():
        option_names = ", ".join(f.name for f in fields(entry.options_type)) or "-"
        print(f"{entry.name:10s} {entry.summary}")
        print(f"{'':10s}   options: {option_names}")
    return 0


def _cmd_list_engines(_args: argparse.Namespace) -> int:
    from repro.simnoc.engines import jit
    from repro.simnoc.engines.base import get_engine

    print("simulation engines:")
    for name in list_engines():
        doc = (type(get_engine(name)).__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:8s} available   {summary}")
    backend, reason = jit.resolve_backend()
    active = backend.name if backend is not None else "none"
    print(f"vector-engine kernel backends (active: {active}; {reason}):")
    for row in jit.available_backends():
        status = "available  " if row["available"] else "unavailable"
        print(f"  {row['name']:8s} {status} {row['reason']}")
    from repro.partition import available_partitioners, resolve_partitioner

    resolved, detail = resolve_partitioner("auto")
    print(f"sharded-engine partitioners (auto resolves: {resolved}; {detail}):")
    for row in available_partitioners():
        status = "available  " if row["available"] else "unavailable"
        print(f"  {row['name']:12s} {status} {row['reason']}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.partition import partition_topology

    topology = _build_bare_topology(args.topology)
    spec = partition_topology(topology, args.shards, args.method)
    if args.json:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"topology    : {args.topology}")
    print(f"partitioner : {spec.method}")
    print(f"shards      : {spec.num_shards} (sizes {list(spec.shard_sizes)})")
    print(
        f"edge cut    : {spec.edge_cut} of {spec.num_edges} links "
        f"({spec.cut_fraction * 100:.1f}%)"
    )
    print(f"balance     : {spec.balance:.3f} (max shard / ideal)")
    if args.out_json:
        Path(args.out_json).write_text(
            json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {args.out_json}")
    return 0


def _build_bare_topology(text: str):
    """A concrete :class:`NoCTopology` from a ``mesh:WxH``-style spec.

    ``partition`` has no application in play, so ``auto`` (which sizes the
    grid to an app) is rejected here.
    """
    from repro.graphs.topology import NoCTopology

    spec = TopologySpec.parse(text)
    if spec.kind == "auto":
        raise ApiError(
            "partition needs explicit dimensions, e.g. mesh:16x16"
        )
    if spec.kind == "torus":
        return NoCTopology.torus_grid(spec.width, spec.height)
    return NoCTopology.mesh(spec.width, spec.height)


def _cmd_map(args: argparse.Namespace) -> int:
    response = run_map(_map_request(args, faults=_fault_spec(args)))
    spec = response.topology
    print(f"application : {response.app_name}")
    print(
        f"topology    : {spec.describe()}, link BW {spec.link_bandwidth:.0f} MB/s"
    )
    print(f"algorithm   : {response.algorithm}")
    print(f"comm cost   : {response.comm_cost}")
    print(f"feasible    : {response.feasible}")
    print("placement   :")
    mapping = rebuild_mapping(response)
    print(mapping.render())
    if response.min_bw_single is not None:
        print(
            f"min link BW : {response.min_bw_single:.0f} MB/s single-path, "
            f"{response.min_bw_split:.0f} MB/s split"
        )
    if args.out_json:
        Path(args.out_json).write_text(
            json.dumps(response.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.out_json}")
    if args.out_dot:
        Path(args.out_dot).write_text(
            mapping_to_dot(mapping.topology, mapping.node_contents)
        )
        print(f"wrote {args.out_dot}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    request = SimRequest(
        map_request=_map_request(args, price_bandwidth=False),
        measure_cycles=args.cycles,
        mean_burst_packets=args.burst,
        sim_seed=args.sim_seed,
        faults=_fault_spec(args),
        options=SimOptions(
            engine=args.engine,
            traffic=args.traffic,
            injection_rate=args.injection_rate,
            num_vcs=args.vcs,
            vc_buffer_depth=args.vc_depth,
            shards=args.shards,
            partitioner=args.partitioner,
        ),
    )
    response = run_sim(request)
    if request.faults is not None:
        print(f"faults injected  : {request.faults.describe()}")
    print(
        f"engine / traffic : {request.options.engine} / "
        f"{request.options.traffic}"
        + (f" @ {request.options.injection_rate} flits/cycle/node"
           if request.options.injection_rate is not None else "")
        + (f", {request.options.num_vcs} VCs" if request.options.num_vcs > 1 else "")
    )
    print(f"packets measured : {response.packets_measured}")
    print(
        f"latency mean     : {response.latency_mean:.1f} cycles "
        f"(network {response.latency_mean_network:.1f})"
    )
    print(
        f"latency p50/p95  : {response.latency_p50:.0f} / "
        f"{response.latency_p95:.0f} cycles"
    )
    print(f"latency max      : {response.latency_max:.0f} cycles")
    link, utilization = response.hottest_link()
    print(f"hottest link     : {link} at {utilization*100:.0f}% util")
    flow, stats = response.worst_flow()
    print(
        f"worst flow       : #{flow} mean {stats['mean']:.1f} cycles "
        f"(p95 {stats['p95']:.0f}, jitter {stats['jitter']:.1f}, "
        f"{stats['count']} packets)"
    )
    if args.out_json:
        Path(args.out_json).write_text(
            json.dumps(response.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.out_json}")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.faults import fault_reroute
    from repro.graphs.commodities import build_commodities
    from repro.routing.min_path import min_path_routing

    topology, result = execute_map(
        _map_request(args, price_bandwidth=False, faults=_fault_spec(args))
    )
    commodities = build_commodities(result.mapping.core_graph, result.mapping)
    if topology.is_degraded:
        # Deadlock-verified rerouting: a netlist compiled around faults must
        # not bake in a cyclic channel-dependency graph.
        routing = fault_reroute(topology, commodities)
    else:
        routing = min_path_routing(topology, commodities)
    design = compile_design(result.mapping, routing)
    for key, value in design.summary().items():
        print(f"{key:20s} {value}")
    netlist = emit_netlist(design)
    if args.out:
        Path(args.out).write_text(netlist)
        print(f"wrote {args.out}")
    else:
        print()
        print(netlist)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    faults = _fault_spec(args)
    requests = [
        _map_request(args, mapper=name, price_bandwidth=True,
                     seed_only_if_seedable=True, faults=faults)
        for name in args.algorithms
    ]
    responses = run_batch(requests, workers=args.workers, executor=args.executor)
    completed = [r for r in responses if not isinstance(r, ErrorResponse)]
    if completed:
        first = completed[0].topology
        print(
            f"{completed[0].app_name} on {first.describe()}, "
            f"link BW {first.link_bandwidth:.0f} MB/s"
        )
    print(
        f"{'algorithm':>10} {'comm cost':>10} {'feasible':>9} "
        f"{'minBW(1path)':>13} {'minBW(split)':>13}"
    )
    for name, response in zip(args.algorithms, responses):
        if isinstance(response, ErrorResponse):
            print(f"{name:>10} failed: {response.describe()}")
        elif response.feasible:
            print(
                f"{name:>10} {response.comm_cost:>10.0f} {'yes':>9} "
                f"{response.min_bw_single:>13.0f} {response.min_bw_split:>13.0f}"
            )
        else:
            print(f"{name:>10} {'inf':>10} {'no':>9} {'-':>13} {'-':>13}")
    if args.out_json:
        payload = [response.to_dict() for response in responses]
        Path(args.out_json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out_json}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "all":
        print(render_all())
    else:
        print(run_experiment(args.name).render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service pulls in asyncio/socket machinery no
    # other subcommand needs.
    from repro.service import NocService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        store_root=args.store,
        queue_limit=args.queue_limit,
        workers=args.workers,
        executor=args.executor,
        timeout=args.timeout,
        store_max_bytes=args.store_max_bytes,
        result_ttl=args.result_ttl,
        journal_path=args.journal,
        recover=args.recover,
        client_quota=args.client_quota,
    )
    service = NocService(config)
    service.serve_forever(install_signals=True, announce=print)
    print("repro.service drained and stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.api.specs import ErrorResponse as _ErrorResponse
    from repro.service import ServiceClient, parse_request

    requests = []
    for path in args.json or []:
        if path == "-":
            payload = json.load(sys.stdin)
        else:
            payload = json.loads(Path(path).read_text())
        requests.append(parse_request(payload))
    if not requests:
        if args.app is None:
            raise ApiError("submit needs either --json FILE(s) or --app ...")
        requests.append(_map_request(args, faults=_fault_spec(args)))

    client = ServiceClient(
        args.url,
        timeout=args.timeout,
        retries=args.retries,
        client_id=args.client_id,
        priority=args.priority,
    )
    ticket = client.submit(requests if len(requests) > 1 else requests[0])
    print(f"job {ticket.id} submitted ({ticket.slots} slot(s))", file=sys.stderr)
    if args.no_wait:
        print(ticket.id)
        return 0

    failed = False
    if args.stream:
        for event in client.stream(ticket.id):
            print(json.dumps(event.response.to_dict(), sort_keys=True))
            failed = failed or isinstance(event.response, _ErrorResponse)
    else:
        result = client.wait(ticket.id, timeout=args.timeout)
        responses = result if isinstance(result, list) else [result]
        for response in responses:
            if len(responses) > 1:
                print(json.dumps(response.to_dict(), sort_keys=True))
            else:
                print(json.dumps(response.to_dict(), indent=2))
            failed = failed or isinstance(response, _ErrorResponse)
    return 1 if failed else 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nmap-noc",
        description="NMAP reproduction: bandwidth-constrained core mapping onto NoCs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list built-in application core graphs")
    sub.add_parser("list-mappers", help="list registered mapping algorithms")
    sub.add_parser(
        "list-engines",
        help="list simulation engines and JIT kernel backend availability",
    )

    mappers = list_mappers()

    def _add_fault_flags(p: argparse.ArgumentParser) -> None:
        group = p.add_argument_group(
            "fault injection",
            "inject failures into the fabric ('map', 'design' and 'compare' "
            "map around them; 'simulate' keeps the mapping and reroutes "
            "traffic around them)",
        )
        group.add_argument(
            "--fail-link",
            action="append",
            metavar="A-B",
            help="fail the undirected link between nodes A and B (repeatable)",
        )
        group.add_argument(
            "--fail-router",
            action="append",
            type=int,
            metavar="NODE",
            help="fail a router: all its links go down (repeatable)",
        )
        group.add_argument(
            "--degrade-link",
            action="append",
            metavar="A-B:F",
            help="scale a link's bandwidth by factor F in (0,1) (repeatable)",
        )
        group.add_argument(
            "--random-link-failures",
            type=int,
            default=0,
            metavar="N",
            help="additionally fail N random links (seeded, deterministic)",
        )
        group.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for --random-link-failures draws",
        )

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--app", required=True, help="app name or core-graph JSON path")
        p.add_argument("--algorithm", default="nmap", choices=mappers)
        p.add_argument(
            "--topology",
            default=None,
            help="'auto', 'mesh:4x4' or 'torus:8x8' (default: smallest mesh fit)",
        )
        p.add_argument(
            "--mesh",
            default=None,
            help="legacy alias: mesh size like 4x4 (use --topology)",
        )
        p.add_argument("--link-bw", type=float, default=None, help="uniform link BW in MB/s")
        p.add_argument(
            "--seed",
            type=int,
            default=None,
            help="seed for stochastic mappers (rejected for deterministic ones)",
        )
        p.add_argument(
            "--mapper-opt",
            action="append",
            metavar="KEY=VALUE",
            help="algorithm option (repeatable), e.g. --mapper-opt cooling=0.9",
        )
        _add_fault_flags(p)

    p_map = sub.add_parser("map", help="map an application onto a mesh/torus")
    add_common(p_map)
    p_map.add_argument("--out-json", default=None, help="write the MapResponse JSON here")
    p_map.add_argument("--out-dot", default=None, help="write Graphviz DOT here")

    p_sim = sub.add_parser("simulate", help="simulate a mapped application")
    add_common(p_sim)
    p_sim.add_argument("--cycles", type=int, default=20_000, help="measured cycles")
    p_sim.add_argument("--burst", type=float, default=4.0, help="mean packets per burst")
    p_sim.add_argument("--sim-seed", type=int, default=1, help="traffic RNG seed")
    p_sim.add_argument(
        "--engine",
        default="cycle",
        choices=list_engines(),
        help=(
            "simulation backend: cycle (bit-exact reference), event "
            "(skips idle time), vector (structure-of-arrays; runs on a "
            "compiled numba/C kernel when one is available — see "
            "'list-engines', disable with REPRO_NO_JIT=1) or auto "
            "(event at low load, vector at high load; the crossover "
            "drops when a compiled kernel is available)"
        ),
    )
    p_sim.add_argument(
        "--traffic",
        default="trace",
        choices=list_traffic_patterns(),
        help="trace replays the core graph; the rest are synthetic patterns",
    )
    p_sim.add_argument(
        "--injection-rate",
        type=float,
        default=None,
        help="offered load per node in flits/cycle (synthetic traffic only)",
    )
    p_sim.add_argument(
        "--vcs",
        type=int,
        default=1,
        help="virtual channels per link (>1 selects the VC wormhole router)",
    )
    p_sim.add_argument(
        "--vc-depth",
        type=int,
        default=None,
        help="per-VC buffer depth in flits (default: the global buffer depth)",
    )
    p_sim.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker-process count for --engine sharded (default: 2)",
    )
    p_sim.add_argument(
        "--partitioner",
        default=None,
        help="fabric partitioner for --engine sharded: auto (default; "
        "metis -> greedy-edge -> round-robin ladder) or a name from "
        "'list-engines'",
    )
    p_sim.add_argument(
        "--out-json", default=None, help="write the SimResponse JSON here"
    )

    p_part = sub.add_parser(
        "partition",
        help="partition a fabric into shards and report cut statistics",
    )
    p_part.add_argument(
        "--topology",
        required=True,
        help="explicit fabric spec like 'mesh:16x16' or 'torus:8x8'",
    )
    p_part.add_argument(
        "--shards", type=int, required=True, help="number of shards"
    )
    p_part.add_argument(
        "--method",
        default="auto",
        help="partitioner name or 'auto' (metis -> greedy-edge -> "
        "round-robin ladder)",
    )
    p_part.add_argument(
        "--json",
        action="store_true",
        help="print the PartitionSpec JSON instead of the summary",
    )
    p_part.add_argument(
        "--out-json", default=None, help="write the PartitionSpec JSON here"
    )

    p_design = sub.add_parser("design", help="compile the NoC and emit a netlist")
    add_common(p_design)
    p_design.add_argument("--out", default=None, help="write the netlist here")

    p_cmp = sub.add_parser("compare", help="run several algorithms on one app")
    p_cmp.add_argument("--app", required=True, help="app name or core-graph JSON path")
    p_cmp.add_argument(
        "--topology",
        default=None,
        help="'auto', 'mesh:4x4' or 'torus:8x8' (default: smallest mesh fit)",
    )
    p_cmp.add_argument("--mesh", default=None, help="legacy alias: mesh size like 4x4")
    p_cmp.add_argument("--link-bw", type=float, default=None, help="uniform link BW in MB/s")
    p_cmp.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for stochastic mappers in the comparison",
    )
    p_cmp.add_argument(
        "--algorithms",
        nargs="+",
        default=["pmap", "gmap", "pbb", "nmap"],
        choices=mappers,
    )
    p_cmp.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the comparison batch",
    )
    p_cmp.add_argument(
        "--executor",
        default="thread",
        choices=BATCH_EXECUTORS,
        help="batch executor: serial, thread (default) or process (true multi-core)",
    )
    _add_fault_flags(p_cmp)
    p_cmp.add_argument(
        "--out-json",
        default=None,
        help="write the list of MapResponse payloads here",
    )

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"])

    p_serve = sub.add_parser(
        "serve", help="run the mapping/simulation job service over HTTP"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8421, help="bind port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result-store directory (default: in-memory only)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="admission queue bound; submissions beyond it get HTTP 429",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="dispatch worker threads"
    )
    p_serve.add_argument(
        "--executor",
        default="process",
        choices=BATCH_EXECUTORS,
        help="run_batch executor for job slots (default: process)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request wall-clock budget in seconds (default: none)",
    )
    p_serve.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="write-ahead job journal path (default: <store>/journal.ndjson "
        "when --store is set; '' disables journaling)",
    )
    p_serve.add_argument(
        "--recover",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="replay unfinished journaled jobs at startup so a kill -9 "
        "mid-batch loses nothing (--no-recover starts fresh)",
    )
    p_serve.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="result-store disk cap; least-recently-read entries are "
        "evicted once the store exceeds it (default: unbounded)",
    )
    p_serve.add_argument(
        "--result-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict store entries idle longer than this (default: never)",
    )
    p_serve.add_argument(
        "--client-quota",
        type=int,
        default=None,
        metavar="N",
        help="max queued/running jobs per client identity (X-Repro-Client "
        "header); submissions beyond it get HTTP 429 (default: none)",
    )

    p_submit = sub.add_parser(
        "submit", help="submit a request to a running service"
    )
    p_submit.add_argument(
        "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8421"
    )
    p_submit.add_argument(
        "--json",
        action="append",
        metavar="FILE",
        help="request payload JSON file ('-' = stdin; repeat for a batch job)",
    )
    p_submit.add_argument(
        "--app", default=None, help="app name or core-graph JSON path"
    )
    p_submit.add_argument("--algorithm", default="nmap", choices=mappers)
    p_submit.add_argument(
        "--topology",
        default=None,
        help="'auto', 'mesh:4x4' or 'torus:8x8' (default: smallest mesh fit)",
    )
    p_submit.add_argument("--mesh", default=None, help=argparse.SUPPRESS)
    p_submit.add_argument(
        "--link-bw", type=float, default=None, help="uniform link BW in MB/s"
    )
    p_submit.add_argument(
        "--seed", type=int, default=None, help="seed for stochastic mappers"
    )
    p_submit.add_argument(
        "--mapper-opt",
        action="append",
        metavar="KEY=VALUE",
        help="algorithm option (repeatable)",
    )
    p_submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without waiting for the result",
    )
    p_submit.add_argument(
        "--stream",
        action="store_true",
        help="stream per-slot results as NDJSON while the job runs",
    )
    p_submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="client-side wait budget in seconds",
    )
    p_submit.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts for transport failures and 429/503 rejections, "
        "with exponential backoff honoring the server's Retry-After "
        "(safe: submissions dedup on the canonical request key)",
    )
    p_submit.add_argument(
        "--client-id",
        default=None,
        help="identity sent as X-Repro-Client (server quotas account "
        "against it)",
    )
    p_submit.add_argument(
        "--priority",
        default=None,
        choices=("low", "normal", "high"),
        help="X-Repro-Priority class; low is shed first under overload",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list-apps": _cmd_list_apps,
        "list-mappers": _cmd_list_mappers,
        "list-engines": _cmd_list_engines,
        "map": _cmd_map,
        "simulate": _cmd_simulate,
        "partition": _cmd_partition,
        "design": _cmd_design,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
