"""Global switch between the array-backed fast paths and scalar references.

Every performance-critical kernel in this repository exists twice: the
original scalar implementation (kept verbatim as the *reference oracle*) and
a numpy-backed fast path that produces identical results.  The property
tests under ``tests/properties`` assert the equivalence; the benches under
``benchmarks/run_bench.py`` time one against the other.

The switch is process-global because the fast paths are spread across
layers (metrics, mapping, routing, simnoc) and threading a flag through
every call site would pollute the paper-facing APIs.  Set the environment
variable ``REPRO_SCALAR_REFERENCE=1`` to start with fast paths disabled, or
use :func:`scalar_reference` / :func:`set_fast_paths` at runtime.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_ENABLED: bool = os.environ.get("REPRO_SCALAR_REFERENCE", "").strip().lower() not in {
    "1",
    "true",
    "yes",
    "on",
}


def fast_paths_enabled() -> bool:
    """True when kernels should take the numpy-backed fast path."""
    return _ENABLED


def set_fast_paths(enabled: bool) -> bool:
    """Set the global switch; returns the previous value."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def scalar_reference() -> Iterator[None]:
    """Run the enclosed block on the scalar reference implementations."""
    previous = set_fast_paths(False)
    try:
        yield
    finally:
        set_fast_paths(previous)


@contextmanager
def fast_paths(enabled: bool = True) -> Iterator[None]:
    """Run the enclosed block with fast paths forced on (or off)."""
    previous = set_fast_paths(enabled)
    try:
        yield
    finally:
        set_fast_paths(previous)
