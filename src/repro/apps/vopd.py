"""Video Object Plane Decoder core graph (Figure 1 / Figure 2a; 16 cores).

The edge bandwidths are the figure's labels, in MB/s:
``{70, 362, 362, 362, 357, 353, 300, 313, 313, 313, 500, 94, 157, 27, 49}``
plus six low-rate 16 MB/s control/context edges.  The wiring follows the
MPEG-4 VOP decoding pipeline the figure depicts: variable-length decoding ->
run-length decoding -> inverse scan -> AC/DC prediction (with the stripe
memory feedback) -> inverse quantization -> IDCT -> up-sampling (fed by the
reference memory) -> VOP reconstruction -> padding -> VOP memory, with the
arithmetic decoder / context-calculation / demux front end on the 16 MB/s
edges.
"""

from __future__ import annotations

from repro.graphs.core_graph import CoreGraph

#: (src, dst, MB/s) — every edge of Figure 2(a).
VOPD_FLOWS: tuple[tuple[str, str, float], ...] = (
    ("demux", "arith_dec", 16.0),
    ("demux", "vld", 16.0),
    ("arith_dec", "ctx_calc", 16.0),
    ("ctx_calc", "arith_dec", 16.0),
    ("arith_dec", "mem", 16.0),
    ("mem", "vld", 16.0),
    ("vld", "run_le_dec", 70.0),
    ("run_le_dec", "inv_scan", 362.0),
    ("inv_scan", "acdc_pred", 362.0),
    ("acdc_pred", "iquant", 362.0),
    ("acdc_pred", "stripe_mem", 49.0),
    ("stripe_mem", "acdc_pred", 27.0),
    ("iquant", "idct", 357.0),
    ("idct", "up_samp", 353.0),
    ("up_samp", "vop_rec", 300.0),
    ("ref_mem", "up_samp", 500.0),
    ("vop_rec", "pad", 313.0),
    ("pad", "vop_mem", 313.0),
    ("vop_mem", "ref_mem", 313.0),
    ("vop_mem", "pad", 94.0),
    ("vop_rec", "mem", 157.0),
)


def vopd() -> CoreGraph:
    """The 16-core VOPD core graph with Figure 1's bandwidths."""
    return CoreGraph.from_flows(VOPD_FLOWS, name="vopd")
