"""Application core graphs used in the paper's evaluation (§7).

Six video-processing applications (Figure 3/4, Table 1) plus the DSP filter
design (Figure 5, Table 3):

* :func:`vopd` — Video Object Plane Decoder, 16 cores (Figure 1/2a; edge
  bandwidths encoded verbatim from the figure).
* :func:`mpeg4` — MPEG-4 decoder, 14 cores (Van der Tol / Jaspers
  structure; reconstruction documented in DESIGN.md).
* :func:`pip` — Picture-In-Picture, 8 cores.
* :func:`mwa` — Multi-Window Application, 14 cores.
* :func:`mwag` — Multi-Window Application with Graphics, 16 cores.
* :func:`dsd` — Dual Screen Display, 16 cores.
* :func:`dsp_filter` — the 6-core DSP filter of Figure 5(a).

:data:`VIDEO_APPS` lists the six video graphs in the paper's order;
:func:`get_app` resolves any application by name.
"""

from repro.apps.registry import VIDEO_APPS, all_apps, get_app
from repro.apps.dsd import dsd
from repro.apps.dsp import dsp_filter
from repro.apps.mpeg4 import mpeg4
from repro.apps.mwa import mwa
from repro.apps.mwag import mwag
from repro.apps.pip_app import pip
from repro.apps.vopd import vopd

__all__ = [
    "VIDEO_APPS",
    "all_apps",
    "dsd",
    "dsp_filter",
    "get_app",
    "mpeg4",
    "mwa",
    "mwag",
    "pip",
    "vopd",
]
