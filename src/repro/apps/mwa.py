"""Multi-Window Application core graph (14 cores).

Jaspers et al. chip-set workload: two independently scaled video windows
plus a background layer are composited by a blender, with a zoom path and a
display buffer in front of the display controller.  Bandwidths (MB/s):
128 MB/s raw inputs, 96 MB/s after horizontal scaling, 64 MB/s after
vertical scaling, 196-256 MB/s on the composited display path.
Reconstruction documented in DESIGN.md.
"""

from __future__ import annotations

from repro.graphs.core_graph import CoreGraph

#: (src, dst, MB/s) for the 14-core Multi-Window Application.
MWA_FLOWS: tuple[tuple[str, str, float], ...] = (
    ("inp1", "mem1", 128.0),
    ("mem1", "hs1", 96.0),
    ("hs1", "vs1", 96.0),
    ("vs1", "blend", 64.0),
    ("inp2", "mem2", 128.0),
    ("mem2", "hs2", 96.0),
    ("hs2", "vs2", 96.0),
    ("vs2", "blend", 64.0),
    ("bg_mem", "blend", 196.0),
    ("mem1", "blend", 32.0),
    ("blend", "zoom", 64.0),
    ("zoom", "disp_mem", 64.0),
    ("blend", "disp_mem", 256.0),
    ("disp_mem", "disp_ctrl", 256.0),
    ("disp_ctrl", "disp", 256.0),
)


def mwa() -> CoreGraph:
    """The 14-core Multi-Window Application core graph."""
    return CoreGraph.from_flows(MWA_FLOWS, name="mwa")
