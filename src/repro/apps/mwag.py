"""Multi-Window Application with Graphics core graph (16 cores).

The MWA workload (see :mod:`repro.apps.mwa`) extended with a graphics
renderer whose frame buffer joins the blender — the chip-set variant
Jaspers et al. call "multi-window with graphics".  The graphics plane runs
at 192 MB/s (RGB at display rate).  Reconstruction documented in DESIGN.md.
"""

from __future__ import annotations

from repro.apps.mwa import MWA_FLOWS
from repro.graphs.core_graph import CoreGraph

#: Additional flows for the graphics plane.
MWAG_EXTRA_FLOWS: tuple[tuple[str, str, float], ...] = (
    ("gfx_render", "gfx_mem", 192.0),
    ("gfx_mem", "blend", 192.0),
)

MWAG_FLOWS: tuple[tuple[str, str, float], ...] = MWA_FLOWS + MWAG_EXTRA_FLOWS


def mwag() -> CoreGraph:
    """The 16-core Multi-Window Application with Graphics core graph."""
    return CoreGraph.from_flows(MWAG_FLOWS, name="mwag")
