"""Name -> core-graph registry for the CLI, experiments and tests."""

from __future__ import annotations

from typing import Callable

from repro.apps.dsd import dsd
from repro.apps.dsp import dsp_filter
from repro.apps.mpeg4 import mpeg4
from repro.apps.mwa import mwa
from repro.apps.mwag import mwag
from repro.apps.pip_app import pip
from repro.apps.vopd import vopd
from repro.errors import GraphError
from repro.graphs.core_graph import CoreGraph

#: The six video applications in the paper's presentation order (Fig 3/4).
VIDEO_APPS: tuple[str, ...] = ("mpeg4", "vopd", "pip", "mwa", "mwag", "dsd")

_FACTORIES: dict[str, Callable[[], CoreGraph]] = {
    "mpeg4": mpeg4,
    "vopd": vopd,
    "pip": pip,
    "mwa": mwa,
    "mwag": mwag,
    "dsd": dsd,
    "dsp": dsp_filter,
}


def get_app(name: str) -> CoreGraph:
    """Build the named application core graph.

    Raises:
        GraphError: for unknown names; the message lists valid ones.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise GraphError(
            f"unknown application {name!r}; known: {', '.join(sorted(_FACTORIES))}"
        ) from None
    return factory()


def all_apps() -> dict[str, CoreGraph]:
    """Every registered application, keyed by name."""
    return {name: factory() for name, factory in _FACTORIES.items()}
