"""DSP filter design core graph (Figure 5a; 6 cores).

The SystemC case study of §7.2: ARM controller, FFT, frequency-domain
Filter, IFFT, shared Memory and Display.  The figure labels six edges with
200 MB/s and two with 600 MB/s; the 600 MB/s pair is the FFT-domain data
exchange between the Filter and the IFFT (forward/backward), which is the
traffic the paper splits to bring the per-link bandwidth need from
600 MB/s down (Table 3).

The 2x3 mesh of Figure 5(b) is exposed as :func:`dsp_mesh`.
"""

from __future__ import annotations

from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology

#: (src, dst, MB/s) for the 6-core DSP filter (Figure 5a).
DSP_FLOWS: tuple[tuple[str, str, float], ...] = (
    ("arm", "fft", 200.0),
    ("fft", "filter", 200.0),
    ("filter", "ifft", 600.0),
    ("ifft", "filter", 600.0),
    ("ifft", "memory", 200.0),
    ("memory", "display", 200.0),
    ("arm", "memory", 200.0),
    ("display", "arm", 200.0),
)


def dsp_filter() -> CoreGraph:
    """The 6-core DSP filter core graph."""
    return CoreGraph.from_flows(DSP_FLOWS, name="dsp")


def dsp_mesh(link_bandwidth: float = 1600.0) -> NoCTopology:
    """The 2x3 mesh of Figure 5(b) (six routers, one per core)."""
    return NoCTopology.mesh(3, 2, link_bandwidth=link_bandwidth)
