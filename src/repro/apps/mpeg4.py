"""MPEG-4 decoder core graph (14 cores).

Reconstruction of the Van der Tol / Jaspers MPEG-4 decoder used in the
paper's evaluation: a hub-and-spoke structure around the shared SDRAM (the
distinctive feature of this workload — one memory core concentrates close
to half the traffic) with the decoding pipeline (VLD -> IDCT -> motion
compensation -> up-sampling -> display) and the RISC/media-CPU control
cluster on the side.  Bandwidths are in MB/s and follow the magnitudes
reported in the MPEG-4 mapping literature (the 910 MB/s SDRAM reference
fetch dominating).  DESIGN.md records this as a documented reconstruction.
"""

from __future__ import annotations

from repro.graphs.core_graph import CoreGraph

#: (src, dst, MB/s) for the 14-core MPEG-4 decoder.
MPEG4_FLOWS: tuple[tuple[str, str, float], ...] = (
    ("demux", "vld", 60.0),
    ("demux", "au_dec", 1.0),
    ("vld", "idct", 250.0),
    ("vld", "sdram", 32.0),
    ("idct", "mc", 400.0),
    ("sdram", "mc", 910.0),
    ("mc", "sdram", 600.0),
    ("mc", "upsamp", 500.0),
    ("sdram", "upsamp", 173.0),
    ("upsamp", "disp", 670.0),
    ("risc", "sdram", 500.0),
    ("sdram", "risc", 250.0),
    ("risc", "sram1", 300.0),
    ("sram1", "risc", 300.0),
    ("risc", "sram2", 200.0),
    ("sram2", "risc", 200.0),
    ("med_cpu", "sdram", 60.0),
    ("rast", "sdram", 640.0),
    ("au_dec", "adsp", 1.0),
    ("adsp", "sdram", 1.0),
)


def mpeg4() -> CoreGraph:
    """The 14-core MPEG-4 decoder core graph."""
    return CoreGraph.from_flows(MPEG4_FLOWS, name="mpeg4")
