"""Picture-In-Picture application core graph (8 cores).

One of the four high-end video applications from the Jaspers et al.
chip-set (Table 1 of their TCE'99 paper): a main video window and an
inset window share the display pipeline.  The inset branch is scaled down
(horizontal + vertical scalers) and merged by the juggler (compositor)
before display.  Bandwidths (MB/s) follow standard-definition video rates:
128 MB/s full streams, 64 MB/s scaled streams.  Reconstruction documented
in DESIGN.md.
"""

from __future__ import annotations

from repro.graphs.core_graph import CoreGraph

#: (src, dst, MB/s) for the 8-core PIP application.
PIP_FLOWS: tuple[tuple[str, str, float], ...] = (
    ("inp", "inp_mem", 128.0),
    ("inp_mem", "hs", 64.0),
    ("hs", "vs", 64.0),
    ("vs", "pip_mem", 64.0),
    ("pip_mem", "juggler", 64.0),
    ("inp_mem", "juggler", 128.0),
    ("juggler", "disp_ctrl", 128.0),
    ("disp_ctrl", "disp", 128.0),
)


def pip() -> CoreGraph:
    """The 8-core Picture-In-Picture core graph."""
    return CoreGraph.from_flows(PIP_FLOWS, name="pip")
