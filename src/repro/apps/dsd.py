"""Dual Screen Display core graph (16 cores).

Jaspers et al. chip-set workload: one input stream is split toward two
complete display pipelines (scalers, mixers, display buffers and
controllers), with an on-screen-display plane overlaid on both screens.
Bandwidths (MB/s): 256 MB/s shared input, 128 MB/s per-screen streams,
96 MB/s after scaling, 160 MB/s composited outputs, 32 MB/s OSD planes.
Reconstruction documented in DESIGN.md.
"""

from __future__ import annotations

from repro.graphs.core_graph import CoreGraph

#: (src, dst, MB/s) for the 16-core Dual Screen Display.
DSD_FLOWS: tuple[tuple[str, str, float], ...] = (
    ("inp", "split", 256.0),
    ("split", "mem_a", 128.0),
    ("mem_a", "hs_a", 128.0),
    ("hs_a", "vs_a", 96.0),
    ("vs_a", "mix_a", 96.0),
    ("mix_a", "dmem_a", 160.0),
    ("dmem_a", "disp_a", 160.0),
    ("split", "mem_b", 128.0),
    ("mem_b", "hs_b", 128.0),
    ("hs_b", "vs_b", 96.0),
    ("vs_b", "mix_b", 96.0),
    ("mix_b", "dmem_b", 160.0),
    ("dmem_b", "disp_b", 160.0),
    ("osd", "osd_mem", 32.0),
    ("osd_mem", "mix_a", 32.0),
    ("osd_mem", "mix_b", 32.0),
)


def dsd() -> CoreGraph:
    """The 16-core Dual Screen Display core graph."""
    return CoreGraph.from_flows(DSD_FLOWS, name="dsd")
