"""Compile a mapping + routing into a concrete NoC design.

This is the ×pipesCompiler step (§7.2): "the appropriate switches, links and
network interfaces are chosen and added to the cores".  Switches are
instantiated only where needed — at occupied nodes and on nodes that carry
transit traffic — with port counts matching their used connectivity, so the
design reflects what the mapping actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.design.components import (
    LinkInstance,
    NIInstance,
    SwitchInstance,
    XpipesLibrary,
)
from repro.errors import DesignError
from repro.mapping.base import Mapping
from repro.routing.base import RoutingResult
from repro.routing.tables import table_overhead_bits


@dataclass
class NocDesign:
    """A generated NoC design: component instances plus summary figures."""

    name: str
    switches: list[SwitchInstance] = field(default_factory=list)
    interfaces: list[NIInstance] = field(default_factory=list)
    links: list[LinkInstance] = field(default_factory=list)
    library: XpipesLibrary = field(default_factory=XpipesLibrary)
    routing_table_bits: int = 0
    max_link_load_mbps: float = 0.0

    @property
    def total_area_mm2(self) -> float:
        return sum(s.area_mm2 for s in self.switches) + sum(
            n.area_mm2 for n in self.interfaces
        )

    @property
    def num_switches(self) -> int:
        return len(self.switches)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def summary(self) -> dict[str, float]:
        """Table 3-style design figures."""
        return {
            "switches": float(self.num_switches),
            "nis": float(len(self.interfaces)),
            "links": float(self.num_links),
            "total_area_mm2": round(self.total_area_mm2, 3),
            "switch_delay_cycles": float(self.library.switch_delay_cycles),
            "packet_bytes": float(self.library.packet_bytes),
            "routing_table_bits": float(self.routing_table_bits),
            "max_link_load_mbps": round(self.max_link_load_mbps, 1),
        }


def compile_design(
    mapping: Mapping,
    routing: RoutingResult,
    library: XpipesLibrary | None = None,
    name: str | None = None,
) -> NocDesign:
    """Instantiate switches, NIs and links for a mapped application.

    Args:
        mapping: complete core-to-node mapping.
        routing: the routing whose links determine which physical links and
            switch ports get instantiated.
        library: component library (defaults to the paper's Table 3 values).
        name: design name; defaults to ``<app>-noc``.

    Raises:
        DesignError: if the mapping is incomplete.
    """
    if not mapping.is_complete:
        raise DesignError(
            f"mapping covers {mapping.num_mapped}/{mapping.core_graph.num_cores} cores"
        )
    library = library or XpipesLibrary()
    topology = mapping.topology
    loads = routing.link_loads()
    used_links = {link for link, load in loads.items() if load > 0}

    # A switch is needed where a core sits or where traffic transits.
    switch_nodes = set(mapping.used_nodes())
    for src, dst in used_links:
        switch_nodes.add(src)
        switch_nodes.add(dst)

    design = NocDesign(
        name=name or f"{mapping.core_graph.name}-noc",
        library=library,
        routing_table_bits=table_overhead_bits(routing),
        max_link_load_mbps=routing.max_link_load(),
    )
    for node in sorted(switch_nodes):
        used_ports = {
            neighbor
            for neighbor in topology.neighbors(node)
            if (node, neighbor) in used_links or (neighbor, node) in used_links
        }
        num_ports = len(used_ports) + (1 if mapping.core_at(node) else 0)
        num_ports = max(2, num_ports)
        design.switches.append(
            SwitchInstance(
                name=f"sw{node}",
                node=node,
                num_ports=num_ports,
                area_mm2=library.switch_area_mm2(num_ports),
                delay_cycles=library.switch_delay_cycles,
            )
        )

    for core, node in sorted(mapping.placement.items()):
        design.interfaces.append(
            NIInstance(
                name=f"ni_{core}",
                core=core,
                node=node,
                area_mm2=library.ni_area_mm2,
            )
        )

    for src, dst in sorted(used_links):
        design.links.append(
            LinkInstance(
                name=f"link_{src}_{dst}",
                src_node=src,
                dst_node=dst,
                bandwidth_mbps=topology.link_bandwidth(src, dst),
                length_mm=library.link_mm,
            )
        )
    return design
