"""Component library: parameterizable switches, NIs and links.

The numbers default to Table 3 of the paper (×pipes macros in a 0.13um
flow): a 0.6 mm^2 network interface, a 1.08 mm^2 switch with a 7-cycle
traversal delay and 64-byte packets.  Everything is parameterizable the way
×pipes' SystemC macros are — a different library is one constructor call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DesignError


@dataclass(frozen=True)
class XpipesLibrary:
    """Technology/library parameters used when instantiating components.

    Attributes:
        ni_area_mm2: area of one network interface (Table 3: 0.6).
        switch_base_area_mm2: area of one 5x5 mesh switch (Table 3: 1.08).
        switch_delay_cycles: switch traversal delay (Table 3: 7).
        packet_bytes: packet size the NIs produce (Table 3: 64).
        flit_bits: physical flit width.
        buffer_depth_flits: input buffer depth per switch port.
        link_mm: nominal link length in mm (mesh pitch).
    """

    ni_area_mm2: float = 0.6
    switch_base_area_mm2: float = 1.08
    switch_delay_cycles: int = 7
    packet_bytes: int = 64
    flit_bits: int = 32
    buffer_depth_flits: int = 8
    link_mm: float = 2.0

    def __post_init__(self) -> None:
        if self.ni_area_mm2 <= 0 or self.switch_base_area_mm2 <= 0:
            raise DesignError("component areas must be positive")
        if self.switch_delay_cycles < 1:
            raise DesignError("switch delay must be at least one cycle")
        if self.packet_bytes < 1 or self.flit_bits < 1:
            raise DesignError("packet and flit sizes must be positive")

    def switch_area_mm2(self, num_ports: int) -> float:
        """Area of a switch scaled by port count (crossbar grows ~n^2/25)."""
        if num_ports < 2:
            raise DesignError(f"a switch needs >= 2 ports, got {num_ports}")
        return self.switch_base_area_mm2 * (num_ports * num_ports) / 25.0


@dataclass(frozen=True)
class SwitchInstance:
    """One instantiated switch at a mesh node."""

    name: str
    node: int
    num_ports: int
    area_mm2: float
    delay_cycles: int


@dataclass(frozen=True)
class NIInstance:
    """One network interface joining a core to its switch."""

    name: str
    core: str
    node: int
    area_mm2: float


@dataclass(frozen=True)
class LinkInstance:
    """One directed physical link between two switches."""

    name: str
    src_node: int
    dst_node: int
    bandwidth_mbps: float
    length_mm: float
