"""Emit a SystemC-style structural netlist for a generated design.

The output mimics what ×pipesCompiler generates: one instantiation per
switch, NI and link, with parameter bindings from the component library.
It is text a human can diff and a downstream flow could template from; the
CLI's ``design`` subcommand writes it next to the mapping report.
"""

from __future__ import annotations

from repro.design.compiler import NocDesign


def emit_netlist(design: NocDesign) -> str:
    """Render the design as a SystemC-like structural netlist."""
    lib = design.library
    lines: list[str] = []
    lines.append(f"// Netlist for {design.name}")
    lines.append(
        f"// {design.num_switches} switches, {len(design.interfaces)} NIs, "
        f"{design.num_links} links; total area {design.total_area_mm2:.2f} mm2"
    )
    lines.append("")
    lines.append("#include \"xpipes.h\"")
    lines.append("")
    lines.append(f"SC_MODULE({_identifier(design.name)}) {{")

    lines.append("  // switches")
    for switch in design.switches:
        lines.append(
            f"  xpipes_switch<{switch.num_ports}, {lib.flit_bits}, "
            f"{lib.buffer_depth_flits}> {switch.name};  "
            f"// node {switch.node}, {switch.area_mm2:.3f} mm2, "
            f"{switch.delay_cycles} cy"
        )

    lines.append("")
    lines.append("  // network interfaces")
    for ni in design.interfaces:
        lines.append(
            f"  xpipes_ni<{lib.packet_bytes}, {lib.flit_bits}> {ni.name};  "
            f"// core {ni.core} @ node {ni.node}, {ni.area_mm2:.3f} mm2"
        )

    lines.append("")
    lines.append("  // links")
    for link in design.links:
        lines.append(
            f"  xpipes_link<{lib.flit_bits}> {link.name};  "
            f"// {link.src_node} -> {link.dst_node}, "
            f"{link.bandwidth_mbps:.0f} MB/s, {link.length_mm:.1f} mm"
        )

    lines.append("")
    lines.append(f"  SC_CTOR({_identifier(design.name)}) {{")
    for ni in design.interfaces:
        lines.append(f"    {ni.name}.initiator(sw{ni.node}.local_port);")
    for link in design.links:
        lines.append(
            f"    {link.name}.bind(sw{link.src_node}.out_port, "
            f"sw{link.dst_node}.in_port);"
        )
    lines.append("  }")
    lines.append("};")
    return "\n".join(lines) + "\n"


def _identifier(name: str) -> str:
    """Make a C++-safe identifier out of a design name."""
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "noc_" + cleaned
    return cleaned
