"""NoC design generation — the ×pipes / ×pipesCompiler substitute.

The paper instantiates the mapped DSP system with parameterizable SystemC
macros (switches, links, network interfaces) via ×pipesCompiler and reports
the resulting design figures in Table 3.  This package mirrors that step:
:func:`compile_design` turns a mapping + routing into a
:class:`NocDesign` — concrete switch/NI/link instances with area and delay
bookkeeping — and :func:`emit_netlist` renders the SystemC-style structural
netlist a downstream flow would consume.
"""

from repro.design.compiler import NocDesign, compile_design
from repro.design.components import (
    LinkInstance,
    NIInstance,
    SwitchInstance,
    XpipesLibrary,
)
from repro.design.netlist import emit_netlist

__all__ = [
    "LinkInstance",
    "NIInstance",
    "NocDesign",
    "SwitchInstance",
    "XpipesLibrary",
    "compile_design",
    "emit_netlist",
]
