"""Packets and flits — the units the wormhole network moves."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError


class FlitKind(enum.Enum):
    """Wormhole flit roles: the head allocates, the tail releases."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"


@dataclass(slots=True)
class Packet:
    """One network packet, created by a traffic source at a network interface.

    Attributes:
        packet_id: globally unique id.
        commodity_index: the commodity (core-graph edge) this packet belongs
            to.
        src_node: injecting mesh node.
        dst_node: ejecting mesh node.
        path: full source route (node list, ``path[0] == src_node``).
        num_flits: flits including head and tail.
        created_cycle: cycle the packet was handed to the NI.
        injected_cycle: cycle the head flit entered the network (set by NI).
        delivered_cycle: cycle the tail flit left the network (set by sink).
        measured: whether this packet counts toward latency statistics.
        vc: virtual channel the packet rides end to end (assigned by the
            injecting NI; always 0 on the plain wormhole router).
    """

    packet_id: int
    commodity_index: int
    src_node: int
    dst_node: int
    path: list[int]
    num_flits: int
    created_cycle: int
    injected_cycle: int | None = None
    delivered_cycle: int | None = None
    measured: bool = True
    vc: int = 0

    @property
    def latency(self) -> int:
        """Creation-to-delivery latency in cycles (queueing included)."""
        if self.delivered_cycle is None:
            raise SimulationError(f"packet {self.packet_id} not delivered yet")
        return self.delivered_cycle - self.created_cycle

    @property
    def network_latency(self) -> int:
        """Injection-to-delivery latency (excludes NI queueing)."""
        if self.delivered_cycle is None or self.injected_cycle is None:
            raise SimulationError(f"packet {self.packet_id} still in flight")
        return self.delivered_cycle - self.injected_cycle


@dataclass(frozen=True, slots=True)
class Flit:
    """One flit of a packet.  ``hop`` indexes the packet's source route."""

    packet: Packet = field(repr=False)
    kind: FlitKind
    sequence: int

    @property
    def is_head(self) -> bool:
        return self.kind is FlitKind.HEAD

    @property
    def is_tail(self) -> bool:
        return self.kind is FlitKind.TAIL

    def __repr__(self) -> str:
        return (
            f"Flit(p{self.packet.packet_id}#{self.sequence} {self.kind.value} "
            f"{self.packet.src_node}->{self.packet.dst_node})"
        )


def make_flits(packet: Packet) -> list[Flit]:
    """Materialize a packet's flit train (head, bodies, tail).

    A one-flit packet gets a single flit that is both head and tail — we
    mark it HEAD and the router treats a head that is also the last
    sequence as tail via :func:`is_last_flit`.
    """
    flits: list[Flit] = []
    for sequence in range(packet.num_flits):
        if sequence == 0:
            kind = FlitKind.HEAD
        elif sequence == packet.num_flits - 1:
            kind = FlitKind.TAIL
        else:
            kind = FlitKind.BODY
        flits.append(Flit(packet=packet, kind=kind, sequence=sequence))
    return flits


def is_last_flit(flit: Flit) -> bool:
    """True when this flit ends its packet (tail, or single-flit head)."""
    return flit.sequence == flit.packet.num_flits - 1
