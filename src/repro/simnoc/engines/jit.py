"""The JIT ladder: pick the fastest available kernel backend.

The vector engine's per-cycle sweep has three executable forms, tried in
order (``resolve_backend``):

1. **numba** — :mod:`repro.simnoc.engines.kernels` compiled with
   ``@njit(cache=True)`` (install via ``pip install repro[jit]``);
2. **c** — the same algorithm transliterated to C99 and compiled once
   with the system ``cc`` (:mod:`repro.simnoc.engines.ckern`), cached as a
   shared object under ``~/.cache/repro-jit``;
3. *(fallback, not a backend)* — the interpreted structure-of-arrays
   loops in :mod:`repro.simnoc.engines.vector`, always available.

Environment switches (read on every resolution, so tests can flip them):

* ``REPRO_NO_JIT=1`` disables every compiled backend — the vector engine
  runs its interpreted loops (the A/B and fallback-rot guard; CI runs a
  whole job this way).
* ``REPRO_JIT=numba|c|py|off`` pins one rung.  ``py`` runs the *kernel
  twin* — the numba source executed as plain Python — which is slower
  than the interpreted loops and exists so the kernel algorithm itself is
  property-testable on machines without numba or a C compiler.

All three backends run the same :class:`~repro.simnoc.engines.flat_kernel.
KernelProgram` arrays and are bit-identical to the cycle engine (reports
and flit traces); ``tests/properties/test_engine_equivalence.py`` pins
each rung.

:func:`warmup` compiles whatever the resolved backend needs ahead of
time, so first-request latency in the job service and benchmark medians
never include compilation; :func:`compile_events` counts actual
compilations (cache misses) for the warm-up hygiene test.
"""

from __future__ import annotations

import os

import numpy as np

from repro.simnoc.engines import kernels
from repro.simnoc.engines.flat_kernel import (
    ARG_FIELDS,
    KIND_IN,
    KIND_LANE,
    KIND_NODE,
    KIND_NODEP1,
    KIND_OUT,
    KIND_OUTLANE,
    KIND_PARAMS,
    KIND_PKT,
    KIND_PKTP1,
    KIND_QB,
    KIND_RESULT,
    FLOAT_FIELDS,
)

__all__ = [
    "BackendUnavailable",
    "available_backends",
    "compile_events",
    "resolve_backend",
    "warmup",
]


class BackendUnavailable(RuntimeError):
    """Raised by a backend that cannot run here; resolution steps down."""


#: numba compilations observed by this module (see :func:`compile_events`).
_numba_compiles = 0


def compile_events() -> int:
    """Total kernel compilations this process has performed (all rungs).

    Cache hits — numba's on-disk cache, the C tier's cached ``.so`` — do
    not count.  Two consecutive :func:`warmup` calls must therefore leave
    this number unchanged, which the warm-up hygiene test asserts.
    """
    from repro.simnoc.engines import ckern

    return _numba_compiles + ckern.compile_events


# ----------------------------------------------------------------------
# dummy program: the cheapest arrays that exercise a kernel's signature
# ----------------------------------------------------------------------
_DUMMY_LEN = {
    KIND_IN: 1,
    KIND_OUT: 1,
    KIND_OUTLANE: 1,
    KIND_NODEP1: 2,
    KIND_NODE: 1,
    KIND_QB: 2,
    KIND_LANE: 1,
    KIND_PKT: 0,
    KIND_PKTP1: 1,
    KIND_PARAMS: kernels.NUM_PARAMS,
    KIND_RESULT: kernels.NUM_RESULTS,
}


def _dummy_args() -> tuple:
    """Zero-cycle arrays: compiles the full signature, simulates nothing."""
    args = []
    for name, kind in ARG_FIELDS:
        length = _DUMMY_LEN.get(kind, 0)
        dtype = np.float64 if name in FLOAT_FIELDS else np.int64
        args.append(np.zeros(length, dtype=dtype))
    return tuple(args)


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class PyBackend:
    """The kernel twin run as plain Python — correctness rung, not speed."""

    name = "py"
    description = "kernel twin interpreted by CPython (testing only)"

    def warmup(self) -> None:
        pass

    def run(self, programs) -> None:
        for program in programs:
            fn = kernels.advance_vc if program.vc_mode else kernels.advance_plain
            fn(*program.args())


class NumbaBackend:
    """The kernel twin compiled with ``@njit(cache=True)``."""

    name = "numba"

    def __init__(self) -> None:
        global _numba_compiles
        import numba

        self.description = f"numba {numba.__version__} @njit kernels"
        njit = numba.njit(cache=True, fastmath=False)
        self._plain = njit(kernels.advance_plain)
        self._vc = njit(kernels.advance_vc)
        # Force compilation now (zero-cycle call).  A new signature means
        # numba did work this process (JIT compile or cache deserialize);
        # repeat warmups in the same process add nothing.
        for fn in (self._plain, self._vc):
            before = len(fn.signatures)
            fn(*_dummy_args())
            if len(fn.signatures) > before:
                _numba_compiles += 1

    def warmup(self) -> None:
        pass  # compilation happened in __init__

    def run(self, programs) -> None:
        for program in programs:
            fn = self._vc if program.vc_mode else self._plain
            fn(*program.args())


class CBackend:
    """The C transliteration, one ``advance_batch`` call per replica group."""

    name = "c"

    def __init__(self) -> None:
        from repro.simnoc.engines import ckern

        try:
            self._lib = ckern.load_library()
        except ckern.BackendUnavailable as exc:
            raise BackendUnavailable(str(exc)) from exc
        self.description = "C kernels compiled with the system cc (cached .so)"

    @staticmethod
    def _pointer_vectors(columns):
        # One uintp array of R per-replica pointers per kernel argument;
        # the kernels mutate the program arrays in place, so batching
        # copies nothing in either direction.
        return [
            np.fromiter((a.ctypes.data for a in col), dtype=np.uintp, count=len(col))
            for col in columns
        ]

    def warmup(self) -> None:
        dummies = _dummy_args()  # kept alive across the call
        self._lib.advance_batch(
            1, 0, *self._pointer_vectors([(a,) for a in dummies])
        )

    def run(self, programs) -> None:
        # A mixed batch splits by router model; each group advances in a
        # single compiled call over per-replica pointer vectors.
        for vc_mode in (False, True):
            group = [p for p in programs if p.vc_mode == vc_mode]
            if not group:
                continue
            columns = zip(*(p.args() for p in group))
            self._lib.advance_batch(
                len(group), int(vc_mode), *self._pointer_vectors(columns)
            )


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
_cache: dict[str, tuple[object | None, str]] = {}


def _mode() -> str:
    if os.environ.get("REPRO_NO_JIT", "").strip().lower() in ("1", "true", "yes", "on"):
        return "off"
    forced = os.environ.get("REPRO_JIT", "").strip().lower()
    return forced or "auto"


def _try_numba() -> tuple[object | None, str]:
    try:
        import numba  # noqa: F401
    except ImportError:
        return None, "numba not installed (pip install repro[jit])"
    try:
        return NumbaBackend(), "numba available"
    except Exception as exc:  # numba present but broken: step down, not crash
        return None, f"numba failed to compile kernels: {exc}"


def _try_c() -> tuple[object | None, str]:
    try:
        backend = CBackend()
    except BackendUnavailable as exc:
        return None, str(exc)
    try:
        backend.warmup()
    except Exception as exc:  # loaded but does not run: step down
        return None, f"C kernel library failed self-test: {exc}"
    return backend, "C kernels available"


def resolve_backend() -> tuple[object | None, str]:
    """``(backend, reason)`` for the current environment.

    ``backend`` is ``None`` when every compiled rung is unavailable or
    JIT is disabled — callers then use the interpreted vector loops.  The
    outcome is cached per mode, so the (one-time) compile cost is paid at
    most once per process per mode.
    """
    mode = _mode()
    cached = _cache.get(mode)
    if cached is not None:
        return cached
    if mode == "off":
        outcome = (None, "JIT disabled (REPRO_NO_JIT)")
    elif mode == "py":
        outcome = (PyBackend(), "kernel twin forced (REPRO_JIT=py)")
    elif mode == "numba":
        outcome = _try_numba()
    elif mode == "c":
        outcome = _try_c()
    elif mode == "auto":
        backend, numba_reason = _try_numba()
        if backend is not None:
            outcome = (backend, numba_reason)
        else:
            backend, c_reason = _try_c()
            if backend is not None:
                outcome = (backend, c_reason)
            else:
                outcome = (None, f"{numba_reason}; {c_reason}")
    else:
        outcome = (None, f"unknown REPRO_JIT mode {mode!r}")
    _cache[mode] = outcome
    return outcome


def warmup() -> tuple[str, str]:
    """Compile the resolved backend ahead of time.

    Returns ``(backend_name, reason)`` — ``("none", why)`` when no
    compiled backend is available.  Invoked by ``benchmarks/run_bench.py``
    and by the job service at worker startup so neither benchmark medians
    nor first-request latency ever include compilation.
    """
    backend, reason = resolve_backend()
    if backend is None:
        return "none", reason
    backend.warmup()
    return backend.name, reason


def available_backends() -> list[dict[str, str]]:
    """Introspection rows for every rung (CLI ``list-engines``)."""
    rows = []
    for name, probe in (("numba", _try_numba), ("c", _try_c)):
        if _mode() == "off":
            rows.append(
                {"name": name, "available": False, "reason": "REPRO_NO_JIT is set"}
            )
            continue
        backend, reason = probe()
        rows.append({"name": name, "available": backend is not None, "reason": reason})
    return rows
