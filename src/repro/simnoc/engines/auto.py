"""The ``auto`` engine: pick event-driven or vector time by offered load.

The two fast backends win in opposite regimes.  The event engine skips
cycles in which nothing can happen — enormous at low load, worthless near
saturation where every cycle has work (and the heap becomes pure overhead).
The vector engine attacks the per-cycle constant factor instead — a big win
exactly when most cycles are busy, but it still touches every busy cycle,
so at very low load the event engine's time-skipping dominates.

``auto`` applies the obvious policy at ``run`` time, when the built network
is in hand: sum the sources' configured offered load, normalize per node,
and pick the vector engine once the network is expected to be busy most
cycles.  The threshold is a wall-clock heuristic only — both candidate
engines are bit-identical to the cycle reference (property-tested), so the
choice can never change a single statistic, only how fast it arrives.
The vector engine flattens just the built-in router models; for custom
registered models ``auto`` always falls back to the event engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.simnoc.engines.base import get_engine, register_engine
from repro.simnoc.engines.vector import SUPPORTED_ROUTER_MODELS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.network import Network
    from repro.simnoc.simulator import Simulator

#: Mean offered load (flits/cycle per node) at or above which the network
#: is expected to be busy most cycles, making the vector engine the faster
#: backend.  Below it, idle-cycle skipping wins.  Calibrated against
#: ``benchmarks/run_bench.py`` (event ~8x at 5% load, vector >=3x at 30%);
#: the crossover sits near one flit in flight per node every ~15 cycles.
AUTO_LOAD_THRESHOLD = 0.06

#: The crossover when a compiled kernel backend is resolved
#: (:func:`repro.simnoc.engines.jit.resolve_backend`).  The kernel tier
#: cuts the vector engine's per-busy-cycle cost by another order of
#: magnitude, so it overtakes event-driven time-skipping at much lighter
#: load; only nearly-idle networks still favor the event engine.
AUTO_LOAD_THRESHOLD_JIT = 0.02


def offered_load_per_node(network: "Network") -> float:
    """Mean configured offered load across the network, flits/cycle/node.

    Sums each source's long-run ``offered_flits_per_cycle`` (every shipped
    source exposes it; unknown custom sources count as zero rather than
    guessing) and divides by the node count.
    """
    total = 0.0
    for source in network.sources:
        total += getattr(source, "offered_flits_per_cycle", 0.0)
    return total / max(1, len(network.routers))


def resolve_auto_engine(network: "Network") -> str:
    """The engine name ``auto`` delegates to for this built network."""
    if network.config.effective_router_model not in SUPPORTED_ROUTER_MODELS:
        return "event"
    from repro.simnoc.engines.jit import resolve_backend

    backend, _ = resolve_backend()
    threshold = AUTO_LOAD_THRESHOLD if backend is None else AUTO_LOAD_THRESHOLD_JIT
    if offered_load_per_node(network) >= threshold:
        return "vector"
    return "event"


@register_engine("auto")
class AutoEngine:
    """Load-adaptive dispatcher over the event and vector engines."""

    name = "auto"

    def run(self, sim: "Simulator") -> None:
        get_engine(resolve_auto_engine(sim.network)).run(sim)
