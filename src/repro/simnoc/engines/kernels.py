"""The vector engine's per-cycle sweep as typed array kernels.

These functions are the *compilation source* of the JIT tier: written in
the restricted Python subset numba's ``@njit`` accepts (flat numpy arrays,
integer/float scalars, no Python objects), they advance one flattened
replica from cycle 0 to ``total_cycles``.  The same algorithm is mirrored
statement for statement by the C kernel in :mod:`repro.simnoc.engines.ckern`;
``tests/properties`` pins every tier against the cycle engine.

The loop structure replays the interpreted SoA loops in
:mod:`repro.simnoc.engines.vector` — which themselves replay the cycle
engine's sweep discipline — with two data-structure substitutions that are
bit-exact by construction:

* input FIFOs become fixed-stride ring buffers (``qb_*`` arrays, stride
  ``qstride`` > every port capacity), replacing deques + head mirrors;
* the sorted active-router sweep with mid-cycle ``insort`` becomes one
  ascending scan over ``in_sweep`` flags: the interpreted engine only ever
  inserts downstream nodes *ahead* of the scan position (``dn > node``), so
  an ascending full scan visits exactly the same nodes in the same order
  (a flag raised behind the scan position is simply not revisited, which is
  precisely what the interpreted engine's ``dn > node`` guard encodes);
* the per-node ``requested`` set becomes a stamp array (``req_stamp``
  holds the running per-(cycle, node) stamp; in VC mode ``req_vcs`` adds a
  lane bitmask, which caps the kernel tier at 63 virtual channels).

Traffic injection is *precomputed*: every shipped source is open-loop (its
packet schedule depends only on the cycle and its own RNG, never on network
state), so the builder in :mod:`repro.simnoc.engines.flat_kernel` drains
the sources up front, exactly replaying the engines' event-heap order, and
hands the kernel per-node flit streams (``ni_*``) plus per-packet resolved
routes (``route_*``).  Observable effects stream out through log arrays
(trace events, delivery order, per-packet injected/delivered cycles) that
the builder writes back onto the model objects afterwards.

Scalar parameter block (``params``, int64):

== ===============================
0  total_cycles
1  router delay
2  L (lanes per port; 1 when plain)
3  qstride (ring stride, > max capacity)
4  size (node id space, max id + 1)
5  num_in (input ports)
6  num_out (output ports)
7  P (precomputed packets)
8  trace capacity (0 = tracing off)
9  deadlock window
10 num_lanes (num_in * L)
== ===============================

Result block (``result``, int64): 0 status (1 = deadlock), 1 last
progress cycle, 2 buffered flits, 3 last refill cycle, 4 trace events
written, 5 trace truncated flag, 6 deliveries logged.
"""

from __future__ import annotations

import numpy as np

#: ``result[0]`` values.
STATUS_OK = 0
STATUS_DEADLOCK = 1

#: Entries in the scalar parameter / result blocks (kept in sync with the
#: C kernel's ``RK_*`` constants).
NUM_PARAMS = 12
NUM_RESULTS = 8

_INF = 1 << 62


def advance_plain(
    out_rate,
    out_cap,
    out_tokens,
    credits,
    in_cap,
    in_feeder,
    dest_in,
    dest_node,
    out_tokey,
    owner,
    owner_pkt,
    rr_in,
    vc_rr,
    port_owned,
    ins_off,
    ins_val,
    outs_off,
    outs_val,
    local_in,
    node_buf,
    node_owned,
    active,
    in_sweep,
    qb_enter,
    qb_slot,
    qb_seq,
    qb_pos,
    q_head,
    q_len,
    pkt_create,
    pkt_last,
    pkt_vcl,
    route_off,
    route_val,
    ni_off,
    ni_ptr,
    ni_slot,
    ni_seq,
    pkt_injected,
    pkt_delivered,
    dlv_node,
    dlv_slot,
    ni_injected,
    ni_ejected,
    carried,
    tr_node,
    tr_tokey,
    tr_slot,
    tr_seq,
    tr_cycle,
    req_stamp,
    req_vcs,
    params,
    result,
):
    """Plain-wormhole advance (``L == 1`` layout); see the module docstring."""
    total_cycles = params[0]
    delay = params[1]
    qstride = params[3]
    size = params[4]
    num_out = params[6]
    trace_cap = params[8]
    deadlock_window = params[9]

    buffered_total = 0
    last_progress = 0
    last_refill = -1
    tr_count = 0
    tr_trunc = 0
    dlv_count = 0
    stamp = 0
    active_count = 0
    for node in range(size):
        if active[node] != 0:
            active_count += 1

    cycle = 0
    while cycle < total_cycles:
        if active_count == 0:
            # Fully idle routers: the only thing that can start activity is
            # the next precomputed packet creation (== the sources' event
            # heap top in the interpreted engines).
            next_inj = _INF
            for node in range(size):
                ptr = ni_ptr[node]
                if ptr < ni_off[node + 1]:
                    created = pkt_create[ni_slot[ptr]]
                    if created < next_inj:
                        next_inj = created
            if next_inj >= total_cycles:
                break
            if next_inj > cycle:
                cycle = next_inj

        moved = 0
        # --- NI injection: ascending node order, <= 1 flit/node/cycle ----
        for node in range(size):
            ptr = ni_ptr[node]
            if ptr < ni_off[node + 1]:
                slot = ni_slot[ptr]
                if pkt_create[slot] <= cycle:
                    li = local_in[node]
                    if q_len[li] < in_cap[li]:
                        seq = ni_seq[ptr]
                        ni_ptr[node] = ptr + 1
                        if seq == 0 and pkt_injected[slot] < 0:
                            pkt_injected[slot] = cycle
                        tail = li * qstride + (q_head[li] + q_len[li]) % qstride
                        qb_enter[tail] = cycle
                        qb_slot[tail] = slot
                        qb_seq[tail] = seq
                        qb_pos[tail] = 0
                        q_len[li] += 1
                        node_buf[node] += 1
                        buffered_total += 1
                        ni_injected[node] += 1
                        moved += 1
                        if active[node] == 0:
                            active[node] = 1
                            active_count += 1

        if active_count > 0:
            # Token refill catch-up: min(t + rate, cap) once per pending
            # cycle, stopping early once every bucket sits at its cap (a
            # fixpoint of the update) — identical to the interpreted replay.
            pending = cycle - last_refill
            last_refill = cycle
            while pending > 0:
                all_sat = True
                for p in range(num_out):
                    t = out_tokens[p] + out_rate[p]
                    if t > out_cap[p]:
                        t = out_cap[p]
                    out_tokens[p] = t
                    if t != out_cap[p]:
                        all_sat = False
                pending -= 1
                if pending > 0 and all_sat:
                    break

            limit = cycle - delay
            for node in range(size):
                in_sweep[node] = active[node]
            for node in range(size):
                if in_sweep[node] == 0:
                    continue
                i0 = ins_off[node]
                nin = ins_off[node + 1] - i0
                stamp += 1
                have_req = False
                for k in range(i0, i0 + nin):
                    i = ins_val[k]
                    if q_len[i] > 0:
                        h = i * qstride + q_head[i]
                        if qb_enter[h] <= limit and qb_seq[h] == 0:
                            out = route_val[route_off[qb_slot[h]] + qb_pos[h]]
                            req_stamp[out] = stamp
                            have_req = True
                if not have_req and node_owned[node] == 0:
                    continue

                for kp in range(outs_off[node], outs_off[node + 1]):
                    p = outs_val[kp]
                    ow = owner[p]
                    if ow < 0:
                        if req_stamp[p] != stamp:
                            continue
                        start = rr_in[p]
                        for offset in range(nin):
                            j = start + offset
                            if j >= nin:
                                j -= nin
                            i = ins_val[i0 + j]
                            if q_len[i] > 0:
                                h = i * qstride + q_head[i]
                                if (
                                    qb_enter[h] <= limit
                                    and qb_seq[h] == 0
                                    and route_val[route_off[qb_slot[h]] + qb_pos[h]]
                                    == p
                                ):
                                    rr_in[p] = j + 1 if j + 1 < nin else 0
                                    owner[p] = i
                                    owner_pkt[p] = qb_slot[h]
                                    node_owned[node] += 1
                                    ow = i
                                    break
                        if ow < 0:
                            continue

                    my_pkt = owner_pkt[p]
                    if credits[p] < 1.0 or q_len[ow] == 0:
                        continue
                    h = ow * qstride + q_head[ow]
                    if qb_enter[h] > limit or qb_slot[h] != my_pkt:
                        continue
                    tk = out_tokens[p]
                    if tk < 1.0:
                        continue
                    advanced = 0
                    my_last = pkt_last[my_pkt]
                    fdr = in_feeder[ow]
                    di = dest_in[p]
                    while True:
                        if tk < 1.0 or credits[p] < 1.0 or q_len[ow] == 0:
                            break
                        h = ow * qstride + q_head[ow]
                        if qb_enter[h] > limit or qb_slot[h] != my_pkt:
                            break
                        seq = qb_seq[h]
                        pos = qb_pos[h]
                        q_head[ow] = (q_head[ow] + 1) % qstride
                        q_len[ow] -= 1
                        node_buf[node] -= 1
                        buffered_total -= 1
                        if fdr >= 0:
                            credits[fdr] += 1.0
                        tk -= 1.0
                        credits[p] -= 1.0
                        carried[p] += 1
                        advanced += 1
                        if trace_cap > 0:
                            if tr_count < trace_cap:
                                tr_node[tr_count] = node
                                tr_tokey[tr_count] = out_tokey[p]
                                tr_slot[tr_count] = my_pkt
                                tr_seq[tr_count] = seq
                                tr_cycle[tr_count] = cycle
                                tr_count += 1
                            else:
                                tr_trunc = 1
                        if di < 0:
                            ni_ejected[node] += 1
                            if seq == my_last:
                                pkt_delivered[my_pkt] = cycle
                                dlv_node[dlv_count] = node
                                dlv_slot[dlv_count] = my_pkt
                                dlv_count += 1
                                owner[p] = -1
                                owner_pkt[p] = -1
                                node_owned[node] -= 1
                                break
                        else:
                            dn = dest_node[p]
                            tail = (
                                di * qstride + (q_head[di] + q_len[di]) % qstride
                            )
                            qb_enter[tail] = cycle
                            qb_slot[tail] = my_pkt
                            qb_seq[tail] = seq
                            qb_pos[tail] = pos + 1
                            q_len[di] += 1
                            node_buf[dn] += 1
                            buffered_total += 1
                            if active[dn] == 0:
                                active[dn] = 1
                                active_count += 1
                            in_sweep[dn] = 1
                            if seq == my_last:
                                owner[p] = -1
                                owner_pkt[p] = -1
                                node_owned[node] -= 1
                                break
                    if advanced > 0:
                        out_tokens[p] = tk
                        moved += advanced
                        if q_len[ow] > 0:
                            h = ow * qstride + q_head[ow]
                            if qb_enter[h] <= limit and qb_seq[h] == 0:
                                out = route_val[
                                    route_off[qb_slot[h]] + qb_pos[h]
                                ]
                                req_stamp[out] = stamp

            for node in range(size):
                if in_sweep[node] != 0:
                    if (
                        node_buf[node] == 0
                        and node_owned[node] == 0
                        and active[node] != 0
                    ):
                        active[node] = 0
                        active_count -= 1
                    in_sweep[node] = 0

        if moved > 0:
            last_progress = cycle
        elif cycle - last_progress > deadlock_window and buffered_total > 0:
            result[0] = STATUS_DEADLOCK
            result[1] = last_progress
            result[2] = buffered_total
            result[3] = last_refill
            result[4] = tr_count
            result[5] = tr_trunc
            result[6] = dlv_count
            return
        cycle += 1

    result[0] = STATUS_OK
    result[1] = last_progress
    result[2] = buffered_total
    result[3] = last_refill
    result[4] = tr_count
    result[5] = tr_trunc
    result[6] = dlv_count


def advance_vc(
    out_rate,
    out_cap,
    out_tokens,
    credits,
    in_cap,
    in_feeder,
    dest_in,
    dest_node,
    out_tokey,
    owner,
    owner_pkt,
    rr_in,
    vc_rr,
    port_owned,
    ins_off,
    ins_val,
    outs_off,
    outs_val,
    local_in,
    node_buf,
    node_owned,
    active,
    in_sweep,
    qb_enter,
    qb_slot,
    qb_seq,
    qb_pos,
    q_head,
    q_len,
    pkt_create,
    pkt_last,
    pkt_vcl,
    route_off,
    route_val,
    ni_off,
    ni_ptr,
    ni_slot,
    ni_seq,
    pkt_injected,
    pkt_delivered,
    dlv_node,
    dlv_slot,
    ni_injected,
    ni_ejected,
    carried,
    tr_node,
    tr_tokey,
    tr_slot,
    tr_seq,
    tr_cycle,
    req_stamp,
    req_vcs,
    params,
    result,
):
    """VC-wormhole advance (``L`` lanes per port); see the module docstring."""
    total_cycles = params[0]
    delay = params[1]
    L = params[2]
    qstride = params[3]
    size = params[4]
    num_out = params[6]
    trace_cap = params[8]
    deadlock_window = params[9]

    buffered_total = 0
    last_progress = 0
    last_refill = -1
    tr_count = 0
    tr_trunc = 0
    dlv_count = 0
    stamp = 0
    active_count = 0
    for node in range(size):
        if active[node] != 0:
            active_count += 1
    popped = np.empty(L, np.int64)

    cycle = 0
    while cycle < total_cycles:
        if active_count == 0:
            next_inj = _INF
            for node in range(size):
                ptr = ni_ptr[node]
                if ptr < ni_off[node + 1]:
                    created = pkt_create[ni_slot[ptr]]
                    if created < next_inj:
                        next_inj = created
            if next_inj >= total_cycles:
                break
            if next_inj > cycle:
                cycle = next_inj

        moved = 0
        for node in range(size):
            ptr = ni_ptr[node]
            if ptr < ni_off[node + 1]:
                slot = ni_slot[ptr]
                if pkt_create[slot] <= cycle:
                    lane = pkt_vcl[slot]
                    li = local_in[node]
                    lq = li * L + lane
                    if q_len[lq] < in_cap[li]:
                        seq = ni_seq[ptr]
                        ni_ptr[node] = ptr + 1
                        if seq == 0 and pkt_injected[slot] < 0:
                            pkt_injected[slot] = cycle
                        tail = lq * qstride + (q_head[lq] + q_len[lq]) % qstride
                        qb_enter[tail] = cycle
                        qb_slot[tail] = slot
                        qb_seq[tail] = seq
                        qb_pos[tail] = 0
                        q_len[lq] += 1
                        node_buf[node] += 1
                        buffered_total += 1
                        ni_injected[node] += 1
                        moved += 1
                        if active[node] == 0:
                            active[node] = 1
                            active_count += 1

        if active_count > 0:
            pending = cycle - last_refill
            last_refill = cycle
            while pending > 0:
                all_sat = True
                for p in range(num_out):
                    t = out_tokens[p] + out_rate[p]
                    if t > out_cap[p]:
                        t = out_cap[p]
                    out_tokens[p] = t
                    if t != out_cap[p]:
                        all_sat = False
                pending -= 1
                if pending > 0 and all_sat:
                    break

            limit = cycle - delay
            for node in range(size):
                in_sweep[node] = active[node]
            for node in range(size):
                if in_sweep[node] == 0:
                    continue
                i0 = ins_off[node]
                nin = ins_off[node + 1] - i0
                stamp += 1
                have_req = False
                for k in range(i0, i0 + nin):
                    base = ins_val[k] * L
                    for vc in range(L):
                        iq = base + vc
                        if q_len[iq] > 0:
                            h = iq * qstride + q_head[iq]
                            if qb_enter[h] <= limit and qb_seq[h] == 0:
                                out = route_val[
                                    route_off[qb_slot[h]] + qb_pos[h]
                                ]
                                if req_stamp[out] != stamp:
                                    req_stamp[out] = stamp
                                    req_vcs[out] = 0
                                req_vcs[out] |= 1 << vc
                                have_req = True
                if not have_req and node_owned[node] == 0:
                    continue

                for kp in range(outs_off[node], outs_off[node + 1]):
                    p = outs_val[kp]
                    have_wanted = req_stamp[p] == stamp
                    if not have_wanted and port_owned[p] == 0:
                        continue
                    base_p = p * L
                    if have_wanted:
                        # Lane allocation: each requested free lane
                        # arbitrates independently, ascending lane id.
                        for vc in range(L):
                            if req_vcs[p] & (1 << vc) == 0:
                                continue
                            pl = base_p + vc
                            if owner[pl] >= 0:
                                continue
                            start = rr_in[pl]
                            for offset in range(nin):
                                j = start + offset
                                if j >= nin:
                                    j -= nin
                                iq = ins_val[i0 + j] * L + vc
                                if q_len[iq] > 0:
                                    h = iq * qstride + q_head[iq]
                                    if (
                                        qb_enter[h] <= limit
                                        and qb_seq[h] == 0
                                        and route_val[
                                            route_off[qb_slot[h]] + qb_pos[h]
                                        ]
                                        == p
                                    ):
                                        rr_in[pl] = j + 1 if j + 1 < nin else 0
                                        owner[pl] = ins_val[i0 + j]
                                        owner_pkt[pl] = qb_slot[h]
                                        port_owned[p] += 1
                                        node_owned[node] += 1
                                        break

                    # Switch traversal: the shared token budget round-robins
                    # across lanes flit by flit; the token read is deferred
                    # until a lane actually has a movable flit.
                    advanced = 0
                    n_popped = 0
                    di = dest_in[p]
                    dn = dest_node[p]
                    tk = -1.0
                    starved = False
                    while not starved:
                        progressed = False
                        start_vc = vc_rr[p]
                        for offset in range(L):
                            vc = start_vc + offset
                            if vc >= L:
                                vc -= L
                            pl = base_p + vc
                            ow = owner[pl]
                            if ow < 0 or credits[pl] < 1.0:
                                continue
                            oq = ow * L + vc
                            my_pkt = owner_pkt[pl]
                            if q_len[oq] == 0:
                                continue
                            h = oq * qstride + q_head[oq]
                            if qb_enter[h] > limit or qb_slot[h] != my_pkt:
                                continue
                            if tk < 0.0:
                                tk = out_tokens[p]
                            if tk < 1.0:
                                starved = True
                                break
                            seq = qb_seq[h]
                            pos = qb_pos[h]
                            q_head[oq] = (q_head[oq] + 1) % qstride
                            q_len[oq] -= 1
                            seen = False
                            for s in range(n_popped):
                                if popped[s] == oq:
                                    seen = True
                                    break
                            if not seen:
                                popped[n_popped] = oq
                                n_popped += 1
                            node_buf[node] -= 1
                            buffered_total -= 1
                            fdr = in_feeder[ow]
                            if fdr >= 0:
                                credits[fdr * L + vc] += 1.0
                            tk -= 1.0
                            credits[pl] -= 1.0
                            carried[p] += 1
                            advanced += 1
                            if trace_cap > 0:
                                if tr_count < trace_cap:
                                    tr_node[tr_count] = node
                                    tr_tokey[tr_count] = out_tokey[p]
                                    tr_slot[tr_count] = my_pkt
                                    tr_seq[tr_count] = seq
                                    tr_cycle[tr_count] = cycle
                                    tr_count += 1
                                else:
                                    tr_trunc = 1
                            if di < 0:
                                ni_ejected[node] += 1
                                if seq == pkt_last[my_pkt]:
                                    pkt_delivered[my_pkt] = cycle
                                    dlv_node[dlv_count] = node
                                    dlv_slot[dlv_count] = my_pkt
                                    dlv_count += 1
                                    owner[pl] = -1
                                    owner_pkt[pl] = -1
                                    port_owned[p] -= 1
                                    node_owned[node] -= 1
                            else:
                                dq = di * L + vc
                                tail = (
                                    dq * qstride
                                    + (q_head[dq] + q_len[dq]) % qstride
                                )
                                qb_enter[tail] = cycle
                                qb_slot[tail] = my_pkt
                                qb_seq[tail] = seq
                                qb_pos[tail] = pos + 1
                                q_len[dq] += 1
                                node_buf[dn] += 1
                                buffered_total += 1
                                if active[dn] == 0:
                                    active[dn] = 1
                                    active_count += 1
                                in_sweep[dn] = 1
                                if seq == pkt_last[my_pkt]:
                                    owner[pl] = -1
                                    owner_pkt[pl] = -1
                                    port_owned[p] -= 1
                                    node_owned[node] -= 1
                            vc_rr[p] = vc + 1 if vc + 1 < L else 0
                            progressed = True
                            break
                        if not progressed:
                            break
                    if advanced > 0:
                        out_tokens[p] = tk
                        moved += advanced
                        for s in range(n_popped):
                            oq = popped[s]
                            if q_len[oq] > 0:
                                h = oq * qstride + q_head[oq]
                                if qb_enter[h] <= limit and qb_seq[h] == 0:
                                    out = route_val[
                                        route_off[qb_slot[h]] + qb_pos[h]
                                    ]
                                    if req_stamp[out] != stamp:
                                        req_stamp[out] = stamp
                                        req_vcs[out] = 0
                                    req_vcs[out] |= 1 << (oq % L)

            for node in range(size):
                if in_sweep[node] != 0:
                    if (
                        node_buf[node] == 0
                        and node_owned[node] == 0
                        and active[node] != 0
                    ):
                        active[node] = 0
                        active_count -= 1
                    in_sweep[node] = 0

        if moved > 0:
            last_progress = cycle
        elif cycle - last_progress > deadlock_window and buffered_total > 0:
            result[0] = STATUS_DEADLOCK
            result[1] = last_progress
            result[2] = buffered_total
            result[3] = last_refill
            result[4] = tr_count
            result[5] = tr_trunc
            result[6] = dlv_count
            return
        cycle += 1

    result[0] = STATUS_OK
    result[1] = last_progress
    result[2] = buffered_total
    result[3] = last_refill
    result[4] = tr_count
    result[5] = tr_trunc
    result[6] = dlv_count
