"""The sharded engine: conservative parallel discrete-event over shards.

The fabric is cut into shards by :mod:`repro.partition`; one worker process
per shard advances its region of the network with the vector engine's
interpreted structure-of-arrays loops, and boundary traffic crosses shard
borders as per-cycle message batches.  The contract is the same as every
other engine's: **bit-identical reports and flit traces to the single-
process cycle engine, for any shard count** — parallelism is a wall-clock
optimization, never an accuracy trade.

Why this is exact, in brief (ARCHITECTURE.md carries the long form):

* **Segments.** Worker state is the full flattened network (workers fork
  from the parent before anything runs, so flat indices agree everywhere);
  each worker only *sweeps* the segments it owns — maximal runs of
  consecutive same-shard node ids.  The single-process movement phase
  sweeps nodes in ascending id order, so the global sweep is exactly the
  concatenation of all segments in order: cross-segment effects only ever
  flow "forward" (to a later segment, visible the same cycle) or
  "backward" (to an earlier segment, visible next cycle — the pushing node
  has the higher id, so the receiving node's sweep is already past).

* **Channels.** For every fabric-adjacent segment pair owned by different
  workers there is a directed channel.  A channel carries one batch per
  cycle — possibly empty (a null message, which is what makes the barrier
  conservative and deadlock-free: the (cycle, segment) dependency graph is
  a DAG).  Forward batches (lower -> higher segment) are tagged with the
  current cycle and applied before the receiving segment's sweep of that
  same cycle; backward batches are tagged with the cycle they were
  produced and applied at the start of the next cycle.  Flit entries queue
  with their *tag* as the enter cycle, so router-delay visibility is
  computed from the original push cycle, exactly as in one process.

* **Credits and queues have one writer.** Every input queue has exactly
  one feeder port and every output port feeds exactly one input queue, so
  each is written by exactly one channel (or locally) — batch application
  order across channels cannot matter.  Credit increments commute.

* **Injection is replayed once, in the parent.** Traffic sources are
  consumed by the parent with the same event-heap discipline as the
  single-process engines (the parent also owns ``all_packets`` and the
  packet-id counter), and packet specs are broadcast to every worker in
  creation order — so packet slot numbers agree across all workers and
  flit messages can carry slots directly.

* **Tokens are exact by catch-up.** The vectorized refill replays
  ``min(t + rate, cap)`` once per elapsed cycle since the worker's last
  refill; consumption of a port's tokens happens only in its owner's
  sweeps, so the update/consume interleaving is identical to one process
  even though idle workers skip refill calls.

The parent merges per-worker results (delivered packets in ejection order,
carried-flit counters, NI counters, bounded trace streams sorted by
``(cycle, node)`` — the single-process emission order) onto the model
objects and the unchanged ``Simulator._build_report`` does the rest.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue as queue_mod
import traceback
from bisect import insort
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.simnoc.engines.base import register_engine
from repro.simnoc.engines.cycle import DEADLOCK_WINDOW
from repro.simnoc.engines.vector import _EMPTY, _FlatState, _reject_unsupported_model
from repro.simnoc.router import LOCAL
from repro.simnoc.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.simulator import Simulator

#: Packet specs stream parent -> workers in chunks of this many cycles.
_CHUNK = 512

#: Shard count when the caller asked for the sharded engine without one.
DEFAULT_SHARDS = 2


@register_engine("sharded")
class ShardedEngine:
    """Barrier-synchronized multi-process backend over a fabric partition."""

    name = "sharded"

    def run(self, sim: "Simulator") -> None:
        model = sim.network.config.effective_router_model
        _reject_unsupported_model(model)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SimulationError(
                "the sharded engine needs the 'fork' start method so shard "
                "workers inherit the built network; this platform does not "
                "support it"
            )
        from repro.partition import partition_topology

        shards = getattr(sim, "shards", None)
        if shards is None:
            shards = DEFAULT_SHARDS
        if shards < 1:
            raise SimulationError(f"shards must be >= 1, got {shards}")
        partitioner = getattr(sim, "partitioner", None) or "auto"
        spec = partition_topology(sim.network.topology, shards, partitioner)
        _run_sharded(sim, spec, vc_mode=model == "wormhole-vc")


class _Plan:
    """The static shape of one sharded run, derived from a PartitionSpec.

    Segments are maximal runs of consecutive same-shard node ids in the
    global (ascending) sweep order; channels connect fabric-adjacent
    segments owned by different workers, in both directions (flits flow
    along a link, credits flow against it).
    """

    def __init__(self, network, spec) -> None:
        self.num_shards = spec.num_shards
        nodes = sorted(network.routers)
        assignment = spec.assignment

        seg_nodes: list[list[int]] = []
        seg_shard: list[int] = []
        for node in nodes:
            shard = assignment[node]
            if not seg_shard or seg_shard[-1] != shard:
                seg_shard.append(shard)
                seg_nodes.append([])
            seg_nodes[-1].append(node)
        self.seg_nodes = seg_nodes
        self.seg_shard = seg_shard
        num_segs = len(seg_nodes)

        size = max(nodes) + 1
        seg_of = [-1] * size
        for j, members in enumerate(seg_nodes):
            for node in members:
                seg_of[node] = j
        self.seg_of = seg_of

        shard_segments: list[list[int]] = [[] for _ in range(self.num_shards)]
        for j, shard in enumerate(seg_shard):
            shard_segments[shard].append(j)
        self.shard_segments = shard_segments

        channels: set[tuple[int, int]] = set()
        for node in nodes:
            router = network.routers[node]
            for to_key in router.output_order:
                if to_key == LOCAL:
                    continue
                a, b = seg_of[node], seg_of[to_key]
                if a != b and seg_shard[a] != seg_shard[b]:
                    # Flits cross a -> b; same-cycle credits cross b -> a.
                    channels.add((a, b))
                    channels.add((b, a))
        self.channels = channels

        #: Per segment j: remote lower segments whose forward batch
        #: (tagged with the current cycle) gates j's sweep.
        self.fwd_in: list[list[int]] = [
            sorted(i for (i, jj) in channels if jj == j and i < j)
            for j in range(num_segs)
        ]
        #: Per segment j: remote higher segments whose backward batch
        #: (tagged with the previous cycle) is applied at cycle start.
        self.bwd_in: list[list[int]] = [
            sorted(i for (i, jj) in channels if jj == j and i > j)
            for j in range(num_segs)
        ]
        #: Per segment j: every remote segment j sends a batch to, flushed
        #: right after j's sweep each cycle (empty batches included — the
        #: null messages that keep the barrier deadlock-free).
        self.out_remote: list[list[int]] = [
            sorted(k for (jj, k) in channels if jj == j)
            for j in range(num_segs)
        ]
        #: Directed worker pairs that need a message queue.
        self.worker_pairs = sorted(
            {(seg_shard[i], seg_shard[j]) for (i, j) in channels}
        )


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _flat_out_specs(network) -> list[tuple[int, int]]:
    """The flat output-port index -> (node, to_key) table, as workers see it."""
    specs: list[tuple[int, int]] = []
    for node in sorted(network.routers):
        router = network.routers[node]
        for key in router.output_order:
            specs.append((node, key))
    return specs


def _run_sharded(sim: "Simulator", spec, vc_mode: bool) -> None:
    network = sim.network
    config = network.config
    for node, router in network.routers.items():
        for to_key, port in router.outputs.items():
            if port.last_refill != -1:
                raise SimulationError(
                    "sharded engine requires a freshly built network "
                    f"(node {node} output {to_key} already ran)"
                )

    plan = _Plan(network, spec)
    ctx = multiprocessing.get_context("fork")
    num_shards = plan.num_shards
    inject_qs = [ctx.Queue() for _ in range(num_shards)]
    result_q = ctx.Queue()
    pair_qs = {pair: ctx.SimpleQueue() for pair in plan.worker_pairs}
    trace_cap = sim.trace.max_events if sim.trace is not None else 0

    workers = []
    for shard in range(num_shards):
        peer_in = {src: q for (src, dst), q in pair_qs.items() if dst == shard}
        peer_out = {dst: q for (src, dst), q in pair_qs.items() if src == shard}
        worker = ctx.Process(
            target=_worker_main,
            args=(
                sim,
                vc_mode,
                plan,
                shard,
                inject_qs[shard],
                peer_in,
                peer_out,
                result_q,
                trace_cap,
            ),
            daemon=True,
        )
        worker.start()
        workers.append(worker)

    try:
        id_to_packet = _replay_sources(sim, vc_mode, inject_qs)
        payloads = _collect_results(workers, result_q, num_shards)
    except BaseException:
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        raise
    finally:
        for worker in workers:
            worker.join(timeout=5.0)

    _merge_results(sim, payloads, id_to_packet)


def _replay_sources(sim: "Simulator", vc_mode: bool, inject_qs) -> dict:
    """Consume the traffic sources exactly like the single-process engines.

    Every engine pops source events in ``(next_event_cycle, index)`` heap
    order and registers the resulting packets immediately, so replaying the
    same discipline here yields the same packets, ids, ``measured`` flags
    and ``all_packets`` order.  Specs are broadcast to every worker in
    creation order — that global order is what makes packet slot numbers
    agree across workers.
    """
    network = sim.network
    config = network.config
    measure_start = config.warmup_cycles
    measure_end = measure_start + config.measure_cycles
    total_cycles = config.total_cycles
    lanes = config.num_vcs if vc_mode else 1
    next_packet_id = sim.next_packet_id
    all_packets_append = sim.all_packets.append

    sources = network.sources
    heappush = heapq.heappush
    heappop = heapq.heappop
    event_heap = [
        (source.next_event_cycle, index) for index, source in enumerate(sources)
    ]
    heapq.heapify(event_heap)

    id_to_packet: dict[int, object] = {}
    chunk: list = []
    for cycle in range(total_cycles):
        while event_heap and event_heap[0][0] <= cycle:
            _, index = heappop(event_heap)
            source = sources[index]
            for packet in source.packets_for_cycle(cycle, next_packet_id):
                packet.measured = measure_start <= cycle < measure_end
                packet.vc = packet.commodity_index % lanes
                all_packets_append(packet)
                id_to_packet[packet.packet_id] = packet
                chunk.append(
                    (
                        cycle,
                        (
                            packet.packet_id,
                            packet.vc,
                            packet.src_node,
                            tuple(packet.path),
                            packet.num_flits,
                        ),
                    )
                )
            heappush(event_heap, (source.next_event_cycle, index))
        if (cycle + 1) % _CHUNK == 0:
            for q in inject_qs:
                q.put(chunk)
            chunk = []
    if total_cycles % _CHUNK != 0:
        for q in inject_qs:
            q.put(chunk)
    return id_to_packet


def _collect_results(workers, result_q, num_shards: int) -> dict:
    remaining = set(range(num_shards))
    payloads: dict[int, dict] = {}
    while remaining:
        try:
            message = result_q.get(timeout=2.0)
        except queue_mod.Empty:
            dead = [
                shard for shard in remaining if not workers[shard].is_alive()
            ]
            if dead:
                for worker in workers:
                    if worker.is_alive():
                        worker.terminate()
                raise SimulationError(
                    f"sharded engine: worker for shard {dead[0]} died "
                    "without reporting a result"
                )
            continue
        kind = message[0]
        if kind == "err":
            _, shard, text = message
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            raise SimulationError(
                f"sharded engine: shard {shard} worker failed:\n{text}"
            )
        _, shard, payload = message
        payloads[shard] = payload
        remaining.discard(shard)
    return payloads


def _merge_results(sim: "Simulator", payloads: dict, id_to_packet: dict) -> None:
    """Patch worker observables onto the model, then let the normal report
    builder run.

    Delivered packets extend each NI in that worker's ejection order (one
    worker owns each node, so per-interface order is exact), and the
    interface dict itself predates the fork — the report's flatten order is
    byte-identical to a single-process run over the same network object.
    """
    network = sim.network
    out_specs = _flat_out_specs(network)
    for shard in sorted(payloads):
        payload = payloads[shard]
        for pid, cycle in payload["injected"].items():
            id_to_packet[pid].injected_cycle = cycle
        for node, items in payload["delivered"].items():
            interface = network.interfaces[node]
            for pid, cycle in items:
                packet = id_to_packet[pid]
                packet.delivered_cycle = cycle
                interface.delivered_packets.append(packet)
        for p, count in payload["carried"].items():
            node, to_key = out_specs[p]
            network.routers[node].outputs[to_key].flits_carried = count
        for node, (injected, ejected) in payload["ni"].items():
            interface = network.interfaces[node]
            interface.flits_injected += injected
            interface.flits_ejected += ejected

    # Arm the freshness guard on every port so this network cannot be
    # silently re-run (mirrors the vector engine's writeback).
    final = sim.network.config.total_cycles - 1
    for router in network.routers.values():
        for port in router.outputs.values():
            port.last_refill = final

    recorder = sim.trace
    if recorder is not None:
        events: list[tuple] = []
        attempts = 0
        for payload in payloads.values():
            events.extend(payload["trace"])
            attempts += payload["trace_attempts"]
        # Within one cycle the single-process sweep emits in ascending
        # node order, and all events of one (cycle, node) come from one
        # worker in emission order — a stable sort on (cycle, node)
        # reconstructs the global stream exactly.
        events.sort(key=lambda item: (item[0], item[1]))
        room = recorder.max_events - len(recorder.events)
        for item in events[: max(0, room)]:
            recorder.events.append(
                TraceEvent(
                    cycle=item[0],
                    node=item[1],
                    to_key=item[2],
                    packet_id=item[3],
                    flit_sequence=item[4],
                )
            )
        if attempts > room:
            recorder.truncated = True


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(
    sim,
    vc_mode: bool,
    plan: _Plan,
    shard: int,
    inject_q,
    peer_in: dict,
    peer_out: dict,
    result_q,
    trace_cap: int,
) -> None:
    try:
        state = _FlatState(sim, vc_mode=vc_mode)
        runner = _worker_run_vc if vc_mode else _worker_run_plain
        payload = runner(
            state, sim, plan, shard, inject_q, peer_in, peer_out, trace_cap
        )
        result_q.put(("done", shard, payload))
    except BaseException:
        try:
            result_q.put(("err", shard, traceback.format_exc()))
        finally:
            for q in peer_out.values():
                try:
                    q.put(("abort",))
                except Exception:  # noqa: BLE001 — peer may be gone already
                    pass


def _worker_tables(state, plan: _Plan, shard: int):
    """Ownership and wiring tables shared by both worker loops."""
    size = len(plan.seg_of)
    owned = bytearray(size)
    for j in plan.shard_segments[shard]:
        for node in plan.seg_nodes[j]:
            owned[node] = 1
    in_node = [0] * (len(state.in_cap))
    for (node, _key), i in state.in_index.items():
        in_node[i] = node
    out_node = [spec[0] for spec in state.out_specs]
    return owned, in_node, out_node


def _make_pump(peer_in: dict, seg_shard: list[int]):
    """Blocking receive of one channel batch, via the per-pair queues.

    Messages for other channels (or future cycles) that arrive first are
    parked in ``pending`` — the wavefront pipelining means a fast upstream
    worker may run a cycle or two ahead.
    """
    pending: dict[tuple[int, int, int], tuple] = {}

    def pump(src_seg: int, dst_seg: int, tag: int) -> tuple:
        key = (src_seg, dst_seg, tag)
        batch = pending.pop(key, None)
        if batch is not None:
            return batch
        q = peer_in[seg_shard[src_seg]]
        while True:
            message = q.get()
            if message[0] == "abort":
                raise SimulationError(
                    "sharded engine: peer shard aborted mid-run"
                )
            got = (message[0], message[1], message[2])
            batch = (message[3], message[4])
            if got == key:
                return batch
            pending[got] = batch

    return pump


def _payload(
    plan, shard, state, pkt_ids, injected_by_slot, delivered, trace_events,
    trace_attempts,
):
    """Everything the parent needs from one worker, as plain picklables."""
    owned_nodes = [
        node
        for j in plan.shard_segments[shard]
        for node in plan.seg_nodes[j]
    ]
    return {
        "injected": {
            pkt_ids[slot]: cycle for slot, cycle in injected_by_slot.items()
        },
        "delivered": {
            node: state_delivered
            for node in owned_nodes
            if (state_delivered := delivered[node])
        },
        "carried": {
            p: count for p, count in enumerate(state.carried) if count
        },
        "ni": {
            node: (state.ni_injected[node], state.ni_ejected[node])
            for node in owned_nodes
            if state.ni_injected[node] or state.ni_ejected[node]
        },
        "trace": trace_events,
        "trace_attempts": trace_attempts,
    }


def _worker_run_plain(
    state: _FlatState,
    sim,
    plan: _Plan,
    shard: int,
    inject_q,
    peer_in: dict,
    peer_out: dict,
    trace_cap: int,
) -> dict:
    """The plain-wormhole advance loop, restricted to this shard's segments.

    Statement for statement this is ``_FlatState.run_plain`` with four
    changes: source replay is replaced by the parent's spec stream; pops
    whose credit belongs to a remote feeder stage a credit entry instead of
    incrementing locally; pushes to a remote downstream node stage a flit
    entry instead of appending locally; and the sweep runs one owned
    segment at a time with channel batches exchanged at the segment
    boundaries (forward: applied before the receiving segment's sweep this
    cycle; backward: applied at the start of the next cycle).
    """
    network = sim.network
    config = network.config
    delay = config.router_delay
    total_cycles = config.total_cycles

    queues = state.queues
    head_enter = state.head_enter
    head_slot = state.head_slot
    head_seq = state.head_seq
    head_pos = state.head_pos
    in_cap = state.in_cap
    feeder = state.in_feeder
    tokens = state.out_tokens
    rates = state.out_rates
    caps = state.out_caps
    credits = state.credits
    owner = state.owner
    owner_pkt = state.owner_pkt
    rr_in = state.rr_in
    carried = state.carried
    dest_in = state.out_dest_in
    dest_node = state.out_dest_node
    out_to_key = state.out_to_key
    node_ins = state.node_ins
    node_outs = state.node_outs
    local_in = state.local_in
    node_buf = state.node_buf
    node_owned = state.node_owned
    ni_queue = state.ni_queue
    ni_injected = state.ni_injected
    pkt_outs = state.pkt_outs
    pkt_last = state.pkt_last
    resolve_route = state.resolve_route

    ni_ejected = state.ni_ejected
    seg_of = plan.seg_of
    seg_shard = plan.seg_shard
    my_segs = plan.shard_segments[shard]
    fwd_in = plan.fwd_in
    bwd_in = plan.bwd_in
    out_remote = plan.out_remote
    owned, in_node, out_node = _worker_tables(state, plan, shard)
    pump = _make_pump(peer_in, seg_shard)

    pkt_ids: list[int] = []
    injected_by_slot: dict[int, int] = {}
    delivered: list = [[] for _ in range(len(plan.seg_of))]
    trace_events: list[tuple] = []
    trace_attempts = 0

    np_add = np.add
    np_minimum = np.minimum

    active_routers: set[int] = set()
    active_nis: set[int] = set()
    buffered_total = 0
    last_progress = 0
    last_refill = -1

    inj_pending: deque = deque()
    inj_chunks_total = (total_cycles + _CHUNK - 1) // _CHUNK
    inj_chunks_got = 0

    cycle = 0
    while cycle < total_cycles:
        # (1) Packet registrations due this cycle, from the parent stream.
        #     Registration order is the parent's creation order, so slot
        #     numbers agree across every worker.
        while inj_chunks_got < inj_chunks_total and (
            inj_chunks_got * _CHUNK <= cycle
        ):
            inj_pending.extend(inject_q.get())
            inj_chunks_got += 1
        while inj_pending and inj_pending[0][0] == cycle:
            _, (pid, vc, src, path, num_flits) = inj_pending.popleft()
            slot = len(pkt_ids)
            pkt_ids.append(pid)
            pkt_outs.append(resolve_route(path, pid))
            pkt_last.append(num_flits - 1)
            state.pkt_vc.append(vc)
            if owned[src]:
                ni_queue[src].extend((slot, seq) for seq in range(num_flits))
                active_nis.add(src)

        inbound = 0

        # (2) Backward batches produced by remote higher segments last
        #     cycle become visible now (their enter cycle stays the tag).
        if cycle > 0:
            for j in my_segs:
                for i in bwd_in[j]:
                    flits, creds = pump(i, j, cycle - 1)
                    tag = cycle - 1
                    for di, _vc, slot, seq, pos in flits:
                        q = queues[di]
                        if not q:
                            head_enter[di] = tag
                            head_slot[di] = slot
                            head_seq[di] = seq
                            head_pos[di] = pos
                        q.append((tag, slot, seq, pos))
                        dn = in_node[di]
                        node_buf[dn] += 1
                        buffered_total += 1
                        active_routers.add(dn)
                    inbound += len(flits)
                    if creds:
                        for key, amount in creds.items():
                            credits[key] += amount

        # (3) NI phase — node-local state only, so running every owned
        #     node up front matches the single-process global NI pass.
        moved = 0
        if active_nis:
            drained = None
            for node in sorted(active_nis):
                backlog = ni_queue[node]
                if backlog:
                    li = local_in[node]
                    in_queue = queues[li]
                    if len(in_queue) < in_cap[li]:
                        slot, seq = backlog.popleft()
                        if seq == 0 and slot not in injected_by_slot:
                            injected_by_slot[slot] = cycle
                        if not in_queue:
                            head_enter[li] = cycle
                            head_slot[li] = slot
                            head_seq[li] = seq
                            head_pos[li] = 0
                        in_queue.append((cycle, slot, seq, 0))
                        node_buf[node] += 1
                        buffered_total += 1
                        ni_injected[node] += 1
                        moved += 1
                        active_routers.add(node)
                if not backlog:
                    if drained is None:
                        drained = [node]
                    else:
                        drained.append(node)
            if drained:
                for node in drained:
                    active_nis.discard(node)

        # (4) Token refill: value-exact regardless of which cycles ran it,
        #     because consumption of an owned port's tokens only ever
        #     happens in this worker's sweeps (catch-up replay invariant).
        if active_routers:
            pending_cycles = cycle - last_refill
            last_refill = cycle
            if pending_cycles == 1:
                np_add(tokens, rates, out=tokens)
                np_minimum(tokens, caps, out=tokens)
            else:
                while pending_cycles > 0:
                    np_add(tokens, rates, out=tokens)
                    np_minimum(tokens, caps, out=tokens)
                    pending_cycles -= 1
                    if pending_cycles and (tokens == caps).all():
                        break

        limit = cycle - delay

        # (5) Sweep owned segments in ascending order; the concatenation of
        #     all segments (across workers) is the single-process sweep.
        for cur_seg in my_segs:
            for i in fwd_in[cur_seg]:
                flits, creds = pump(i, cur_seg, cycle)
                for di, _vc, slot, seq, pos in flits:
                    q = queues[di]
                    if not q:
                        head_enter[di] = cycle
                        head_slot[di] = slot
                        head_seq[di] = seq
                        head_pos[di] = pos
                    q.append((cycle, slot, seq, pos))
                    dn = in_node[di]
                    node_buf[dn] += 1
                    buffered_total += 1
                    active_routers.add(dn)
                inbound += len(flits)
                if creds:
                    for key, amount in creds.items():
                        credits[key] += amount

            out_flits: dict[int, list] = {}
            out_credits: dict[int, dict] = {}
            sweep = sorted(
                node for node in active_routers if seg_of[node] == cur_seg
            )
            swept = set(sweep)
            sweep_len = len(sweep)
            spos = 0
            while spos < sweep_len:
                node = sweep[spos]
                ins = node_ins[node]

                requested = None
                for i in ins:
                    if head_enter[i] <= limit and head_seq[i] == 0:
                        out = pkt_outs[head_slot[i]][head_pos[i]]
                        if requested is None:
                            requested = {out}
                        else:
                            requested.add(out)
                if requested is None and node_owned[node] == 0:
                    spos += 1
                    continue
                nin = len(ins)

                for p in node_outs[node]:
                    ow = owner[p]
                    if ow < 0:
                        if requested is None or p not in requested:
                            continue
                        start = rr_in[p]
                        for offset in range(nin):
                            j = start + offset
                            if j >= nin:
                                j -= nin
                            i = ins[j]
                            if (
                                head_enter[i] <= limit
                                and head_seq[i] == 0
                                and pkt_outs[head_slot[i]][head_pos[i]] == p
                            ):
                                rr_in[p] = j + 1 if j + 1 < nin else 0
                                owner[p] = i
                                owner_pkt[p] = head_slot[i]
                                node_owned[node] += 1
                                ow = i
                                break
                        if ow < 0:
                            continue

                    my_pkt = owner_pkt[p]
                    if (
                        credits[p] < 1.0
                        or head_enter[ow] > limit
                        or head_slot[ow] != my_pkt
                    ):
                        continue
                    tk = float(tokens[p])
                    if tk < 1.0:
                        continue
                    advanced = 0
                    my_queue = queues[ow]
                    my_last = pkt_last[my_pkt]
                    fdr = feeder[ow]
                    di = dest_in[p]
                    while (
                        tk >= 1.0
                        and credits[p] >= 1.0
                        and head_enter[ow] <= limit
                        and head_slot[ow] == my_pkt
                    ):
                        seq = head_seq[ow]
                        pos = head_pos[ow]
                        my_queue.popleft()
                        if my_queue:
                            (
                                head_enter[ow],
                                head_slot[ow],
                                head_seq[ow],
                                head_pos[ow],
                            ) = my_queue[0]
                        else:
                            head_enter[ow] = _EMPTY
                        node_buf[node] -= 1
                        buffered_total -= 1
                        if fdr >= 0:
                            if owned[out_node[fdr]]:
                                credits[fdr] += 1.0
                            else:
                                fs = seg_of[out_node[fdr]]
                                batch = out_credits.get(fs)
                                if batch is None:
                                    batch = out_credits[fs] = {}
                                batch[fdr] = batch.get(fdr, 0.0) + 1.0
                        tk -= 1.0
                        credits[p] -= 1.0
                        carried[p] += 1
                        advanced += 1
                        if trace_cap:
                            if len(trace_events) < trace_cap:
                                trace_events.append(
                                    (
                                        cycle,
                                        node,
                                        out_to_key[p],
                                        pkt_ids[my_pkt],
                                        seq,
                                    )
                                )
                            trace_attempts += 1
                        if di < 0:
                            ni_ejected[node] += 1
                            if seq == my_last:
                                delivered[node].append((pkt_ids[my_pkt], cycle))
                                owner[p] = -1
                                owner_pkt[p] = -1
                                node_owned[node] -= 1
                                break
                        else:
                            dn = dest_node[p]
                            if owned[dn]:
                                down_queue = queues[di]
                                if not down_queue:
                                    head_enter[di] = cycle
                                    head_slot[di] = my_pkt
                                    head_seq[di] = seq
                                    head_pos[di] = pos + 1
                                down_queue.append((cycle, my_pkt, seq, pos + 1))
                                node_buf[dn] += 1
                                buffered_total += 1
                                active_routers.add(dn)
                                if (
                                    seg_of[dn] == cur_seg
                                    and dn > node
                                    and dn not in swept
                                ):
                                    insort(sweep, dn, spos + 1)
                                    swept.add(dn)
                                    sweep_len += 1
                            else:
                                ds = seg_of[dn]
                                batch = out_flits.get(ds)
                                if batch is None:
                                    batch = out_flits[ds] = []
                                batch.append((di, 0, my_pkt, seq, pos + 1))
                            if seq == my_last:
                                owner[p] = -1
                                owner_pkt[p] = -1
                                node_owned[node] -= 1
                                break
                    if advanced:
                        tokens[p] = tk
                        moved += advanced
                        if head_enter[ow] <= limit and head_seq[ow] == 0:
                            out = pkt_outs[head_slot[ow]][head_pos[ow]]
                            if requested is None:
                                requested = {out}
                            else:
                                requested.add(out)
                spos += 1

            for node in sweep:
                if node_buf[node] == 0 and node_owned[node] == 0:
                    active_routers.discard(node)

            for k in out_remote[cur_seg]:
                peer_out[seg_shard[k]].put(
                    (
                        cur_seg,
                        k,
                        cycle,
                        out_flits.get(k, ()),
                        out_credits.get(k, ()),
                    )
                )

        if moved or inbound:
            last_progress = cycle
        elif cycle - last_progress > DEADLOCK_WINDOW and buffered_total > 0:
            raise SimulationError(
                f"deadlock: no flit moved since cycle {last_progress} "
                f"with {buffered_total} flits buffered"
            )
        cycle += 1

    return _payload(
        plan,
        shard,
        state,
        pkt_ids,
        injected_by_slot,
        delivered,
        trace_events,
        trace_attempts,
    )


def _worker_run_vc(
    state: _FlatState,
    sim,
    plan: _Plan,
    shard: int,
    inject_q,
    peer_in: dict,
    peer_out: dict,
    trace_cap: int,
) -> dict:
    """The VC-wormhole advance loop, restricted to this shard's segments.

    Same four changes as :func:`_worker_run_plain`, on the ``L``-lane
    layout of ``_FlatState.run_vc``: staged credits key the flat lane index
    (``feeder * L + vc``) and staged flit entries carry the lane.
    """
    network = sim.network
    config = network.config
    delay = config.router_delay
    total_cycles = config.total_cycles
    L = state.num_vcs

    queues = state.queues
    head_enter = state.head_enter
    head_slot = state.head_slot
    head_seq = state.head_seq
    head_pos = state.head_pos
    in_cap = state.in_cap
    feeder = state.in_feeder
    tokens = state.out_tokens
    rates = state.out_rates
    caps = state.out_caps
    credits = state.credits
    owner = state.owner
    owner_pkt = state.owner_pkt
    rr_in = state.rr_in
    vc_rr = state.vc_rr
    port_owned = state.port_owned
    carried = state.carried
    dest_in = state.out_dest_in
    dest_node = state.out_dest_node
    out_to_key = state.out_to_key
    node_ins = state.node_ins
    node_outs = state.node_outs
    local_in = state.local_in
    node_buf = state.node_buf
    node_owned = state.node_owned
    ni_queue = state.ni_queue
    ni_injected = state.ni_injected
    ni_ejected = state.ni_ejected
    pkt_outs = state.pkt_outs
    pkt_last = state.pkt_last
    pkt_vc = state.pkt_vc
    resolve_route = state.resolve_route

    seg_of = plan.seg_of
    seg_shard = plan.seg_shard
    my_segs = plan.shard_segments[shard]
    fwd_in = plan.fwd_in
    bwd_in = plan.bwd_in
    out_remote = plan.out_remote
    owned, in_node, out_node = _worker_tables(state, plan, shard)
    pump = _make_pump(peer_in, seg_shard)

    pkt_ids: list[int] = []
    injected_by_slot: dict[int, int] = {}
    delivered: list = [[] for _ in range(len(plan.seg_of))]
    trace_events: list[tuple] = []
    trace_attempts = 0

    np_add = np.add
    np_minimum = np.minimum

    active_routers: set[int] = set()
    active_nis: set[int] = set()
    buffered_total = 0
    last_progress = 0
    last_refill = -1

    inj_pending: deque = deque()
    inj_chunks_total = (total_cycles + _CHUNK - 1) // _CHUNK
    inj_chunks_got = 0

    cycle = 0
    while cycle < total_cycles:
        while inj_chunks_got < inj_chunks_total and (
            inj_chunks_got * _CHUNK <= cycle
        ):
            inj_pending.extend(inject_q.get())
            inj_chunks_got += 1
        while inj_pending and inj_pending[0][0] == cycle:
            _, (pid, vc, src, path, num_flits) = inj_pending.popleft()
            slot = len(pkt_ids)
            pkt_ids.append(pid)
            pkt_outs.append(resolve_route(path, pid))
            pkt_last.append(num_flits - 1)
            pkt_vc.append(vc)
            if owned[src]:
                ni_queue[src].extend((slot, seq) for seq in range(num_flits))
                active_nis.add(src)

        inbound = 0

        if cycle > 0:
            for j in my_segs:
                for i in bwd_in[j]:
                    flits, creds = pump(i, j, cycle - 1)
                    tag = cycle - 1
                    for di, vc, slot, seq, pos in flits:
                        dq = di * L + vc
                        q = queues[dq]
                        if not q:
                            head_enter[dq] = tag
                            head_slot[dq] = slot
                            head_seq[dq] = seq
                            head_pos[dq] = pos
                        q.append((tag, slot, seq, pos))
                        dn = in_node[di]
                        node_buf[dn] += 1
                        buffered_total += 1
                        active_routers.add(dn)
                    inbound += len(flits)
                    if creds:
                        for key, amount in creds.items():
                            credits[key] += amount

        moved = 0
        if active_nis:
            drained = None
            for node in sorted(active_nis):
                backlog = ni_queue[node]
                if backlog:
                    slot, seq = backlog[0]
                    lane = pkt_vc[slot]
                    li = local_in[node]
                    lq = li * L + lane
                    in_queue = queues[lq]
                    if len(in_queue) < in_cap[li]:
                        backlog.popleft()
                        if seq == 0 and slot not in injected_by_slot:
                            injected_by_slot[slot] = cycle
                        if not in_queue:
                            head_enter[lq] = cycle
                            head_slot[lq] = slot
                            head_seq[lq] = seq
                            head_pos[lq] = 0
                        in_queue.append((cycle, slot, seq, 0))
                        node_buf[node] += 1
                        buffered_total += 1
                        ni_injected[node] += 1
                        moved += 1
                        active_routers.add(node)
                if not backlog:
                    if drained is None:
                        drained = [node]
                    else:
                        drained.append(node)
            if drained:
                for node in drained:
                    active_nis.discard(node)

        if active_routers:
            pending_cycles = cycle - last_refill
            last_refill = cycle
            if pending_cycles == 1:
                np_add(tokens, rates, out=tokens)
                np_minimum(tokens, caps, out=tokens)
            else:
                while pending_cycles > 0:
                    np_add(tokens, rates, out=tokens)
                    np_minimum(tokens, caps, out=tokens)
                    pending_cycles -= 1
                    if pending_cycles and (tokens == caps).all():
                        break

        limit = cycle - delay

        for cur_seg in my_segs:
            for i in fwd_in[cur_seg]:
                flits, creds = pump(i, cur_seg, cycle)
                for di, vc, slot, seq, pos in flits:
                    dq = di * L + vc
                    q = queues[dq]
                    if not q:
                        head_enter[dq] = cycle
                        head_slot[dq] = slot
                        head_seq[dq] = seq
                        head_pos[dq] = pos
                    q.append((cycle, slot, seq, pos))
                    dn = in_node[di]
                    node_buf[dn] += 1
                    buffered_total += 1
                    active_routers.add(dn)
                inbound += len(flits)
                if creds:
                    for key, amount in creds.items():
                        credits[key] += amount

            out_flits: dict[int, list] = {}
            out_credits: dict[int, dict] = {}
            sweep = sorted(
                node for node in active_routers if seg_of[node] == cur_seg
            )
            swept = set(sweep)
            sweep_len = len(sweep)
            spos = 0
            while spos < sweep_len:
                node = sweep[spos]
                ins = node_ins[node]

                requested = None
                for i in ins:
                    base = i * L
                    for vc in range(L):
                        iq = base + vc
                        if head_enter[iq] <= limit and head_seq[iq] == 0:
                            out = pkt_outs[head_slot[iq]][head_pos[iq]]
                            if requested is None:
                                requested = {out: {vc}}
                            elif out in requested:
                                requested[out].add(vc)
                            else:
                                requested[out] = {vc}
                if requested is None and node_owned[node] == 0:
                    spos += 1
                    continue
                nin = len(ins)

                for p in node_outs[node]:
                    wanted = None if requested is None else requested.get(p)
                    if wanted is None and port_owned[p] == 0:
                        continue
                    base_p = p * L
                    if wanted is not None:
                        for vc in sorted(wanted):
                            pl = base_p + vc
                            if owner[pl] >= 0:
                                continue
                            start = rr_in[pl]
                            for offset in range(nin):
                                j = start + offset
                                if j >= nin:
                                    j -= nin
                                iq = ins[j] * L + vc
                                if (
                                    head_enter[iq] <= limit
                                    and head_seq[iq] == 0
                                    and pkt_outs[head_slot[iq]][head_pos[iq]]
                                    == p
                                ):
                                    rr_in[pl] = j + 1 if j + 1 < nin else 0
                                    owner[pl] = ins[j]
                                    owner_pkt[pl] = head_slot[iq]
                                    port_owned[p] += 1
                                    node_owned[node] += 1
                                    break

                    advanced = 0
                    popped = None
                    di = dest_in[p]
                    dn = dest_node[p]
                    tk = -1.0
                    starved = False
                    while not starved:
                        progressed = False
                        start_vc = vc_rr[p]
                        for offset in range(L):
                            vc = start_vc + offset
                            if vc >= L:
                                vc -= L
                            pl = base_p + vc
                            ow = owner[pl]
                            if ow < 0 or credits[pl] < 1.0:
                                continue
                            oq = ow * L + vc
                            my_pkt = owner_pkt[pl]
                            if head_enter[oq] > limit or head_slot[oq] != my_pkt:
                                continue
                            if tk < 0.0:
                                tk = float(tokens[p])
                            if tk < 1.0:
                                starved = True
                                break
                            seq = head_seq[oq]
                            pos = head_pos[oq]
                            queue = queues[oq]
                            queue.popleft()
                            if queue:
                                (
                                    head_enter[oq],
                                    head_slot[oq],
                                    head_seq[oq],
                                    head_pos[oq],
                                ) = queue[0]
                            else:
                                head_enter[oq] = _EMPTY
                            if popped is None:
                                popped = {oq}
                            else:
                                popped.add(oq)
                            node_buf[node] -= 1
                            buffered_total -= 1
                            fdr = feeder[ow]
                            if fdr >= 0:
                                if owned[out_node[fdr]]:
                                    credits[fdr * L + vc] += 1.0
                                else:
                                    fs = seg_of[out_node[fdr]]
                                    batch = out_credits.get(fs)
                                    if batch is None:
                                        batch = out_credits[fs] = {}
                                    key = fdr * L + vc
                                    batch[key] = batch.get(key, 0.0) + 1.0
                            tk -= 1.0
                            credits[pl] -= 1.0
                            carried[p] += 1
                            advanced += 1
                            if trace_cap:
                                if len(trace_events) < trace_cap:
                                    trace_events.append(
                                        (
                                            cycle,
                                            node,
                                            out_to_key[p],
                                            pkt_ids[my_pkt],
                                            seq,
                                        )
                                    )
                                trace_attempts += 1
                            if di < 0:
                                ni_ejected[node] += 1
                                if seq == pkt_last[my_pkt]:
                                    delivered[node].append(
                                        (pkt_ids[my_pkt], cycle)
                                    )
                                    owner[pl] = -1
                                    owner_pkt[pl] = -1
                                    port_owned[p] -= 1
                                    node_owned[node] -= 1
                            else:
                                if owned[dn]:
                                    dq = di * L + vc
                                    down_queue = queues[dq]
                                    if not down_queue:
                                        head_enter[dq] = cycle
                                        head_slot[dq] = my_pkt
                                        head_seq[dq] = seq
                                        head_pos[dq] = pos + 1
                                    down_queue.append(
                                        (cycle, my_pkt, seq, pos + 1)
                                    )
                                    node_buf[dn] += 1
                                    buffered_total += 1
                                    active_routers.add(dn)
                                    if (
                                        seg_of[dn] == cur_seg
                                        and dn > node
                                        and dn not in swept
                                    ):
                                        insort(sweep, dn, spos + 1)
                                        swept.add(dn)
                                        sweep_len += 1
                                else:
                                    ds = seg_of[dn]
                                    batch = out_flits.get(ds)
                                    if batch is None:
                                        batch = out_flits[ds] = []
                                    batch.append((di, vc, my_pkt, seq, pos + 1))
                                if seq == pkt_last[my_pkt]:
                                    owner[pl] = -1
                                    owner_pkt[pl] = -1
                                    port_owned[p] -= 1
                                    node_owned[node] -= 1
                            vc_rr[p] = vc + 1 if vc + 1 < L else 0
                            progressed = True
                            break
                        if not progressed:
                            break
                    if advanced:
                        tokens[p] = tk
                        moved += advanced
                        for oq in popped:
                            if head_enter[oq] <= limit and head_seq[oq] == 0:
                                out = pkt_outs[head_slot[oq]][head_pos[oq]]
                                vc = oq % L
                                if requested is None:
                                    requested = {out: {vc}}
                                elif out in requested:
                                    requested[out].add(vc)
                                else:
                                    requested[out] = {vc}
                spos += 1

            for node in sweep:
                if node_buf[node] == 0 and node_owned[node] == 0:
                    active_routers.discard(node)

            for k in out_remote[cur_seg]:
                peer_out[seg_shard[k]].put(
                    (
                        cur_seg,
                        k,
                        cycle,
                        out_flits.get(k, ()),
                        out_credits.get(k, ()),
                    )
                )

        if moved or inbound:
            last_progress = cycle
        elif cycle - last_progress > DEADLOCK_WINDOW and buffered_total > 0:
            raise SimulationError(
                f"deadlock: no flit moved since cycle {last_progress} "
                f"with {buffered_total} flits buffered"
            )
        cycle += 1

    return _payload(
        plan,
        shard,
        state,
        pkt_ids,
        injected_by_slot,
        delivered,
        trace_events,
        trace_attempts,
    )
