"""The cycle-accurate engine: per-cycle scan, with the active-set fast loop.

Per cycle: traffic sources create packets (handed to their NI), NIs inject
one flit each into their router's local port, then every router advances its
output ports (arbitration, wormhole forwarding, link serialization, credit
flow control).  This is the bit-exact reference the event engine is
property-tested against.

Two variants share the semantics:

* the seed's full scan — every source, NI and router, every cycle;
* the PR-1 active-set loop — skip idle routers/NIs and fast-forward fully
  idle stretches, provably without changing a single flit movement.

A watchdog aborts runs where no flit moves for a long stretch while traffic
is in flight (wormhole + arbitrary multi-path source routing is not
provably deadlock-free; at the evaluated loads deadlock does not occur, but
silent hangs must not masquerade as results).
"""

from __future__ import annotations

import bisect
import heapq
from typing import TYPE_CHECKING

from repro import fastpath
from repro.errors import SimulationError
from repro.simnoc.engines.base import register_engine
from repro.simnoc.router import LOCAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.simulator import Simulator

#: Cycles without any flit movement (while flits are in flight) that count
#: as a deadlock.
DEADLOCK_WINDOW = 50_000


@register_engine("cycle")
class CycleEngine:
    """Cycle-accurate time: dispatches to the active-set or full-scan loop.

    ``sim.active_set`` selects the variant (None follows the global
    fast-path switch; the full scan is the reference oracle the
    equivalence tests compare against).
    """

    name = "cycle"

    def run(self, sim: "Simulator") -> None:
        use_active = (
            sim.active_set
            if sim.active_set is not None
            else fastpath.fast_paths_enabled()
        )
        if use_active:
            self._run_active_set(sim)
        else:
            self._run_full_scan(sim)

    def _run_full_scan(self, sim: "Simulator") -> None:
        """The seed's cycle loop: every source, NI and router, every cycle."""
        network = sim.network
        config = sim.config
        measure_start = config.warmup_cycles
        measure_end = config.warmup_cycles + config.measure_cycles
        last_progress = 0

        trace = sim.trace

        def deliver(from_node: int, to_key: int, flit, cycle: int) -> None:
            if trace is not None:
                trace.record(from_node, to_key, flit, cycle)
            if to_key == LOCAL:
                network.interfaces[from_node].eject(flit, cycle)
            else:
                network.routers[to_key].inputs[from_node].push(flit, cycle)

        for cycle in range(config.total_cycles):
            moved = 0
            for source in network.sources:
                for packet in source.packets_for_cycle(cycle, sim.next_packet_id):
                    packet.measured = measure_start <= cycle < measure_end
                    sim.all_packets.append(packet)
                    network.interfaces[packet.src_node].offer_packet(packet)
            for node in sorted(network.interfaces):
                moved += network.interfaces[node].inject(cycle, LOCAL)
            for node in sorted(network.routers):
                moved += network.routers[node].step(cycle, deliver)

            if moved:
                last_progress = cycle
            elif (
                cycle - last_progress > DEADLOCK_WINDOW
                and network.total_buffered_flits() > 0
            ):
                raise SimulationError(
                    f"deadlock: no flit moved since cycle {last_progress} "
                    f"with {network.total_buffered_flits()} flits buffered"
                )

    def _run_active_set(self, sim: "Simulator") -> None:
        """Cycle loop that only touches components with pending work.

        Equivalence with :meth:`_run_full_scan` (the invariants the property
        tests pin down):

        * an NI with an empty injection queue and a router with no buffered
          flits and no allocated wormhole are no-ops in the full scan except
          for token refills, which ``OutputPort.refill_to`` replays
          bit-exactly on re-activation;
        * routers are stepped in ascending node id; a flit delivered
          downstream mid-cycle activates its receiver, inserting it into the
          current sweep iff its id is still ahead (the full scan would have
          stepped it later this same cycle) — receivers behind the sweep
          point were stepped as no-ops already and wake next cycle;
        * sources sit in a heap keyed by their next firing cycle, so a
          completely idle network (no backlog, no flits in flight) jumps
          straight to the next injection without touching anything.
        """
        network = sim.network
        config = sim.config
        measure_start = config.warmup_cycles
        measure_end = config.warmup_cycles + config.measure_cycles
        total_cycles = config.total_cycles
        last_progress = 0

        trace = sim.trace
        routers = network.routers
        interfaces = network.interfaces

        active_routers: set[int] = set()
        active_nis: set[int] = set()

        # Per-cycle router sweep state, shared with the deliver closure.
        sweep: list[int] = []
        swept: set[int] = set()
        sweep_pos = [0]

        def deliver(from_node: int, to_key: int, flit, cycle: int) -> None:
            if trace is not None:
                trace.record(from_node, to_key, flit, cycle)
            if to_key == LOCAL:
                interfaces[from_node].eject(flit, cycle)
                return
            routers[to_key].inputs[from_node].push(flit, cycle)
            active_routers.add(to_key)
            if to_key not in swept and to_key > sweep[sweep_pos[0]]:
                bisect.insort(sweep, to_key, lo=sweep_pos[0] + 1)
                swept.add(to_key)

        event_heap = [
            (source.next_event_cycle, index)
            for index, source in enumerate(network.sources)
        ]
        heapq.heapify(event_heap)

        cycle = 0
        while cycle < total_cycles:
            if not active_routers and not active_nis:
                # Fully idle: no flit buffered or in flight anywhere, so
                # nothing can happen before the next source fires.
                if not event_heap or event_heap[0][0] >= total_cycles:
                    break
                if event_heap[0][0] > cycle:
                    cycle = event_heap[0][0]

            while event_heap and event_heap[0][0] <= cycle:
                _, index = heapq.heappop(event_heap)
                source = network.sources[index]
                for packet in source.packets_for_cycle(cycle, sim.next_packet_id):
                    packet.measured = measure_start <= cycle < measure_end
                    sim.all_packets.append(packet)
                    interfaces[packet.src_node].offer_packet(packet)
                    active_nis.add(packet.src_node)
                heapq.heappush(event_heap, (source.next_event_cycle, index))

            moved = 0
            if active_nis:
                drained = []
                for node in sorted(active_nis):
                    interface = interfaces[node]
                    injected = interface.inject(cycle, LOCAL)
                    if injected:
                        moved += injected
                        active_routers.add(node)
                    if not interface.backlog_flits:
                        drained.append(node)
                for node in drained:
                    active_nis.discard(node)

            if active_routers:
                sweep = sorted(active_routers)
                swept = set(sweep)
                sweep_pos[0] = 0
                while sweep_pos[0] < len(sweep):
                    moved += routers[sweep[sweep_pos[0]]].step(cycle, deliver)
                    sweep_pos[0] += 1
                for node in sweep:
                    if routers[node].is_idle():
                        active_routers.discard(node)

            if moved:
                last_progress = cycle
            elif (
                cycle - last_progress > DEADLOCK_WINDOW
                and network.total_buffered_flits() > 0
            ):
                raise SimulationError(
                    f"deadlock: no flit moved since cycle {last_progress} "
                    f"with {network.total_buffered_flits()} flits buffered"
                )
            cycle += 1
