"""The vector engine: structure-of-arrays state, array kernels per cycle.

The cycle engine is object-oriented: every step is a cascade of method
calls, dict lookups and attribute chains over ``Router``/``InputPort``/
``OutputPort`` instances, and the hottest probe of all — "where does this
head flit go next?" — is an ``O(path length)`` ``list.index`` search per
look.  The event engine sidesteps that work at low load by skipping dead
cycles, but near saturation there are no dead cycles to skip and it
degenerates to the same per-object dispatch plus heap overhead.  Saturation
sweeps are exactly where the paper's bandwidth-constraint story lives, so
this engine attacks the constant factor instead of the cycle count.

At build time the whole network is flattened into preallocated
structure-of-arrays state:

* every input FIFO lane and output port gets a flat integer index; wiring
  (downstream input, upstream feeder, ejection) becomes int arrays;
* token buckets live in ``numpy`` float64 arrays — the per-cycle refill
  ``t = min(t + rate, cap)`` of *all* ports is two in-place ufunc calls
  instead of one method call per port (idle gaps replay the same update
  per skipped cycle, stopping once every bucket saturates at its cap,
  which is a fixpoint of the update — bit-identical to the per-port
  catch-up in :func:`repro.simnoc.router.refill_bucket_to`);
* head-of-line state (enter cycle, packet slot, sequence, hop position) is
  mirrored into flat arrays maintained on push/pop, so the per-cycle
  visibility probe reads two ints instead of unpacking a deque head;
* credits, wormhole owners, round-robin pointers and per-port flit
  counters are flat Python lists indexed by those same port ids;
* each packet is registered once at creation with its *resolved route*:
  a per-hop array of flat output-port indices, so the per-probe
  ``path.index`` search becomes a single ``O(1)`` indexed load.

The per-cycle advance then runs as one monolithic loop over the flat
state with zero per-flit method calls.  Wormhole arbitration is
irreducibly sequential (router order within a cycle is observable through
same-cycle credit returns), so the movement phase replays the cycle
engine's exact sweep discipline — ascending node id, mid-cycle insertion
of downstream receivers, round-robin pointers updated only on successful
arbitration — over the flattened arrays.

One deliberate relaxation keeps the request bookkeeping cheap: after a
port moves flits, the cycle engine recomputes the full request set; this
engine only re-examines the single input lane that was popped.  The
maintained set is therefore a *superset* of the true one (entries for
already-consumed heads linger), which is harmless by construction — the
set only gates whether an ownerless port *attempts* arbitration, and an
attempt with no actual requesting head fails without mutating any state
(round-robin pointers move on success only).

Equivalence contract (property-tested in ``tests/properties``): identical
reports *and* identical flit traces to the cycle engine, for both router
models (``wormhole`` and ``wormhole-vc``), below, at and above saturation.
The loop structure mirrors the proven active-set variant of the cycle
engine statement for statement; only the data representation differs.

**JIT tier.** On top of the flattened representation sits a compiled
kernel tier (:mod:`repro.simnoc.engines.jit`): when a numba or C backend
is available, ``run`` flattens the whole simulation — including the
precomputed open-loop injection schedule — into a
:class:`~repro.simnoc.engines.flat_kernel.KernelProgram` and advances it
in one compiled call, falling back to the interpreted loops below when no
backend resolves (or ``REPRO_NO_JIT=1``).  :func:`run_replicas` batches
many independent simulators into a single compiled invocation per router
model — the engine-level face of ``run_batch(executor="replica")``.
Every tier is bit-identical to the cycle engine on reports and traces.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.simnoc.engines.base import register_engine
from repro.simnoc.engines.cycle import DEADLOCK_WINDOW
from repro.simnoc.router import LOCAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.simulator import Simulator

#: Router models this engine knows how to flatten.
SUPPORTED_ROUTER_MODELS = ("wormhole", "wormhole-vc")

#: Head-mirror sentinel for an empty queue (no enter cycle can reach it).
_EMPTY = 1 << 60


class _FlitRef:
    """Just enough flit for :meth:`repro.simnoc.trace.TraceRecorder.record`."""

    __slots__ = ("packet", "sequence")

    def __init__(self, packet, sequence: int) -> None:
        self.packet = packet
        self.sequence = sequence


def _reject_unsupported_model(model: str) -> None:
    if model not in SUPPORTED_ROUTER_MODELS:
        raise SimulationError(
            f"vector engine flattens only the built-in router models "
            f"({', '.join(SUPPORTED_ROUTER_MODELS)}); router model "
            f"{model!r} must run on the 'cycle' or 'event' engine"
        )


@register_engine("vector")
class VectorEngine:
    """Structure-of-arrays backend for the built-in wormhole router models."""

    name = "vector"

    def run(self, sim: "Simulator") -> None:
        model = sim.network.config.effective_router_model
        _reject_unsupported_model(model)
        vc_mode = model == "wormhole-vc"

        from repro.simnoc.engines.flat_kernel import (
            KernelProgram,
            kernel_unsupported,
        )
        from repro.simnoc.engines.jit import resolve_backend

        backend, _ = resolve_backend()
        if backend is not None and kernel_unsupported(sim, vc_mode) is None:
            program = KernelProgram(sim, vc_mode)
            backend.run([program])
            program.finish(sim)
            return

        state = _FlatState(sim, vc_mode=vc_mode)
        if state.vc_mode:
            state.run_vc(sim)
        else:
            state.run_plain(sim)
        state.writeback(sim)


def run_replicas(sims: list["Simulator"]) -> list[BaseException | None]:
    """Advance many independent simulators as one batched kernel call.

    The compiled-replica face of the engine layer: every simulator that
    the kernel tier supports is flattened to a
    :class:`~repro.simnoc.engines.flat_kernel.KernelProgram` and the whole
    set advances in a single ``advance_batch`` invocation per router model
    present; the rest (no backend resolved, unsupported corner) run
    one-at-a-time through :class:`VectorEngine`, which is bit-identical.

    Per-slot isolation: one replica deadlocking (or failing to flatten)
    must not poison its batch-mates, so errors come back positionally —
    the returned list holds ``None`` for success or the exception for
    that slot, aligned with ``sims``.  Callers build reports afterwards
    via each simulator's ``_build_report``.
    """
    from repro.simnoc.engines.flat_kernel import (
        KernelProgram,
        kernel_unsupported,
    )
    from repro.simnoc.engines.jit import resolve_backend

    backend, _ = resolve_backend()
    errors: list[BaseException | None] = [None] * len(sims)
    batched: list[tuple[int, KernelProgram]] = []
    for index, sim in enumerate(sims):
        try:
            model = sim.network.config.effective_router_model
            _reject_unsupported_model(model)
            vc_mode = model == "wormhole-vc"
            if backend is None or kernel_unsupported(sim, vc_mode) is not None:
                VectorEngine().run(sim)
            else:
                batched.append((index, KernelProgram(sim, vc_mode)))
        except SimulationError as exc:
            errors[index] = exc
    if batched:
        backend.run([program for _, program in batched])
        for index, program in batched:
            try:
                program.finish(sims[index])
            except SimulationError as exc:
                errors[index] = exc
    return errors


class _FlatState:
    """The flattened network: every dynamic quantity lives in a flat array.

    Port indexing: input port ``i`` of lane ``vc`` is ``queues[i * L + vc]``
    (``L == 1`` for the plain wormhole router); output port ``p``'s per-lane
    state is at ``p * L + vc``.  Node-keyed side tables (``node_ins``,
    ``node_outs``, counters) use the original node ids, which keeps the
    engine independent of how the topology numbers its mesh.
    """

    def __init__(self, sim: "Simulator", vc_mode: bool) -> None:
        network = sim.network
        config = network.config
        self.vc_mode = vc_mode
        self.num_vcs = config.num_vcs if vc_mode else 1
        L = self.num_vcs

        self.nodes = sorted(network.routers)
        in_index: dict[tuple[int, int], int] = {}
        out_index: dict[tuple[int, int], int] = {}
        in_specs: list[tuple[int, int]] = []  # (node, from_key)
        out_specs: list[tuple[int, int]] = []  # (node, to_key)
        for node in self.nodes:
            router = network.routers[node]
            for key in router.input_order:
                in_index[(node, key)] = len(in_specs)
                in_specs.append((node, key))
            for key in router.output_order:
                out_index[(node, key)] = len(out_specs)
                out_specs.append((node, key))
        self.in_index = in_index
        self.out_index = out_index
        self.out_specs = out_specs

        num_in = len(in_specs)
        num_out = len(out_specs)

        # --- input side ---------------------------------------------------
        self.queues: list = [deque() for _ in range(num_in * L)]
        #: Head-of-line mirrors, indexed like ``queues``; kept in sync on
        #: every pop and every push into an empty queue.
        self.head_enter: list[int] = [_EMPTY] * (num_in * L)
        self.head_slot: list[int] = [-1] * (num_in * L)
        self.head_seq: list[int] = [-1] * (num_in * L)
        self.head_pos: list[int] = [0] * (num_in * L)
        self.in_cap: list[int] = [0] * num_in
        self.in_feeder: list[int] = [-1] * num_in
        for i, (node, from_key) in enumerate(in_specs):
            port = network.routers[node].inputs[from_key]
            self.in_cap[i] = port.vc_capacity if vc_mode else port.capacity
            if from_key != LOCAL:
                self.in_feeder[i] = out_index[(from_key, node)]
            if port.occupancy:
                raise SimulationError(
                    "vector engine requires a freshly built network "
                    f"(node {node} port {from_key} has buffered flits)"
                )

        # --- output side --------------------------------------------------
        rates = np.empty(num_out, dtype=np.float64)
        tokens = np.empty(num_out, dtype=np.float64)
        self.credits: list[float] = [0.0] * (num_out * L)
        self.owner: list[int] = [-1] * (num_out * L)
        self.owner_pkt: list[int] = [-1] * (num_out * L)
        self.rr_in: list[int] = [0] * (num_out * L)
        self.vc_rr: list[int] = [0] * num_out
        self.port_owned: list[int] = [0] * num_out
        self.carried: list[int] = [0] * num_out
        self.out_dest_in: list[int] = [-1] * num_out
        self.out_dest_node: list[int] = [0] * num_out
        self.out_to_key: list[int] = [0] * num_out
        for p, (node, to_key) in enumerate(out_specs):
            port = network.routers[node].outputs[to_key]
            rates[p] = port.rate
            tokens[p] = port.tokens
            self.out_to_key[p] = to_key
            if to_key != LOCAL:
                self.out_dest_in[p] = in_index[(to_key, node)]
                self.out_dest_node[p] = to_key
            else:
                self.out_dest_node[p] = node
            if vc_mode:
                for vc in range(L):
                    self.credits[p * L + vc] = port.vc_credits[vc]
                    self.rr_in[p * L + vc] = port.vc_rr_inputs[vc]
                self.vc_rr[p] = port.vc_rr
                fresh = all(o is None for o in port.vc_owner)
            else:
                self.credits[p] = port.credits
                self.rr_in[p] = port.rr_pointer
                fresh = port.owner is None
            self.carried[p] = port.flits_carried
            if not fresh or port.last_refill != -1:
                raise SimulationError(
                    "vector engine requires a freshly built network "
                    f"(node {node} output {to_key} already ran)"
                )
        self.out_rates = rates
        self.out_caps = np.maximum(1.0, rates) + 1.0
        self.out_tokens = tokens

        # --- per-node views (lists indexed by node id) --------------------
        size = max(self.nodes) + 1
        self.node_ins: list = [()] * size
        self.node_outs: list = [()] * size
        self.local_in: list[int] = [-1] * size
        for node in self.nodes:
            router = network.routers[node]
            self.node_ins[node] = [in_index[(node, key)] for key in router.input_order]
            self.node_outs[node] = [
                out_index[(node, key)] for key in router.output_order
            ]
            self.local_in[node] = in_index[(node, LOCAL)]
        self.node_buf: list[int] = [0] * size
        self.node_owned: list[int] = [0] * size

        # --- NI + packet tables -------------------------------------------
        self.ni_queue: list = [deque() for _ in range(size)]
        self.ni_injected: list[int] = [0] * size
        self.ni_ejected: list[int] = [0] * size
        self.delivered: list = [[] for _ in range(size)]
        self.pkt_objs: list = []
        self.pkt_outs: list[list[int]] = []
        self.pkt_last: list[int] = []
        self.pkt_vc: list[int] = []
        #: Memoized path -> flat-output-index route (flows reuse paths).
        self.route_cache: dict[tuple[int, ...], list[int]] = {}
        #: Last cycle the (vectorized) token refill ran; written back to the
        #: ports so a consumed network cannot silently be re-flattened.
        self.final_refill = -1

    # ------------------------------------------------------------------
    def resolve_route(self, path, packet_id: int) -> list[int]:
        """The path as flat output-port indices (memoized per path tuple)."""
        key = tuple(path)
        outs = self.route_cache.get(key)
        if outs is None:
            outs = []
            out_index = self.out_index
            last = len(path) - 1
            for hop, node in enumerate(path):
                to_key = LOCAL if hop == last else path[hop + 1]
                flat = out_index.get((node, to_key))
                if flat is None:
                    raise SimulationError(
                        f"node {node} has no output toward "
                        f"{'LOCAL' if to_key == LOCAL else to_key} "
                        f"(packet {packet_id})"
                    )
                outs.append(flat)
            self.route_cache[key] = outs
        return outs

    def offer_packet(self, packet) -> int:
        """Register a packet: resolve its route once, queue its flits."""
        vc = packet.commodity_index % self.num_vcs
        packet.vc = vc
        outs = self.resolve_route(packet.path, packet.packet_id)
        slot = len(self.pkt_objs)
        self.pkt_objs.append(packet)
        self.pkt_outs.append(outs)
        self.pkt_last.append(packet.num_flits - 1)
        self.pkt_vc.append(vc)
        self.ni_queue[packet.src_node].extend(
            (slot, seq) for seq in range(packet.num_flits)
        )
        return slot

    # ------------------------------------------------------------------
    def run_plain(self, sim: "Simulator") -> None:
        """The plain-wormhole advance loop (``num_vcs == 1`` layout)."""
        network = sim.network
        config = network.config
        trace = sim.trace
        delay = config.router_delay
        measure_start = config.warmup_cycles
        measure_end = measure_start + config.measure_cycles
        total_cycles = config.total_cycles

        queues = self.queues
        head_enter = self.head_enter
        head_slot = self.head_slot
        head_seq = self.head_seq
        head_pos = self.head_pos
        in_cap = self.in_cap
        feeder = self.in_feeder
        tokens = self.out_tokens
        rates = self.out_rates
        caps = self.out_caps
        credits = self.credits
        owner = self.owner
        owner_pkt = self.owner_pkt
        rr_in = self.rr_in
        carried = self.carried
        dest_in = self.out_dest_in
        dest_node = self.out_dest_node
        out_to_key = self.out_to_key
        node_ins = self.node_ins
        node_outs = self.node_outs
        local_in = self.local_in
        node_buf = self.node_buf
        node_owned = self.node_owned
        ni_queue = self.ni_queue
        ni_injected = self.ni_injected
        ni_ejected = self.ni_ejected
        delivered = self.delivered
        pkt_objs = self.pkt_objs
        pkt_outs = self.pkt_outs
        pkt_last = self.pkt_last
        offer = self.offer_packet
        next_packet_id = sim.next_packet_id
        all_packets_append = sim.all_packets.append

        sources = network.sources
        heappush = heapq.heappush
        heappop = heapq.heappop
        event_heap = [
            (source.next_event_cycle, index) for index, source in enumerate(sources)
        ]
        heapq.heapify(event_heap)

        np_add = np.add
        np_minimum = np.minimum

        active_routers: set[int] = set()
        active_nis: set[int] = set()
        buffered_total = 0
        last_progress = 0
        last_refill = -1

        cycle = 0
        while cycle < total_cycles:
            if not active_routers and not active_nis:
                # Fully idle: nothing can happen before the next injection.
                if not event_heap or event_heap[0][0] >= total_cycles:
                    break
                if event_heap[0][0] > cycle:
                    cycle = event_heap[0][0]

            while event_heap and event_heap[0][0] <= cycle:
                _, index = heappop(event_heap)
                source = sources[index]
                for packet in source.packets_for_cycle(cycle, next_packet_id):
                    packet.measured = measure_start <= cycle < measure_end
                    all_packets_append(packet)
                    offer(packet)
                    active_nis.add(packet.src_node)
                heappush(event_heap, (source.next_event_cycle, index))

            moved = 0
            if active_nis:
                drained = None
                for node in sorted(active_nis):
                    backlog = ni_queue[node]
                    if backlog:
                        li = local_in[node]
                        in_queue = queues[li]
                        if len(in_queue) < in_cap[li]:
                            slot, seq = backlog.popleft()
                            if seq == 0:
                                packet = pkt_objs[slot]
                                if packet.injected_cycle is None:
                                    packet.injected_cycle = cycle
                            if not in_queue:
                                head_enter[li] = cycle
                                head_slot[li] = slot
                                head_seq[li] = seq
                                head_pos[li] = 0
                            in_queue.append((cycle, slot, seq, 0))
                            node_buf[node] += 1
                            buffered_total += 1
                            ni_injected[node] += 1
                            moved += 1
                            active_routers.add(node)
                    if not backlog:
                        if drained is None:
                            drained = [node]
                        else:
                            drained.append(node)
                if drained:
                    for node in drained:
                        active_nis.discard(node)

            if active_routers:
                # Vectorized token refill: one `min(t + rate, cap)` update
                # per pending cycle across every port at once (identical to
                # the per-port replay; cap is a fixpoint, so once every
                # bucket saturates the remaining iterations are no-ops).
                pending = cycle - last_refill
                last_refill = cycle
                if pending == 1:
                    np_add(tokens, rates, out=tokens)
                    np_minimum(tokens, caps, out=tokens)
                else:
                    while pending > 0:
                        np_add(tokens, rates, out=tokens)
                        np_minimum(tokens, caps, out=tokens)
                        pending -= 1
                        if pending and (tokens == caps).all():
                            break

                limit = cycle - delay
                sweep = sorted(active_routers)
                swept = set(sweep)
                sweep_len = len(sweep)
                spos = 0
                while spos < sweep_len:
                    node = sweep[spos]
                    ins = node_ins[node]

                    requested = None
                    for i in ins:
                        if head_enter[i] <= limit and head_seq[i] == 0:
                            out = pkt_outs[head_slot[i]][head_pos[i]]
                            if requested is None:
                                requested = {out}
                            else:
                                requested.add(out)
                    if requested is None and node_owned[node] == 0:
                        # No visible head and no allocated worm: every port
                        # would be skipped (token refills already applied).
                        spos += 1
                        continue
                    nin = len(ins)

                    for p in node_outs[node]:
                        ow = owner[p]
                        if ow < 0:
                            if requested is None or p not in requested:
                                continue
                            start = rr_in[p]
                            for offset in range(nin):
                                j = start + offset
                                if j >= nin:
                                    j -= nin
                                i = ins[j]
                                if (
                                    head_enter[i] <= limit
                                    and head_seq[i] == 0
                                    and pkt_outs[head_slot[i]][head_pos[i]] == p
                                ):
                                    rr_in[p] = j + 1 if j + 1 < nin else 0
                                    owner[p] = i
                                    owner_pkt[p] = head_slot[i]
                                    node_owned[node] += 1
                                    ow = i
                                    break
                            if ow < 0:
                                continue

                        # Cheap list-backed checks first; the numpy token
                        # read is deferred until a flit could actually move
                        # (blocked worms dominate near saturation).
                        my_pkt = owner_pkt[p]
                        if (
                            credits[p] < 1.0
                            or head_enter[ow] > limit
                            or head_slot[ow] != my_pkt
                        ):
                            continue
                        tk = float(tokens[p])
                        if tk < 1.0:
                            continue
                        advanced = 0
                        my_queue = queues[ow]
                        my_last = pkt_last[my_pkt]
                        fdr = feeder[ow]
                        di = dest_in[p]
                        while (
                            tk >= 1.0
                            and credits[p] >= 1.0
                            and head_enter[ow] <= limit
                            and head_slot[ow] == my_pkt
                        ):
                            seq = head_seq[ow]
                            pos = head_pos[ow]
                            my_queue.popleft()
                            if my_queue:
                                (
                                    head_enter[ow],
                                    head_slot[ow],
                                    head_seq[ow],
                                    head_pos[ow],
                                ) = my_queue[0]
                            else:
                                head_enter[ow] = _EMPTY
                            node_buf[node] -= 1
                            buffered_total -= 1
                            if fdr >= 0:
                                credits[fdr] += 1.0
                            tk -= 1.0
                            credits[p] -= 1.0
                            carried[p] += 1
                            advanced += 1
                            if trace is not None:
                                trace.record(
                                    node,
                                    out_to_key[p],
                                    _FlitRef(pkt_objs[my_pkt], seq),
                                    cycle,
                                )
                            if di < 0:
                                ni_ejected[node] += 1
                                if seq == my_last:
                                    packet = pkt_objs[my_pkt]
                                    packet.delivered_cycle = cycle
                                    delivered[node].append(packet)
                                    owner[p] = -1
                                    owner_pkt[p] = -1
                                    node_owned[node] -= 1
                                    break
                            else:
                                dn = dest_node[p]
                                down_queue = queues[di]
                                if not down_queue:
                                    head_enter[di] = cycle
                                    head_slot[di] = my_pkt
                                    head_seq[di] = seq
                                    head_pos[di] = pos + 1
                                down_queue.append((cycle, my_pkt, seq, pos + 1))
                                node_buf[dn] += 1
                                buffered_total += 1
                                active_routers.add(dn)
                                if dn > node and dn not in swept:
                                    insort(sweep, dn, spos + 1)
                                    swept.add(dn)
                                    sweep_len += 1
                                if seq == my_last:
                                    owner[p] = -1
                                    owner_pkt[p] = -1
                                    node_owned[node] -= 1
                                    break
                        if advanced:
                            tokens[p] = tk
                            moved += advanced
                            # The pops may have exposed a new head at the
                            # owner input; later-ordered ports must see its
                            # request this same cycle.  (Entries for consumed
                            # heads may linger: a superset is harmless, see
                            # the module docstring.)
                            if head_enter[ow] <= limit and head_seq[ow] == 0:
                                out = pkt_outs[head_slot[ow]][head_pos[ow]]
                                if requested is None:
                                    requested = {out}
                                else:
                                    requested.add(out)
                    spos += 1

                for node in sweep:
                    if node_buf[node] == 0 and node_owned[node] == 0:
                        active_routers.discard(node)

            if moved:
                last_progress = cycle
            elif (
                cycle - last_progress > DEADLOCK_WINDOW
                and buffered_total > 0
            ):
                raise SimulationError(
                    f"deadlock: no flit moved since cycle {last_progress} "
                    f"with {buffered_total} flits buffered"
                )
            cycle += 1
        self.final_refill = last_refill

    # ------------------------------------------------------------------
    def run_vc(self, sim: "Simulator") -> None:
        """The VC-wormhole advance loop (``L`` lanes per physical port)."""
        network = sim.network
        config = network.config
        trace = sim.trace
        delay = config.router_delay
        measure_start = config.warmup_cycles
        measure_end = measure_start + config.measure_cycles
        total_cycles = config.total_cycles
        L = self.num_vcs

        queues = self.queues
        head_enter = self.head_enter
        head_slot = self.head_slot
        head_seq = self.head_seq
        head_pos = self.head_pos
        in_cap = self.in_cap
        feeder = self.in_feeder
        tokens = self.out_tokens
        rates = self.out_rates
        caps = self.out_caps
        credits = self.credits
        owner = self.owner
        owner_pkt = self.owner_pkt
        rr_in = self.rr_in
        vc_rr = self.vc_rr
        port_owned = self.port_owned
        carried = self.carried
        dest_in = self.out_dest_in
        dest_node = self.out_dest_node
        out_to_key = self.out_to_key
        node_ins = self.node_ins
        node_outs = self.node_outs
        local_in = self.local_in
        node_buf = self.node_buf
        node_owned = self.node_owned
        ni_queue = self.ni_queue
        ni_injected = self.ni_injected
        ni_ejected = self.ni_ejected
        delivered = self.delivered
        pkt_objs = self.pkt_objs
        pkt_outs = self.pkt_outs
        pkt_last = self.pkt_last
        pkt_vc = self.pkt_vc
        offer = self.offer_packet
        next_packet_id = sim.next_packet_id
        all_packets_append = sim.all_packets.append

        sources = network.sources
        heappush = heapq.heappush
        heappop = heapq.heappop
        event_heap = [
            (source.next_event_cycle, index) for index, source in enumerate(sources)
        ]
        heapq.heapify(event_heap)

        np_add = np.add
        np_minimum = np.minimum

        active_routers: set[int] = set()
        active_nis: set[int] = set()
        buffered_total = 0
        last_progress = 0
        last_refill = -1

        cycle = 0
        while cycle < total_cycles:
            if not active_routers and not active_nis:
                if not event_heap or event_heap[0][0] >= total_cycles:
                    break
                if event_heap[0][0] > cycle:
                    cycle = event_heap[0][0]

            while event_heap and event_heap[0][0] <= cycle:
                _, index = heappop(event_heap)
                source = sources[index]
                for packet in source.packets_for_cycle(cycle, next_packet_id):
                    packet.measured = measure_start <= cycle < measure_end
                    all_packets_append(packet)
                    offer(packet)
                    active_nis.add(packet.src_node)
                heappush(event_heap, (source.next_event_cycle, index))

            moved = 0
            if active_nis:
                drained = None
                for node in sorted(active_nis):
                    backlog = ni_queue[node]
                    if backlog:
                        slot, seq = backlog[0]
                        lane = pkt_vc[slot]
                        li = local_in[node]
                        lq = li * L + lane
                        in_queue = queues[lq]
                        if len(in_queue) < in_cap[li]:
                            backlog.popleft()
                            if seq == 0:
                                packet = pkt_objs[slot]
                                if packet.injected_cycle is None:
                                    packet.injected_cycle = cycle
                            if not in_queue:
                                head_enter[lq] = cycle
                                head_slot[lq] = slot
                                head_seq[lq] = seq
                                head_pos[lq] = 0
                            in_queue.append((cycle, slot, seq, 0))
                            node_buf[node] += 1
                            buffered_total += 1
                            ni_injected[node] += 1
                            moved += 1
                            active_routers.add(node)
                    if not backlog:
                        if drained is None:
                            drained = [node]
                        else:
                            drained.append(node)
                if drained:
                    for node in drained:
                        active_nis.discard(node)

            if active_routers:
                pending = cycle - last_refill
                last_refill = cycle
                if pending == 1:
                    np_add(tokens, rates, out=tokens)
                    np_minimum(tokens, caps, out=tokens)
                else:
                    while pending > 0:
                        np_add(tokens, rates, out=tokens)
                        np_minimum(tokens, caps, out=tokens)
                        pending -= 1
                        if pending and (tokens == caps).all():
                            break

                limit = cycle - delay
                sweep = sorted(active_routers)
                swept = set(sweep)
                sweep_len = len(sweep)
                spos = 0
                while spos < sweep_len:
                    node = sweep[spos]
                    ins = node_ins[node]

                    requested = None
                    for i in ins:
                        base = i * L
                        for vc in range(L):
                            iq = base + vc
                            if head_enter[iq] <= limit and head_seq[iq] == 0:
                                out = pkt_outs[head_slot[iq]][head_pos[iq]]
                                if requested is None:
                                    requested = {out: {vc}}
                                elif out in requested:
                                    requested[out].add(vc)
                                else:
                                    requested[out] = {vc}
                    if requested is None and node_owned[node] == 0:
                        # No visible lane head and no allocated worm: every
                        # port would be skipped (refills already applied).
                        spos += 1
                        continue
                    nin = len(ins)

                    for p in node_outs[node]:
                        wanted = None if requested is None else requested.get(p)
                        if wanted is None and port_owned[p] == 0:
                            continue
                        base_p = p * L
                        if wanted is not None:
                            # Lane allocation: each requested free lane
                            # arbitrates independently, ascending lane id.
                            for vc in sorted(wanted):
                                pl = base_p + vc
                                if owner[pl] >= 0:
                                    continue
                                start = rr_in[pl]
                                for offset in range(nin):
                                    j = start + offset
                                    if j >= nin:
                                        j -= nin
                                    iq = ins[j] * L + vc
                                    if (
                                        head_enter[iq] <= limit
                                        and head_seq[iq] == 0
                                        and pkt_outs[head_slot[iq]][head_pos[iq]] == p
                                    ):
                                        rr_in[pl] = j + 1 if j + 1 < nin else 0
                                        owner[pl] = ins[j]
                                        owner_pkt[pl] = head_slot[iq]
                                        port_owned[p] += 1
                                        node_owned[node] += 1
                                        break

                        # Switch traversal: the shared token budget
                        # round-robins across lanes flit by flit.  The numpy
                        # token read is deferred until a lane actually has a
                        # movable flit (blocked worms dominate at saturation).
                        advanced = 0
                        popped = None
                        di = dest_in[p]
                        dn = dest_node[p]
                        tk = -1.0
                        starved = False
                        while not starved:
                            progressed = False
                            start_vc = vc_rr[p]
                            for offset in range(L):
                                vc = start_vc + offset
                                if vc >= L:
                                    vc -= L
                                pl = base_p + vc
                                ow = owner[pl]
                                if ow < 0 or credits[pl] < 1.0:
                                    continue
                                oq = ow * L + vc
                                my_pkt = owner_pkt[pl]
                                if head_enter[oq] > limit or head_slot[oq] != my_pkt:
                                    continue
                                if tk < 0.0:
                                    tk = float(tokens[p])
                                if tk < 1.0:
                                    starved = True
                                    break
                                seq = head_seq[oq]
                                pos = head_pos[oq]
                                queue = queues[oq]
                                queue.popleft()
                                if queue:
                                    (
                                        head_enter[oq],
                                        head_slot[oq],
                                        head_seq[oq],
                                        head_pos[oq],
                                    ) = queue[0]
                                else:
                                    head_enter[oq] = _EMPTY
                                if popped is None:
                                    popped = {oq}
                                else:
                                    popped.add(oq)
                                node_buf[node] -= 1
                                buffered_total -= 1
                                fdr = feeder[ow]
                                if fdr >= 0:
                                    credits[fdr * L + vc] += 1.0
                                tk -= 1.0
                                credits[pl] -= 1.0
                                carried[p] += 1
                                advanced += 1
                                if trace is not None:
                                    trace.record(
                                        node,
                                        out_to_key[p],
                                        _FlitRef(pkt_objs[my_pkt], seq),
                                        cycle,
                                    )
                                if di < 0:
                                    ni_ejected[node] += 1
                                    if seq == pkt_last[my_pkt]:
                                        packet = pkt_objs[my_pkt]
                                        packet.delivered_cycle = cycle
                                        delivered[node].append(packet)
                                        owner[pl] = -1
                                        owner_pkt[pl] = -1
                                        port_owned[p] -= 1
                                        node_owned[node] -= 1
                                else:
                                    dq = di * L + vc
                                    down_queue = queues[dq]
                                    if not down_queue:
                                        head_enter[dq] = cycle
                                        head_slot[dq] = my_pkt
                                        head_seq[dq] = seq
                                        head_pos[dq] = pos + 1
                                    down_queue.append((cycle, my_pkt, seq, pos + 1))
                                    node_buf[dn] += 1
                                    buffered_total += 1
                                    active_routers.add(dn)
                                    if dn > node and dn not in swept:
                                        insort(sweep, dn, spos + 1)
                                        swept.add(dn)
                                        sweep_len += 1
                                    if seq == pkt_last[my_pkt]:
                                        owner[pl] = -1
                                        owner_pkt[pl] = -1
                                        port_owned[p] -= 1
                                        node_owned[node] -= 1
                                vc_rr[p] = vc + 1 if vc + 1 < L else 0
                                progressed = True
                                break
                            if not progressed:
                                break
                        if advanced:
                            tokens[p] = tk
                            moved += advanced
                            # Newly exposed heads on the popped lanes must be
                            # visible to later-ordered ports this same cycle
                            # (supersets are harmless, see module docstring).
                            for oq in popped:
                                if head_enter[oq] <= limit and head_seq[oq] == 0:
                                    out = pkt_outs[head_slot[oq]][head_pos[oq]]
                                    vc = oq % L
                                    if requested is None:
                                        requested = {out: {vc}}
                                    elif out in requested:
                                        requested[out].add(vc)
                                    else:
                                        requested[out] = {vc}
                    spos += 1

                for node in sweep:
                    if node_buf[node] == 0 and node_owned[node] == 0:
                        active_routers.discard(node)

            if moved:
                last_progress = cycle
            elif (
                cycle - last_progress > DEADLOCK_WINDOW
                and buffered_total > 0
            ):
                raise SimulationError(
                    f"deadlock: no flit moved since cycle {last_progress} "
                    f"with {buffered_total} flits buffered"
                )
            cycle += 1
        self.final_refill = last_refill

    # ------------------------------------------------------------------
    def writeback(self, sim: "Simulator") -> None:
        """Copy the observable counters back onto the model objects.

        The report builder reads delivered packets from the NIs and
        ``flits_carried`` from the router output ports.  Token-bucket state
        is also written back: it costs nothing and arms the freshness guard
        (``last_refill != -1``) against re-flattening a consumed network.
        """
        network = sim.network
        for p, (node, to_key) in enumerate(self.out_specs):
            port = network.routers[node].outputs[to_key]
            port.flits_carried = self.carried[p]
            port.tokens = float(self.out_tokens[p])
            port.last_refill = self.final_refill
        for node in self.nodes:
            interface = network.interfaces[node]
            interface.delivered_packets.extend(self.delivered[node])
            interface.flits_injected += self.ni_injected[node]
            interface.flits_ejected += self.ni_ejected[node]
