"""C mirror of the sweep kernels, compiled on demand with the system cc.

numba is the first rung of the JIT ladder, but plenty of deployment
environments (including CI fallback jobs and slim containers) have a C
toolchain and no numba wheels.  This module transliterates
:mod:`repro.simnoc.engines.kernels` statement for statement into C99,
compiles it once with whatever ``cc``/``gcc``/``clang`` is on PATH
(``-O2 -fPIC -shared``, **never** ``-ffast-math`` — token buckets must do
bit-identical IEEE double arithmetic), caches the shared object under
``~/.cache/repro-jit/`` keyed by a hash of the source, and binds it via
:mod:`ctypes`.

The only exported C symbol is ``advance_batch(R, vc_mode, <54 pointer
arrays>)``: each argument is an array of R pointers, one per replica,
aimed straight at that replica's :class:`~repro.simnoc.engines.
flat_kernel.KernelProgram` numpy arrays.  The kernels mutate the
program arrays in place — batching R replicas into one call copies
nothing, and a single replica is just ``R == 1``, so the
batched-replica path and the ordinary single-run path exercise the same
compiled code.

Everything here is optional: failure to find a compiler, to compile, or to
load raises :class:`BackendUnavailable`, and the JIT ladder steps down to
the interpreted vector engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.simnoc.engines.flat_kernel import ARG_FIELDS, FLOAT_FIELDS


class BackendUnavailable(RuntimeError):
    """This kernel backend cannot run here (missing compiler, bad build...)."""


#: Incremented every time a compiler is actually invoked (cache misses
#: only); the warm-up hygiene test pins this.
compile_events = 0


def _c_params(batched: bool = False) -> str:
    decls = []
    for name, _ in ARG_FIELDS:
        ctype = "double" if name in FLOAT_FIELDS else "int64_t"
        if batched:
            decls.append(f"{ctype}* const* {name}")
        else:
            decls.append(f"{ctype}* {name}")
    return ",\n    ".join(decls)


def _c_args(index: str) -> str:
    args = []
    for name, _ in ARG_FIELDS:
        args.append(f"{name}[{index}]")
    return ",\n        ".join(args)


_KERNEL_BODY_PLAIN = r"""
    const int64_t total_cycles = params[0];
    const int64_t delay = params[1];
    const int64_t qstride = params[3];
    const int64_t size = params[4];
    const int64_t num_out = params[6];
    const int64_t trace_cap = params[8];
    const int64_t deadlock_window = params[9];
    const int64_t INF = (int64_t)1 << 62;

    int64_t buffered_total = 0, last_progress = 0, last_refill = -1;
    int64_t tr_count = 0, tr_trunc = 0, dlv_count = 0, stamp = 0;
    int64_t active_count = 0;
    for (int64_t node = 0; node < size; ++node)
        if (active[node]) ++active_count;

    int64_t cycle = 0;
    while (cycle < total_cycles) {
        if (active_count == 0) {
            int64_t next_inj = INF;
            for (int64_t node = 0; node < size; ++node) {
                int64_t ptr = ni_ptr[node];
                if (ptr < ni_off[node + 1]) {
                    int64_t created = pkt_create[ni_slot[ptr]];
                    if (created < next_inj) next_inj = created;
                }
            }
            if (next_inj >= total_cycles) break;
            if (next_inj > cycle) cycle = next_inj;
        }
        int64_t moved = 0;
        for (int64_t node = 0; node < size; ++node) {
            int64_t ptr = ni_ptr[node];
            if (ptr >= ni_off[node + 1]) continue;
            int64_t slot = ni_slot[ptr];
            if (pkt_create[slot] > cycle) continue;
            int64_t li = local_in[node];
            if (q_len[li] >= in_cap[li]) continue;
            int64_t seq = ni_seq[ptr];
            ni_ptr[node] = ptr + 1;
            if (seq == 0 && pkt_injected[slot] < 0) pkt_injected[slot] = cycle;
            {
                int64_t tail = li * qstride + (q_head[li] + q_len[li]) % qstride;
                qb_enter[tail] = cycle;
                qb_slot[tail] = slot;
                qb_seq[tail] = seq;
                qb_pos[tail] = 0;
            }
            q_len[li] += 1;
            node_buf[node] += 1;
            ++buffered_total;
            ni_injected[node] += 1;
            ++moved;
            if (!active[node]) { active[node] = 1; ++active_count; }
        }
        if (active_count > 0) {
            int64_t pending = cycle - last_refill;
            last_refill = cycle;
            while (pending > 0) {
                int all_sat = 1;
                for (int64_t p = 0; p < num_out; ++p) {
                    double t = out_tokens[p] + out_rate[p];
                    if (t > out_cap[p]) t = out_cap[p];
                    out_tokens[p] = t;
                    if (t != out_cap[p]) all_sat = 0;
                }
                --pending;
                if (pending > 0 && all_sat) break;
            }
            int64_t limit = cycle - delay;
            for (int64_t node = 0; node < size; ++node)
                in_sweep[node] = active[node];
            for (int64_t node = 0; node < size; ++node) {
                if (!in_sweep[node]) continue;
                int64_t i0 = ins_off[node];
                int64_t nin = ins_off[node + 1] - i0;
                ++stamp;
                int have_req = 0;
                for (int64_t k = i0; k < i0 + nin; ++k) {
                    int64_t i = ins_val[k];
                    if (q_len[i] > 0) {
                        int64_t h = i * qstride + q_head[i];
                        if (qb_enter[h] <= limit && qb_seq[h] == 0) {
                            req_stamp[route_val[route_off[qb_slot[h]] + qb_pos[h]]] = stamp;
                            have_req = 1;
                        }
                    }
                }
                if (!have_req && node_owned[node] == 0) continue;
                for (int64_t kp = outs_off[node]; kp < outs_off[node + 1]; ++kp) {
                    int64_t p = outs_val[kp];
                    int64_t ow = owner[p];
                    if (ow < 0) {
                        if (req_stamp[p] != stamp) continue;
                        int64_t start = rr_in[p];
                        for (int64_t offset = 0; offset < nin; ++offset) {
                            int64_t j = start + offset;
                            if (j >= nin) j -= nin;
                            int64_t i = ins_val[i0 + j];
                            if (q_len[i] > 0) {
                                int64_t h = i * qstride + q_head[i];
                                if (qb_enter[h] <= limit && qb_seq[h] == 0 &&
                                    route_val[route_off[qb_slot[h]] + qb_pos[h]] == p) {
                                    rr_in[p] = (j + 1 < nin) ? j + 1 : 0;
                                    owner[p] = i;
                                    owner_pkt[p] = qb_slot[h];
                                    node_owned[node] += 1;
                                    ow = i;
                                    break;
                                }
                            }
                        }
                        if (ow < 0) continue;
                    }
                    int64_t my_pkt = owner_pkt[p];
                    if (credits[p] < 1.0 || q_len[ow] == 0) continue;
                    {
                        int64_t h = ow * qstride + q_head[ow];
                        if (qb_enter[h] > limit || qb_slot[h] != my_pkt) continue;
                    }
                    double tk = out_tokens[p];
                    if (tk < 1.0) continue;
                    int64_t advanced = 0;
                    int64_t my_last = pkt_last[my_pkt];
                    int64_t fdr = in_feeder[ow];
                    int64_t di = dest_in[p];
                    for (;;) {
                        if (tk < 1.0 || credits[p] < 1.0 || q_len[ow] == 0) break;
                        int64_t h = ow * qstride + q_head[ow];
                        if (qb_enter[h] > limit || qb_slot[h] != my_pkt) break;
                        int64_t seq = qb_seq[h];
                        int64_t pos = qb_pos[h];
                        q_head[ow] = (q_head[ow] + 1) % qstride;
                        q_len[ow] -= 1;
                        node_buf[node] -= 1;
                        --buffered_total;
                        if (fdr >= 0) credits[fdr] += 1.0;
                        tk -= 1.0;
                        credits[p] -= 1.0;
                        carried[p] += 1;
                        ++advanced;
                        if (trace_cap > 0) {
                            if (tr_count < trace_cap) {
                                tr_node[tr_count] = node;
                                tr_tokey[tr_count] = out_tokey[p];
                                tr_slot[tr_count] = my_pkt;
                                tr_seq[tr_count] = seq;
                                tr_cycle[tr_count] = cycle;
                                ++tr_count;
                            } else {
                                tr_trunc = 1;
                            }
                        }
                        if (di < 0) {
                            ni_ejected[node] += 1;
                            if (seq == my_last) {
                                pkt_delivered[my_pkt] = cycle;
                                dlv_node[dlv_count] = node;
                                dlv_slot[dlv_count] = my_pkt;
                                ++dlv_count;
                                owner[p] = -1;
                                owner_pkt[p] = -1;
                                node_owned[node] -= 1;
                                break;
                            }
                        } else {
                            int64_t dn = dest_node[p];
                            int64_t tail = di * qstride + (q_head[di] + q_len[di]) % qstride;
                            qb_enter[tail] = cycle;
                            qb_slot[tail] = my_pkt;
                            qb_seq[tail] = seq;
                            qb_pos[tail] = pos + 1;
                            q_len[di] += 1;
                            node_buf[dn] += 1;
                            ++buffered_total;
                            if (!active[dn]) { active[dn] = 1; ++active_count; }
                            in_sweep[dn] = 1;
                            if (seq == my_last) {
                                owner[p] = -1;
                                owner_pkt[p] = -1;
                                node_owned[node] -= 1;
                                break;
                            }
                        }
                    }
                    if (advanced > 0) {
                        out_tokens[p] = tk;
                        moved += advanced;
                        if (q_len[ow] > 0) {
                            int64_t h = ow * qstride + q_head[ow];
                            if (qb_enter[h] <= limit && qb_seq[h] == 0)
                                req_stamp[route_val[route_off[qb_slot[h]] + qb_pos[h]]] = stamp;
                        }
                    }
                }
            }
            for (int64_t node = 0; node < size; ++node) {
                if (in_sweep[node]) {
                    if (node_buf[node] == 0 && node_owned[node] == 0 && active[node]) {
                        active[node] = 0;
                        --active_count;
                    }
                    in_sweep[node] = 0;
                }
            }
        }
        if (moved > 0) {
            last_progress = cycle;
        } else if (cycle - last_progress > deadlock_window && buffered_total > 0) {
            result[0] = 1;
            result[1] = last_progress;
            result[2] = buffered_total;
            result[3] = last_refill;
            result[4] = tr_count;
            result[5] = tr_trunc;
            result[6] = dlv_count;
            return;
        }
        ++cycle;
    }
    result[0] = 0;
    result[1] = last_progress;
    result[2] = buffered_total;
    result[3] = last_refill;
    result[4] = tr_count;
    result[5] = tr_trunc;
    result[6] = dlv_count;
"""


_KERNEL_BODY_VC = r"""
    const int64_t total_cycles = params[0];
    const int64_t delay = params[1];
    const int64_t L = params[2];
    const int64_t qstride = params[3];
    const int64_t size = params[4];
    const int64_t num_out = params[6];
    const int64_t trace_cap = params[8];
    const int64_t deadlock_window = params[9];
    const int64_t INF = (int64_t)1 << 62;

    int64_t buffered_total = 0, last_progress = 0, last_refill = -1;
    int64_t tr_count = 0, tr_trunc = 0, dlv_count = 0, stamp = 0;
    int64_t active_count = 0;
    int64_t popped[64];
    for (int64_t node = 0; node < size; ++node)
        if (active[node]) ++active_count;

    int64_t cycle = 0;
    while (cycle < total_cycles) {
        if (active_count == 0) {
            int64_t next_inj = INF;
            for (int64_t node = 0; node < size; ++node) {
                int64_t ptr = ni_ptr[node];
                if (ptr < ni_off[node + 1]) {
                    int64_t created = pkt_create[ni_slot[ptr]];
                    if (created < next_inj) next_inj = created;
                }
            }
            if (next_inj >= total_cycles) break;
            if (next_inj > cycle) cycle = next_inj;
        }
        int64_t moved = 0;
        for (int64_t node = 0; node < size; ++node) {
            int64_t ptr = ni_ptr[node];
            if (ptr >= ni_off[node + 1]) continue;
            int64_t slot = ni_slot[ptr];
            if (pkt_create[slot] > cycle) continue;
            int64_t lane = pkt_vcl[slot];
            int64_t li = local_in[node];
            int64_t lq = li * L + lane;
            if (q_len[lq] >= in_cap[li]) continue;
            int64_t seq = ni_seq[ptr];
            ni_ptr[node] = ptr + 1;
            if (seq == 0 && pkt_injected[slot] < 0) pkt_injected[slot] = cycle;
            {
                int64_t tail = lq * qstride + (q_head[lq] + q_len[lq]) % qstride;
                qb_enter[tail] = cycle;
                qb_slot[tail] = slot;
                qb_seq[tail] = seq;
                qb_pos[tail] = 0;
            }
            q_len[lq] += 1;
            node_buf[node] += 1;
            ++buffered_total;
            ni_injected[node] += 1;
            ++moved;
            if (!active[node]) { active[node] = 1; ++active_count; }
        }
        if (active_count > 0) {
            int64_t pending = cycle - last_refill;
            last_refill = cycle;
            while (pending > 0) {
                int all_sat = 1;
                for (int64_t p = 0; p < num_out; ++p) {
                    double t = out_tokens[p] + out_rate[p];
                    if (t > out_cap[p]) t = out_cap[p];
                    out_tokens[p] = t;
                    if (t != out_cap[p]) all_sat = 0;
                }
                --pending;
                if (pending > 0 && all_sat) break;
            }
            int64_t limit = cycle - delay;
            for (int64_t node = 0; node < size; ++node)
                in_sweep[node] = active[node];
            for (int64_t node = 0; node < size; ++node) {
                if (!in_sweep[node]) continue;
                int64_t i0 = ins_off[node];
                int64_t nin = ins_off[node + 1] - i0;
                ++stamp;
                int have_req = 0;
                for (int64_t k = i0; k < i0 + nin; ++k) {
                    int64_t base = ins_val[k] * L;
                    for (int64_t vc = 0; vc < L; ++vc) {
                        int64_t iq = base + vc;
                        if (q_len[iq] > 0) {
                            int64_t h = iq * qstride + q_head[iq];
                            if (qb_enter[h] <= limit && qb_seq[h] == 0) {
                                int64_t out = route_val[route_off[qb_slot[h]] + qb_pos[h]];
                                if (req_stamp[out] != stamp) {
                                    req_stamp[out] = stamp;
                                    req_vcs[out] = 0;
                                }
                                req_vcs[out] |= (int64_t)1 << vc;
                                have_req = 1;
                            }
                        }
                    }
                }
                if (!have_req && node_owned[node] == 0) continue;
                for (int64_t kp = outs_off[node]; kp < outs_off[node + 1]; ++kp) {
                    int64_t p = outs_val[kp];
                    int have_wanted = (req_stamp[p] == stamp);
                    if (!have_wanted && port_owned[p] == 0) continue;
                    int64_t base_p = p * L;
                    if (have_wanted) {
                        for (int64_t vc = 0; vc < L; ++vc) {
                            if ((req_vcs[p] & ((int64_t)1 << vc)) == 0) continue;
                            int64_t pl = base_p + vc;
                            if (owner[pl] >= 0) continue;
                            int64_t start = rr_in[pl];
                            for (int64_t offset = 0; offset < nin; ++offset) {
                                int64_t j = start + offset;
                                if (j >= nin) j -= nin;
                                int64_t iq = ins_val[i0 + j] * L + vc;
                                if (q_len[iq] > 0) {
                                    int64_t h = iq * qstride + q_head[iq];
                                    if (qb_enter[h] <= limit && qb_seq[h] == 0 &&
                                        route_val[route_off[qb_slot[h]] + qb_pos[h]] == p) {
                                        rr_in[pl] = (j + 1 < nin) ? j + 1 : 0;
                                        owner[pl] = ins_val[i0 + j];
                                        owner_pkt[pl] = qb_slot[h];
                                        port_owned[p] += 1;
                                        node_owned[node] += 1;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    int64_t advanced = 0;
                    int64_t n_popped = 0;
                    int64_t di = dest_in[p];
                    int64_t dn = dest_node[p];
                    double tk = -1.0;
                    int starved = 0;
                    while (!starved) {
                        int progressed = 0;
                        int64_t start_vc = vc_rr[p];
                        for (int64_t offset = 0; offset < L; ++offset) {
                            int64_t vc = start_vc + offset;
                            if (vc >= L) vc -= L;
                            int64_t pl = base_p + vc;
                            int64_t ow = owner[pl];
                            if (ow < 0 || credits[pl] < 1.0) continue;
                            int64_t oq = ow * L + vc;
                            int64_t my_pkt = owner_pkt[pl];
                            if (q_len[oq] == 0) continue;
                            int64_t h = oq * qstride + q_head[oq];
                            if (qb_enter[h] > limit || qb_slot[h] != my_pkt) continue;
                            if (tk < 0.0) tk = out_tokens[p];
                            if (tk < 1.0) { starved = 1; break; }
                            int64_t seq = qb_seq[h];
                            int64_t pos = qb_pos[h];
                            q_head[oq] = (q_head[oq] + 1) % qstride;
                            q_len[oq] -= 1;
                            {
                                int seen = 0;
                                for (int64_t s = 0; s < n_popped; ++s)
                                    if (popped[s] == oq) { seen = 1; break; }
                                if (!seen) popped[n_popped++] = oq;
                            }
                            node_buf[node] -= 1;
                            --buffered_total;
                            {
                                int64_t fdr = in_feeder[ow];
                                if (fdr >= 0) credits[fdr * L + vc] += 1.0;
                            }
                            tk -= 1.0;
                            credits[pl] -= 1.0;
                            carried[p] += 1;
                            ++advanced;
                            if (trace_cap > 0) {
                                if (tr_count < trace_cap) {
                                    tr_node[tr_count] = node;
                                    tr_tokey[tr_count] = out_tokey[p];
                                    tr_slot[tr_count] = my_pkt;
                                    tr_seq[tr_count] = seq;
                                    tr_cycle[tr_count] = cycle;
                                    ++tr_count;
                                } else {
                                    tr_trunc = 1;
                                }
                            }
                            if (di < 0) {
                                ni_ejected[node] += 1;
                                if (seq == pkt_last[my_pkt]) {
                                    pkt_delivered[my_pkt] = cycle;
                                    dlv_node[dlv_count] = node;
                                    dlv_slot[dlv_count] = my_pkt;
                                    ++dlv_count;
                                    owner[pl] = -1;
                                    owner_pkt[pl] = -1;
                                    port_owned[p] -= 1;
                                    node_owned[node] -= 1;
                                }
                            } else {
                                int64_t dq = di * L + vc;
                                int64_t tail = dq * qstride + (q_head[dq] + q_len[dq]) % qstride;
                                qb_enter[tail] = cycle;
                                qb_slot[tail] = my_pkt;
                                qb_seq[tail] = seq;
                                qb_pos[tail] = pos + 1;
                                q_len[dq] += 1;
                                node_buf[dn] += 1;
                                ++buffered_total;
                                if (!active[dn]) { active[dn] = 1; ++active_count; }
                                in_sweep[dn] = 1;
                                if (seq == pkt_last[my_pkt]) {
                                    owner[pl] = -1;
                                    owner_pkt[pl] = -1;
                                    port_owned[p] -= 1;
                                    node_owned[node] -= 1;
                                }
                            }
                            vc_rr[p] = (vc + 1 < L) ? vc + 1 : 0;
                            progressed = 1;
                            break;
                        }
                        if (!progressed) break;
                    }
                    if (advanced > 0) {
                        out_tokens[p] = tk;
                        moved += advanced;
                        for (int64_t s = 0; s < n_popped; ++s) {
                            int64_t oq = popped[s];
                            if (q_len[oq] > 0) {
                                int64_t h = oq * qstride + q_head[oq];
                                if (qb_enter[h] <= limit && qb_seq[h] == 0) {
                                    int64_t out = route_val[route_off[qb_slot[h]] + qb_pos[h]];
                                    if (req_stamp[out] != stamp) {
                                        req_stamp[out] = stamp;
                                        req_vcs[out] = 0;
                                    }
                                    req_vcs[out] |= (int64_t)1 << (oq % L);
                                }
                            }
                        }
                    }
                }
            }
            for (int64_t node = 0; node < size; ++node) {
                if (in_sweep[node]) {
                    if (node_buf[node] == 0 && node_owned[node] == 0 && active[node]) {
                        active[node] = 0;
                        --active_count;
                    }
                    in_sweep[node] = 0;
                }
            }
        }
        if (moved > 0) {
            last_progress = cycle;
        } else if (cycle - last_progress > deadlock_window && buffered_total > 0) {
            result[0] = 1;
            result[1] = last_progress;
            result[2] = buffered_total;
            result[3] = last_refill;
            result[4] = tr_count;
            result[5] = tr_trunc;
            result[6] = dlv_count;
            return;
        }
        ++cycle;
    }
    result[0] = 0;
    result[1] = last_progress;
    result[2] = buffered_total;
    result[3] = last_refill;
    result[4] = tr_count;
    result[5] = tr_trunc;
    result[6] = dlv_count;
"""


def _render_source() -> str:
    params = _c_params()
    batch_params = _c_params(batched=True)
    args = _c_args("r")
    return f"""/* Auto-generated from repro.simnoc.engines.ckern — do not edit. */
#include <stdint.h>

static void advance_plain_one(
    {params})
{{
{_KERNEL_BODY_PLAIN}
}}

static void advance_vc_one(
    {params})
{{
{_KERNEL_BODY_VC}
}}

int64_t advance_batch(int64_t R, int64_t vc_mode,
    {batch_params})
{{
    for (int64_t r = 0; r < R; ++r) {{
        if (vc_mode)
            advance_vc_one(
        {args});
        else
            advance_plain_one(
        {args});
    }}
    return 0;
}}
"""


SOURCE = _render_source()


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_JIT_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-jit"


def load_library() -> ctypes.CDLL:
    """Compile (cache miss only) and load the kernel shared object.

    Raises:
        BackendUnavailable: no compiler on PATH, compile error, or the
            built object fails to load.
    """
    global compile_events
    digest = hashlib.sha256(SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"simnoc_kernels_{digest}.so"
    if not so_path.exists():
        compiler = _find_compiler()
        if compiler is None:
            raise BackendUnavailable("no C compiler (cc/gcc/clang) on PATH")
        try:
            cache.mkdir(parents=True, exist_ok=True)
            with tempfile.TemporaryDirectory(dir=cache) as tmp:
                c_path = Path(tmp) / "kernels.c"
                c_path.write_text(SOURCE)
                tmp_so = Path(tmp) / "kernels.so"
                proc = subprocess.run(
                    [
                        compiler,
                        "-O2",
                        "-fPIC",
                        "-shared",
                        "-o",
                        str(tmp_so),
                        str(c_path),
                    ],
                    capture_output=True,
                    text=True,
                )
                if proc.returncode != 0:
                    raise BackendUnavailable(
                        f"{compiler} failed ({proc.returncode}): "
                        f"{proc.stderr.strip()[:500]}"
                    )
                compile_events += 1
                # Atomic publish: concurrent builders race harmlessly.
                os.replace(tmp_so, so_path)
        except OSError as exc:
            raise BackendUnavailable(f"cannot build kernel library: {exc}") from exc
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError as exc:
        raise BackendUnavailable(f"cannot load {so_path}: {exc}") from exc

    # Every kernel argument is an array of R per-replica pointers; numpy
    # uintp arrays reinterpret cleanly as `T* const*` on LP64 platforms.
    ptrvec = np.ctypeslib.ndpointer(dtype=np.uintp, flags="C_CONTIGUOUS")
    lib.advance_batch.argtypes = [ctypes.c_int64, ctypes.c_int64] + [
        ptrvec for _ in ARG_FIELDS
    ]
    lib.advance_batch.restype = ctypes.c_int64
    return lib
