"""Engine protocol and registry.

An engine is a strategy object: ``run(sim)`` drives ``sim.network`` from
cycle 0 to ``sim.config.total_cycles``, mutating the network's components
and appending every created packet to ``sim.all_packets``.  The ``sim``
argument is the :class:`repro.simnoc.simulator.Simulator` acting as the run
context — it owns the network, the config, the optional trace recorder, the
global packet-id counter and the report builder.

Engines self-register with :func:`register_engine`; surfaces resolve them
by name so ``engine="event"`` can flow from a CLI flag all the way down
without any dispatch tables in between.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.simulator import Simulator


@runtime_checkable
class Engine(Protocol):
    """What a simulation backend must implement."""

    name: str

    def run(self, sim: "Simulator") -> None:
        """Advance the network through the configured cycle window.

        Raises:
            SimulationError: on detected deadlock.
        """
        ...


_ENGINES: dict[str, Callable[[], Engine]] = {}


def register_engine(name: str) -> Callable[[type], type]:
    """Class decorator registering an engine under ``name``."""

    def decorate(cls: type) -> type:
        if name in _ENGINES:
            raise SimulationError(f"engine {name!r} is already registered")
        _ENGINES[name] = cls
        return cls

    return decorate


def get_engine(name: str) -> Engine:
    """Instantiate the engine registered under ``name``.

    Raises:
        SimulationError: for unknown names; the message lists valid ones.
    """
    _ensure_engines_loaded()
    try:
        return _ENGINES[name]()
    except KeyError:
        raise SimulationError(
            f"unknown engine {name!r}; known: {', '.join(list_engines())}"
        ) from None


def list_engines() -> tuple[str, ...]:
    """All registered engine names, sorted."""
    _ensure_engines_loaded()
    return tuple(sorted(_ENGINES))


def _ensure_engines_loaded() -> None:
    """Import the engine modules so their decorators have run."""
    import repro.simnoc.engines.auto  # noqa: F401
    import repro.simnoc.engines.cycle  # noqa: F401
    import repro.simnoc.engines.event  # noqa: F401
    import repro.simnoc.engines.sharded  # noqa: F401
    import repro.simnoc.engines.vector  # noqa: F401
