"""The event-driven engine: heap-scheduled time, all dead cycles skipped.

The cycle engine touches every *active* component every cycle; at low load
that is mostly no-op work — a router waiting seven pipeline cycles for a
flit to become visible, or twenty cycles for a slow link's token bucket to
accumulate one token, is stepped at every one of them.  This engine steps a
component only at cycles where its state can actually change, and advances
time directly to the next such cycle.

Wake sources (all exact, none heuristic):

* **sources** — a heap keyed by each injector's ``next_event_cycle``;
* **pipeline visibility** — a flit pushed at cycle ``c`` becomes
  head-of-line-visible no earlier than ``c + router_delay``; every push
  schedules that wake;
* **token readiness** — the refill schedule is deterministic, so
  ``tokens_ready_cycle`` predicts (bit-exactly) when a starved link can
  move again; routers self-report it via ``next_action_cycle``;
* **credit returns** — a router that moved flits popped input buffers,
  returning credits upstream: upstream routers are woken (same cycle when
  they sort after the mover, mirroring the ascending-id sweep; next cycle
  otherwise), and the local NI is woken in case the pop freed its slot;
* **post-move re-arbitration** — any router that moved wakes itself next
  cycle (a released output port re-arbitrates then, exactly when the
  cycle engine would).

Equivalence argument (property-tested in ``tests/properties``): a step
skipped by this engine is one the active-set loop would have executed as a
pure no-op — no arbitration can succeed (no newly visible head), no flit
can move (no token became ready, no credit or flit arrived) — and token
refills, the only skipped side effect, are replayed bit-exactly by
``refill_to`` on the next real step.  Within a processed cycle the phase
order (sources, NIs in ascending node order, routers in ascending id with
mid-cycle insertion) is the cycle engine's own.
"""

from __future__ import annotations

import bisect
import heapq
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.simnoc.engines.base import register_engine
from repro.simnoc.engines.cycle import DEADLOCK_WINDOW
from repro.simnoc.router import LOCAL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.simulator import Simulator


@register_engine("event")
class EventEngine:
    """Event-driven time advance over the same model components."""

    name = "event"

    def run(self, sim: "Simulator") -> None:
        network = sim.network
        config = sim.config
        trace = sim.trace
        routers = network.routers
        interfaces = network.interfaces
        delay = config.router_delay
        measure_start = config.warmup_cycles
        measure_end = config.warmup_cycles + config.measure_cycles
        total_cycles = config.total_cycles
        last_progress = 0

        # Wake heaps with exact-duplicate suppression (a component woken
        # twice for one cycle is still stepped once).
        router_wakes: list[tuple[int, int]] = []
        router_scheduled: set[tuple[int, int]] = set()
        ni_wakes: list[tuple[int, int]] = []
        ni_scheduled: set[tuple[int, int]] = set()

        def wake_router(node: int, cycle: int) -> None:
            if cycle >= total_cycles:
                return
            key = (cycle, node)
            if key not in router_scheduled:
                router_scheduled.add(key)
                heapq.heappush(router_wakes, key)

        def wake_ni(node: int, cycle: int) -> None:
            if cycle >= total_cycles:
                return
            key = (cycle, node)
            if key not in ni_scheduled:
                ni_scheduled.add(key)
                heapq.heappush(ni_wakes, key)

        source_heap = [
            (source.next_event_cycle, index)
            for index, source in enumerate(network.sources)
        ]
        heapq.heapify(source_heap)

        # Per-cycle router sweep state, shared with the deliver closure
        # (same ascending-id discipline as the cycle engine's sweep).
        sweep: list[int] = []
        swept: set[int] = set()
        sweep_pos = [0]

        def deliver(from_node: int, to_key: int, flit, cycle: int) -> None:
            if trace is not None:
                trace.record(from_node, to_key, flit, cycle)
            if to_key == LOCAL:
                interfaces[from_node].eject(flit, cycle)
                return
            routers[to_key].inputs[from_node].push(flit, cycle)
            # The flit clears the receiver's pipeline router_delay cycles
            # from now; until then its arrival cannot change any decision.
            wake_router(to_key, cycle + delay)

        upstream_keys = {
            node: [key for key in router.inputs if key != LOCAL]
            for node, router in routers.items()
        }

        def activate_upstream(node: int, cycle: int) -> None:
            """Credit-return wakes after ``node`` popped input buffers.

            Only upstream routers with a worm allocated toward ``node`` can
            act on the credit (arbitration ignores credits), hence the
            ``awaits_credit`` probe.  The cycle engine steps routers in
            ascending id, so an upstream router sorting *after* the mover
            sees returned credits in the same cycle (insert into the live
            sweep); one sorting *before* it sees them next cycle.
            """
            for from_key in upstream_keys[node]:
                if not routers[from_key].awaits_credit(node):
                    continue
                if from_key > node:
                    if from_key not in swept:
                        bisect.insort(sweep, from_key, lo=sweep_pos[0] + 1)
                        swept.add(from_key)
                else:
                    wake_router(from_key, cycle + 1)

        heappush = heapq.heappush
        heappop = heapq.heappop

        while True:
            cycle = total_cycles
            if source_heap and source_heap[0][0] < cycle:
                cycle = source_heap[0][0]
            if router_wakes and router_wakes[0][0] < cycle:
                cycle = router_wakes[0][0]
            if ni_wakes and ni_wakes[0][0] < cycle:
                cycle = ni_wakes[0][0]

            # Watchdog over the skipped gap: the cycle engine would have
            # raised at last_progress + DEADLOCK_WINDOW + 1 had it scanned
            # these (provably movement-free) cycles one by one.
            deadline = last_progress + DEADLOCK_WINDOW + 1
            if (
                deadline < min(cycle, total_cycles)
                and network.total_buffered_flits() > 0
            ):
                raise SimulationError(
                    f"deadlock: no flit moved since cycle {last_progress} "
                    f"with {network.total_buffered_flits()} flits buffered"
                )
            if cycle >= total_cycles:
                break

            moved_total = 0

            # Phase 0: sources whose firing time has arrived.
            while source_heap and source_heap[0][0] <= cycle:
                _, index = heappop(source_heap)
                source = network.sources[index]
                for packet in source.packets_for_cycle(cycle, sim.next_packet_id):
                    packet.measured = measure_start <= cycle < measure_end
                    sim.all_packets.append(packet)
                    interfaces[packet.src_node].offer_packet(packet)
                    wake_ni(packet.src_node, cycle)
                heappush(source_heap, (source.next_event_cycle, index))

            # Phase 1: NI injections, ascending node order (push-time dedup
            # guarantees the popped nodes are unique).
            ni_nodes = []
            while ni_wakes and ni_wakes[0][0] <= cycle:
                key = heappop(ni_wakes)
                ni_scheduled.discard(key)
                ni_nodes.append(key[1])
            ni_nodes.sort()
            for node in ni_nodes:
                interface = interfaces[node]
                injected = interface.inject(cycle, LOCAL)
                if injected:
                    moved_total += injected
                    wake_router(node, cycle + delay)
                    if interface.backlog_flits:
                        wake_ni(node, cycle + 1)
                # A blocked NI (no free slot) is re-woken by the router's
                # next pop — see the moved>0 handling below.

            # Phase 2: routers due this cycle, ascending id with mid-cycle
            # insertion for same-cycle credit visibility.
            sweep = []
            while router_wakes and router_wakes[0][0] <= cycle:
                key = heappop(router_wakes)
                router_scheduled.discard(key)
                sweep.append(key[1])
            sweep.sort()
            swept = set(sweep)
            sweep_pos[0] = 0
            while sweep_pos[0] < len(sweep):
                node = sweep[sweep_pos[0]]
                router = routers[node]
                moved = router.step(cycle, deliver)
                if moved:
                    moved_total += moved
                    # Moves pop input buffers: credits go upstream and the
                    # local NI may have regained its slot.
                    activate_upstream(node, cycle)
                    if interfaces[node].backlog_flits:
                        wake_ni(node, cycle + 1)
                    if router.last_step_released:
                        # A tail freed an output port: waiting heads (and
                        # the head its pop exposed) re-arbitrate next cycle.
                        wake_router(node, cycle + 1)
                nxt = router.next_action_cycle(cycle)
                if nxt is not None:
                    wake_router(node, nxt)
                sweep_pos[0] += 1

            if moved_total:
                last_progress = cycle
