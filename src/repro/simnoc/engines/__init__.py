"""The engine layer: interchangeable backends that advance simulated time.

Engines drive the model layer (routers, NIs, traffic sources — see
:mod:`repro.simnoc.models`) and differ only in *how* they decide which
component to touch when:

* ``"cycle"`` — the cycle-accurate reference (full per-cycle scan, or the
  PR-1 active-set variant that skips idle components bit-exactly);
* ``"event"`` — heap-scheduled event-driven time: components are stepped
  only at cycles where they can act, and all dead time in between is
  skipped outright;
* ``"vector"`` — structure-of-arrays time: the network is flattened into
  preallocated flat/numpy arrays and advanced with no per-object dispatch,
  the fastest backend at and above saturation;
* ``"auto"`` — a policy, not a backend: resolves to ``"event"`` or
  ``"vector"`` from the built network's offered load.

Every engine produces identical simulation results on identical inputs —
the property suite pins the equivalence; the benches measure the gap.
"""

from repro.simnoc.engines.auto import AUTO_LOAD_THRESHOLD, AutoEngine, resolve_auto_engine
from repro.simnoc.engines.base import Engine, get_engine, list_engines
from repro.simnoc.engines.cycle import DEADLOCK_WINDOW, CycleEngine
from repro.simnoc.engines.event import EventEngine
from repro.simnoc.engines.vector import VectorEngine

__all__ = [
    "AUTO_LOAD_THRESHOLD",
    "AutoEngine",
    "CycleEngine",
    "DEADLOCK_WINDOW",
    "Engine",
    "EventEngine",
    "VectorEngine",
    "get_engine",
    "list_engines",
    "resolve_auto_engine",
]
