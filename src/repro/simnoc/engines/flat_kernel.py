"""Builds kernel programs: a :class:`Simulator` flattened to typed arrays.

A :class:`KernelProgram` is the bridge between the object model and the
compiled kernels in :mod:`repro.simnoc.engines.kernels` (and their C
mirror).  Building one

1. reuses :class:`repro.simnoc.engines.vector._FlatState` for the wiring
   flatten (port indexing, credits, routes, freshness guards — the exact
   arrays the interpreted loops run on), then
2. *precomputes the entire injection schedule*: every shipped traffic
   source is open-loop (its packet sequence depends only on the cycle and
   its own RNG, never on network state), so the builder replays the
   engines' event-heap loop up front — identical pop order, identical
   packet ids, identical ``measured`` flags — and freezes the result into
   per-node flit streams, then
3. converts everything to int64/float64 numpy arrays in the canonical
   :data:`ARG_FIELDS` order shared by the Python, numba and C kernels.

After a backend has advanced the program, :meth:`KernelProgram.finish`
replays the observable effects back onto the model objects (trace events,
packet injected/delivered cycles, per-NI delivery lists, port counters)
via ``_FlatState.writeback`` — producing reports and traces bit-identical
to the interpreted engines.

Batched replicas need no extra plumbing here: the C kernel's
``advance_batch`` takes one pointer per replica per field (aimed straight
at each program's arrays) and mutates them in place, so R independent
networks advance in a single compiled call without copying state in
either direction.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.simnoc.engines import kernels
from repro.simnoc.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.simulator import Simulator

#: Lane bitmasks (``req_vcs``) cap the kernel tier's VC count.
MAX_KERNEL_VCS = 63

#: Offset-table dimension kinds, one entry per replica in the batch table.
(
    KIND_IN,
    KIND_OUT,
    KIND_OUTLANE,
    KIND_NODEP1,
    KIND_NODE,
    KIND_QB,
    KIND_LANE,
    KIND_PKT,
    KIND_PKTP1,
    KIND_ROUTE,
    KIND_FLIT,
    KIND_TRACE,
    KIND_PARAMS,
    KIND_RESULT,
) = range(14)
NUM_KINDS = 14

#: Kernel argument order (must match the Python/numba kernel signatures and
#: the C kernel's parameter list): name -> offset-table kind.
ARG_FIELDS = (
    ("out_rate", KIND_OUT),
    ("out_cap", KIND_OUT),
    ("out_tokens", KIND_OUT),
    ("credits", KIND_OUTLANE),
    ("in_cap", KIND_IN),
    ("in_feeder", KIND_IN),
    ("dest_in", KIND_OUT),
    ("dest_node", KIND_OUT),
    ("out_tokey", KIND_OUT),
    ("owner", KIND_OUTLANE),
    ("owner_pkt", KIND_OUTLANE),
    ("rr_in", KIND_OUTLANE),
    ("vc_rr", KIND_OUT),
    ("port_owned", KIND_OUT),
    ("ins_off", KIND_NODEP1),
    ("ins_val", KIND_IN),
    ("outs_off", KIND_NODEP1),
    ("outs_val", KIND_OUT),
    ("local_in", KIND_NODE),
    ("node_buf", KIND_NODE),
    ("node_owned", KIND_NODE),
    ("active", KIND_NODE),
    ("in_sweep", KIND_NODE),
    ("qb_enter", KIND_QB),
    ("qb_slot", KIND_QB),
    ("qb_seq", KIND_QB),
    ("qb_pos", KIND_QB),
    ("q_head", KIND_LANE),
    ("q_len", KIND_LANE),
    ("pkt_create", KIND_PKT),
    ("pkt_last", KIND_PKT),
    ("pkt_vcl", KIND_PKT),
    ("route_off", KIND_PKTP1),
    ("route_val", KIND_ROUTE),
    ("ni_off", KIND_NODEP1),
    ("ni_ptr", KIND_NODE),
    ("ni_slot", KIND_FLIT),
    ("ni_seq", KIND_FLIT),
    ("pkt_injected", KIND_PKT),
    ("pkt_delivered", KIND_PKT),
    ("dlv_node", KIND_PKT),
    ("dlv_slot", KIND_PKT),
    ("ni_injected", KIND_NODE),
    ("ni_ejected", KIND_NODE),
    ("carried", KIND_OUT),
    ("tr_node", KIND_TRACE),
    ("tr_tokey", KIND_TRACE),
    ("tr_slot", KIND_TRACE),
    ("tr_seq", KIND_TRACE),
    ("tr_cycle", KIND_TRACE),
    ("req_stamp", KIND_OUT),
    ("req_vcs", KIND_OUT),
    ("params", KIND_PARAMS),
    ("result", KIND_RESULT),
)

#: Fields holding float64 data; everything else is int64.
FLOAT_FIELDS = frozenset({"out_rate", "out_cap", "out_tokens", "credits"})


def kernel_unsupported(sim: "Simulator", vc_mode: bool) -> str | None:
    """Why this run cannot take the kernel tier (``None`` = it can)."""
    if vc_mode and sim.network.config.num_vcs > MAX_KERNEL_VCS:
        return f"more than {MAX_KERNEL_VCS} virtual channels"
    trace = sim.trace
    if trace is not None and trace.max_events - len(trace.events) <= 0:
        return "trace recorder already full"
    return None


def _csr(per_node, size: int):
    off = np.zeros(size + 1, dtype=np.int64)
    vals: list[int] = []
    for node in range(size):
        vals.extend(per_node[node])
        off[node + 1] = len(vals)
    return off, np.array(vals, dtype=np.int64)


class KernelProgram:
    """One flattened replica, ready for any kernel backend.

    The array attributes (named by :data:`ARG_FIELDS`) are the kernel's
    working state; the backend mutates them in place (or copies them back
    after a batched call).  :meth:`finish` then writes the observable
    results onto the simulator's model objects.
    """

    __slots__ = tuple(name for name, _ in ARG_FIELDS) + (
        "sim",
        "state",
        "vc_mode",
        "trace_cap",
    )

    def __init__(self, sim: "Simulator", vc_mode: bool) -> None:
        # Deferred import: vector.py imports this module's consumers.
        from repro.simnoc.engines.vector import _FlatState

        self.sim = sim
        self.vc_mode = vc_mode
        state = _FlatState(sim, vc_mode=vc_mode)
        self.state = state
        network = sim.network
        config = network.config
        L = state.num_vcs

        # --- precompute the injection schedule (see module docstring) ----
        measure_start = config.warmup_cycles
        measure_end = measure_start + config.measure_cycles
        total_cycles = config.total_cycles
        sources = network.sources
        next_packet_id = sim.next_packet_id
        all_packets_append = sim.all_packets.append
        # Registration inlined from _FlatState.offer_packet, minus the
        # per-flit NI deque (the kernel reads flat flit streams instead;
        # they are expanded vectorized below).
        resolve_route = state.resolve_route
        num_vcs = state.num_vcs
        pkt_objs_append = state.pkt_objs.append
        pkt_outs_append = state.pkt_outs.append
        pkt_last_append = state.pkt_last.append
        pkt_vc_append = state.pkt_vc.append
        node_slots: list[list[int]] = [[] for _ in range(len(state.local_in))]
        pkt_create: list[int] = []
        event_heap = [
            (source.next_event_cycle, index) for index, source in enumerate(sources)
        ]
        heapq.heapify(event_heap)
        slot = 0
        while event_heap and event_heap[0][0] < total_cycles:
            cycle, index = heapq.heappop(event_heap)
            source = sources[index]
            for packet in source.packets_for_cycle(cycle, next_packet_id):
                packet.measured = measure_start <= cycle < measure_end
                all_packets_append(packet)
                vc = packet.commodity_index % num_vcs
                packet.vc = vc
                pkt_objs_append(packet)
                pkt_outs_append(resolve_route(packet.path, packet.packet_id))
                pkt_last_append(packet.num_flits - 1)
                pkt_vc_append(vc)
                node_slots[packet.src_node].append(slot)
                pkt_create.append(cycle)
                slot += 1
            heapq.heappush(event_heap, (source.next_event_cycle, index))

        # --- freeze into kernel arrays ------------------------------------
        i8 = np.int64
        num_in = len(state.in_cap)
        num_out = len(state.out_rates)
        size = len(state.local_in)
        num_lanes = num_in * L
        qstride = (max(state.in_cap) if state.in_cap else 1) + 1
        P = len(state.pkt_objs)

        self.out_rate = state.out_rates
        self.out_cap = state.out_caps
        self.out_tokens = state.out_tokens
        self.credits = np.array(state.credits, dtype=np.float64)
        self.in_cap = np.array(state.in_cap, dtype=i8)
        self.in_feeder = np.array(state.in_feeder, dtype=i8)
        self.dest_in = np.array(state.out_dest_in, dtype=i8)
        self.dest_node = np.array(state.out_dest_node, dtype=i8)
        self.out_tokey = np.array(state.out_to_key, dtype=i8)
        self.owner = np.array(state.owner, dtype=i8)
        self.owner_pkt = np.array(state.owner_pkt, dtype=i8)
        self.rr_in = np.array(state.rr_in, dtype=i8)
        self.vc_rr = np.array(state.vc_rr, dtype=i8)
        self.port_owned = np.array(state.port_owned, dtype=i8)
        self.ins_off, self.ins_val = _csr(state.node_ins, size)
        self.outs_off, self.outs_val = _csr(state.node_outs, size)
        self.local_in = np.array(state.local_in, dtype=i8)
        self.node_buf = np.zeros(size, dtype=i8)
        self.node_owned = np.zeros(size, dtype=i8)
        self.active = np.zeros(size, dtype=i8)
        self.in_sweep = np.zeros(size, dtype=i8)
        self.qb_enter = np.zeros(num_lanes * qstride, dtype=i8)
        self.qb_slot = np.zeros(num_lanes * qstride, dtype=i8)
        self.qb_seq = np.zeros(num_lanes * qstride, dtype=i8)
        self.qb_pos = np.zeros(num_lanes * qstride, dtype=i8)
        self.q_head = np.zeros(num_lanes, dtype=i8)
        self.q_len = np.zeros(num_lanes, dtype=i8)
        self.pkt_create = np.array(pkt_create, dtype=i8)
        self.pkt_last = np.array(state.pkt_last, dtype=i8)
        self.pkt_vcl = np.array(state.pkt_vc, dtype=i8)
        route_off = np.zeros(P + 1, dtype=i8)
        route_val: list[int] = []
        for slot in range(P):
            route_val.extend(state.pkt_outs[slot])
            route_off[slot + 1] = len(route_val)
        self.route_off = route_off
        self.route_val = np.array(route_val, dtype=i8)
        # Vectorized flit-stream expansion: packet k contributes flits
        # (k, 0..num_flits-1) at its source node, in creation order.
        ni_off = np.zeros(size + 1, dtype=i8)
        slot_parts: list[np.ndarray] = []
        seq_parts: list[np.ndarray] = []
        flits_total = 0
        num_flits_arr = self.pkt_last + 1
        for node in range(size):
            slots = np.asarray(node_slots[node], dtype=i8)
            if len(slots):
                counts = num_flits_arr[slots]
                total = int(counts.sum())
                ends = np.cumsum(counts)
                slot_parts.append(np.repeat(slots, counts))
                seq_parts.append(
                    np.arange(total, dtype=i8) - np.repeat(ends - counts, counts)
                )
                flits_total += total
            ni_off[node + 1] = flits_total
        self.ni_off = ni_off
        if slot_parts:
            self.ni_slot = np.concatenate(slot_parts)
            self.ni_seq = np.concatenate(seq_parts)
        else:
            self.ni_slot = np.zeros(0, dtype=i8)
            self.ni_seq = np.zeros(0, dtype=i8)
        self.ni_ptr = ni_off[:-1].copy()
        self.pkt_injected = np.full(P, -1, dtype=i8)
        self.pkt_delivered = np.full(P, -1, dtype=i8)
        self.dlv_node = np.zeros(P, dtype=i8)
        self.dlv_slot = np.zeros(P, dtype=i8)
        self.ni_injected = np.zeros(size, dtype=i8)
        self.ni_ejected = np.zeros(size, dtype=i8)
        self.carried = np.array(state.carried, dtype=i8)
        trace = sim.trace
        if trace is None:
            trace_cap = 0
        else:
            remaining = trace.max_events - len(trace.events)
            bound = int(
                sum(
                    (state.pkt_last[slot] + 1) * len(state.pkt_outs[slot])
                    for slot in range(P)
                )
            )
            trace_cap = max(0, min(remaining, bound))
        self.trace_cap = trace_cap
        self.tr_node = np.zeros(trace_cap, dtype=i8)
        self.tr_tokey = np.zeros(trace_cap, dtype=i8)
        self.tr_slot = np.zeros(trace_cap, dtype=i8)
        self.tr_seq = np.zeros(trace_cap, dtype=i8)
        self.tr_cycle = np.zeros(trace_cap, dtype=i8)
        self.req_stamp = np.zeros(num_out, dtype=i8)
        self.req_vcs = np.zeros(num_out, dtype=i8)

        params = np.zeros(kernels.NUM_PARAMS, dtype=i8)
        params[0] = total_cycles
        params[1] = config.router_delay
        params[2] = L
        params[3] = qstride
        params[4] = size
        params[5] = num_in
        params[6] = num_out
        params[7] = P
        params[8] = trace_cap
        from repro.simnoc.engines.cycle import DEADLOCK_WINDOW

        params[9] = DEADLOCK_WINDOW
        params[10] = num_lanes
        self.params = params
        self.result = np.zeros(kernels.NUM_RESULTS, dtype=i8)

    # ------------------------------------------------------------------
    def args(self) -> tuple:
        """The kernel argument tuple, in :data:`ARG_FIELDS` order."""
        return tuple(getattr(self, name) for name, _ in ARG_FIELDS)

    # ------------------------------------------------------------------
    def finish(self, sim: "Simulator") -> None:
        """Replay the kernel's observable effects onto the model objects.

        Raises:
            SimulationError: on kernel-detected deadlock (identical message
                to the interpreted engines; no writeback happens, matching
                their behavior of raising mid-run).
        """
        result = self.result
        if result[0] == kernels.STATUS_DEADLOCK:
            raise SimulationError(
                f"deadlock: no flit moved since cycle {int(result[1])} "
                f"with {int(result[2])} flits buffered"
            )
        state = self.state
        pkt_objs = state.pkt_objs

        trace = sim.trace
        tr_count = int(result[4])
        if trace is not None and tr_count:
            tr_cycle = self.tr_cycle
            tr_node = self.tr_node
            tr_tokey = self.tr_tokey
            tr_slot = self.tr_slot
            tr_seq = self.tr_seq
            trace.events.extend(
                TraceEvent(
                    cycle=int(tr_cycle[k]),
                    node=int(tr_node[k]),
                    to_key=int(tr_tokey[k]),
                    packet_id=pkt_objs[tr_slot[k]].packet_id,
                    flit_sequence=int(tr_seq[k]),
                )
                for k in range(tr_count)
            )
        if trace is not None and result[5]:
            trace.truncated = True

        for slot, injected in enumerate(self.pkt_injected.tolist()):
            if injected >= 0:
                pkt_objs[slot].injected_cycle = injected
        for slot, delivered in enumerate(self.pkt_delivered.tolist()):
            if delivered >= 0:
                pkt_objs[slot].delivered_cycle = delivered
        dlv_count = int(result[6])
        dlv_nodes = self.dlv_node[:dlv_count].tolist()
        dlv_slots = self.dlv_slot[:dlv_count].tolist()
        for node, slot in zip(dlv_nodes, dlv_slots):
            state.delivered[node].append(pkt_objs[slot])

        state.carried = [int(c) for c in self.carried]
        state.out_tokens = self.out_tokens
        state.final_refill = int(result[3])
        state.ni_injected = [int(c) for c in self.ni_injected]
        state.ni_ejected = [int(c) for c in self.ni_ejected]
        state.writeback(sim)
