"""Bursty traffic generation driven by the core graph's bandwidths.

The paper notes the DSP traffic "is bursty in nature", which is why
contention appears even when average-rate bandwidth constraints hold.  Each
commodity gets a :class:`BurstyTrafficSource` producing packets in bursts:
burst sizes are geometric with mean ``mean_burst_packets``, packets within a
burst are back to back, and inter-burst gaps are exponential with a mean
chosen so the long-run average rate equals the commodity's bandwidth.
``mean_burst_packets=1`` degenerates to a Poisson packet source.

Each packet draws its source route from the weighted path set of the
routing result (one path for deterministic routing, several for split
traffic) — per-packet path selection is how the simulator realizes traffic
splitting, matching a NoC whose NIs spread packets across their routing
table entries.
"""

from __future__ import annotations

import math
import random

from repro.errors import SimulationError
from repro.simnoc.config import SimConfig
from repro.simnoc.packet import Packet


def draw_geometric_burst(rng: random.Random, mean_burst_packets: float) -> int:
    """Geometric burst size with mean ``mean_burst_packets`` (>= 1).

    Shared by every bursty arrival process (the trace-driven source and the
    synthetic on-off injector) so the burst distribution stays comparable
    knob-for-knob across traffic models.
    """
    if mean_burst_packets <= 1.0:
        return 1
    p = 1.0 / mean_burst_packets
    size = 1
    while rng.random() > p:
        size += 1
    return size


def draw_burst_gap(
    rng: random.Random,
    burst_size: int,
    mean_packet_interval: float,
    flits_per_packet: int,
) -> float:
    """Exponential inter-burst gap that restores the mean packet rate.

    A burst of ``B`` packets injects back to back for ``B * F`` cycles
    (``F`` flits per packet); the average spacing budget for ``B`` packets
    is ``B * interval``, so the gap's mean is the difference.  Shared for
    the same reason as :func:`draw_geometric_burst`.
    """
    mean_gap = burst_size * (mean_packet_interval - flits_per_packet)
    if mean_gap <= 0.0:
        return 0.0
    return rng.expovariate(1.0 / mean_gap)


class BurstyTrafficSource:
    """Generates packets of one commodity at its configured mean rate.

    This is the ``"trace"`` traffic pattern: rates and endpoints replay the
    mapped core graph's bandwidths (see :mod:`repro.simnoc.synthetic` for
    the application-independent patterns).

    Args:
        commodity_index: index of the commodity this source drives.
        src_node: injecting mesh node.
        dst_node: destination mesh node.
        rate_flits_per_cycle: long-run average offered load.
        paths: weighted source routes ``(node_path, probability)``.
        config: simulator configuration (packet size, burstiness).
        rng: dedicated random stream (deterministic per commodity).
    """

    pattern = "trace"

    def __init__(
        self,
        commodity_index: int,
        src_node: int,
        dst_node: int,
        rate_flits_per_cycle: float,
        paths: list[tuple[list[int], float]],
        config: SimConfig,
        rng: random.Random,
    ) -> None:
        if rate_flits_per_cycle <= 0:
            raise SimulationError(
                f"commodity {commodity_index} has non-positive rate "
                f"{rate_flits_per_cycle}"
            )
        if not paths:
            raise SimulationError(f"commodity {commodity_index} has no paths")
        total_weight = sum(weight for _path, weight in paths)
        if total_weight <= 0:
            raise SimulationError(f"commodity {commodity_index} path weights sum to 0")
        for path, _weight in paths:
            if path[0] != src_node or path[-1] != dst_node:
                raise SimulationError(f"path {path} does not join {src_node}->{dst_node}")
        self.commodity_index = commodity_index
        self.src_node = src_node
        self.dst_node = dst_node
        self.rate = rate_flits_per_cycle
        self.paths = [(list(path), weight / total_weight) for path, weight in paths]
        self.config = config
        self.rng = rng
        self._flits_per_packet = config.flits_per_packet
        #: Mean cycles between packet starts needed to hit the target rate.
        self._mean_packet_interval = self._flits_per_packet / rate_flits_per_cycle
        if self._mean_packet_interval < self._flits_per_packet:
            raise SimulationError(
                f"commodity {commodity_index} oversubscribes injection "
                f"(rate {rate_flits_per_cycle:.3f} flits/cycle > 1)"
            )
        self._remaining_in_burst = 0
        self._next_time: float = rng.uniform(0.0, self._mean_packet_interval)
        self.packets_created = 0

    # ------------------------------------------------------------------
    def _draw_burst_size(self) -> int:
        return draw_geometric_burst(self.rng, self.config.mean_burst_packets)

    def _draw_gap(self, burst_size: int) -> float:
        return draw_burst_gap(
            self.rng, burst_size, self._mean_packet_interval, self._flits_per_packet
        )

    def _choose_path(self) -> list[int]:
        pick = self.rng.random()
        accumulated = 0.0
        for path, weight in self.paths:
            accumulated += weight
            if pick <= accumulated:
                return list(path)
        return list(self.paths[-1][0])

    # ------------------------------------------------------------------
    def packets_for_cycle(self, cycle: int, next_packet_id) -> list[Packet]:
        """Packets whose creation time falls on this cycle (possibly none).

        Args:
            cycle: current simulation cycle.
            next_packet_id: zero-argument callable yielding fresh packet ids.
        """
        created: list[Packet] = []
        while self._next_time <= cycle:
            if self._remaining_in_burst == 0:
                self._remaining_in_burst = self._draw_burst_size()
            packet = Packet(
                packet_id=next_packet_id(),
                commodity_index=self.commodity_index,
                src_node=self.src_node,
                dst_node=self.dst_node,
                path=self._choose_path(),
                num_flits=self._flits_per_packet,
                created_cycle=cycle,
            )
            created.append(packet)
            self.packets_created += 1
            self._remaining_in_burst -= 1
            if self._remaining_in_burst == 0:
                burst = self._draw_burst_size()  # size of the *next* burst
                self._next_time = cycle + self._flits_per_packet + self._draw_gap(burst)
                self._remaining_in_burst = burst
            else:
                self._next_time = cycle + self._flits_per_packet
        return created

    @property
    def offered_flits_per_cycle(self) -> float:
        """Configured long-run offered load (for reports and tests)."""
        return self.rate

    @property
    def next_event_cycle(self) -> int:
        """First integer cycle at which :meth:`packets_for_cycle` can fire.

        The active-set simulator keeps sources in a priority queue keyed by
        this value so fully idle stretches between injections can be skipped
        without calling every source every cycle.
        """
        return max(0, math.ceil(self._next_time))
