"""Synthetic traffic injectors: uniform-random, transpose, bursty on-off.

The trace-driven :class:`~repro.simnoc.traffic.BurstyTrafficSource` replays
the mapped core graph's bandwidths — the paper's validation workload.  The
injectors here are the classical NoC characterization patterns instead:
every node offers load at a configured ``injection_rate`` (flits/cycle per
node), which makes latency-vs-injection-rate saturation sweeps a
first-class experiment independent of any particular application.

* ``uniform`` — each packet picks a destination uniformly among all other
  nodes (the standard saturation benchmark).
* ``transpose`` — node ``(x, y)`` sends only to ``(y, x)``; adversarial for
  dimension-ordered routing because it concentrates load on the diagonal.
* ``onoff`` — a two-state Markov-modulated process: ON periods inject
  packets back to back, OFF periods are silent, with means chosen so the
  long-run rate equals ``injection_rate``.  Models the bursty traffic the
  paper observes on the DSP without needing its trace.

Packets carry full source routes, so injectors route with the deterministic
XY path.  XY is deadlock-free on meshes; on tori the shorter-wrap
direction creates ring dependencies, so high-load torus runs should use
``num_vcs >= 2`` (the deadlock watchdog aborts rather than hangs either
way).  Every injector draws from a
:func:`repro.seeding.derive_seed` stream keyed by ``(config.seed, node)``
— never global RNG state — so runs are reproducible and independent of
worker count or injector construction order.

Flow identity: synthetic packets use ``src * num_nodes + dst`` as their
``commodity_index``, giving per-flow latency statistics the same shape as
trace-driven runs.
"""

from __future__ import annotations

import math
import random

from repro.errors import SimulationError
from repro.graphs.topology import NoCTopology
from repro.routing.dimension_ordered import xy_path
from repro.seeding import derive_seed
from repro.simnoc.config import SimConfig
from repro.simnoc.models import register_traffic_pattern
from repro.simnoc.packet import Packet
from repro.simnoc.traffic import draw_burst_gap, draw_geometric_burst


def synthetic_flow_index(topology: NoCTopology, src: int, dst: int) -> int:
    """The stable per-(src, dst) flow id synthetic packets are tagged with."""
    return src * topology.num_nodes + dst


class SyntheticSource:
    """Base class: one injecting node, Poisson packet starts, XY routes.

    Args:
        topology: the NoC the packets traverse.
        src_node: the injecting node.
        injection_rate: offered load in flits/cycle (must stay below one
            flit/cycle — a single NI cannot physically inject faster).
        config: simulator configuration (packet size, seed).

    Subclasses choose destinations (:meth:`_choose_destination`) and may
    reshape the arrival process (:meth:`_advance`).
    """

    pattern = "synthetic"

    def __init__(
        self,
        topology: NoCTopology,
        src_node: int,
        injection_rate: float,
        config: SimConfig,
    ) -> None:
        if injection_rate <= 0:
            raise SimulationError(
                f"injection rate must be positive, got {injection_rate}"
            )
        self.topology = topology
        self.src_node = src_node
        self.rate = injection_rate
        self.config = config
        self.rng = random.Random(derive_seed(config.seed, src_node))
        self._flits_per_packet = config.flits_per_packet
        self._mean_packet_interval = self._flits_per_packet / injection_rate
        if self._mean_packet_interval < self._flits_per_packet:
            raise SimulationError(
                f"node {src_node} oversubscribes injection "
                f"(rate {injection_rate:.3f} flits/cycle > 1)"
            )
        self._next_time: float = self.rng.uniform(0.0, self._mean_packet_interval)
        self.packets_created = 0

    # -- hooks -----------------------------------------------------------
    def _choose_destination(self) -> int:
        raise NotImplementedError

    def _advance(self, cycle: int) -> None:
        """Move ``_next_time`` past ``cycle`` (Poisson arrivals by default)."""
        self._next_time = cycle + self.rng.expovariate(
            1.0 / self._mean_packet_interval
        )

    # -- engine-facing protocol ------------------------------------------
    def packets_for_cycle(self, cycle: int, next_packet_id) -> list[Packet]:
        """Packets whose creation time falls on this cycle (possibly none)."""
        created: list[Packet] = []
        while self._next_time <= cycle:
            dst = self._choose_destination()
            created.append(
                Packet(
                    packet_id=next_packet_id(),
                    commodity_index=synthetic_flow_index(
                        self.topology, self.src_node, dst
                    ),
                    src_node=self.src_node,
                    dst_node=dst,
                    path=xy_path(self.topology, self.src_node, dst),
                    num_flits=self._flits_per_packet,
                    created_cycle=cycle,
                )
            )
            self.packets_created += 1
            self._advance(cycle)
        return created

    @property
    def offered_flits_per_cycle(self) -> float:
        """Configured long-run offered load (for reports and tests)."""
        return self.rate

    @property
    def next_event_cycle(self) -> int:
        """First integer cycle at which :meth:`packets_for_cycle` can fire."""
        return max(0, math.ceil(self._next_time))


class UniformRandomSource(SyntheticSource):
    """Uniform-random destinations — the standard saturation benchmark."""

    pattern = "uniform"

    def __init__(self, topology, src_node, injection_rate, config) -> None:
        super().__init__(topology, src_node, injection_rate, config)
        self._others = [n for n in topology.nodes if n != src_node]
        if not self._others:
            raise SimulationError("uniform traffic needs at least two nodes")

    def _choose_destination(self) -> int:
        return self._others[self.rng.randrange(len(self._others))]


class TransposeSource(SyntheticSource):
    """Fixed transpose destination: ``(x, y)`` sends to ``(y, x)``."""

    pattern = "transpose"

    def __init__(self, topology, src_node, injection_rate, config) -> None:
        super().__init__(topology, src_node, injection_rate, config)
        x, y = topology.coords(src_node)
        if y >= topology.width or x >= topology.height:
            raise SimulationError(
                f"node {src_node} at ({x}, {y}) has no transpose partner on a "
                f"{topology.width}x{topology.height} grid"
            )
        self._dst = topology.node_at(y, x)

    def _choose_destination(self) -> int:
        return self._dst


class OnOffSource(SyntheticSource):
    """Two-state on-off injector: bursts at full tilt, then silence.

    During ON, packets go back to back (one every ``flits_per_packet``
    cycles — the NI's physical maximum); ON lengths are geometric with mean
    ``config.mean_burst_packets`` packets.  OFF gaps are exponential with
    the mean that restores the configured long-run ``injection_rate`` —
    the same budget argument as the trace-driven bursty source.
    Destinations are uniform-random.
    """

    pattern = "onoff"

    def __init__(self, topology, src_node, injection_rate, config) -> None:
        super().__init__(topology, src_node, injection_rate, config)
        self._others = [n for n in topology.nodes if n != src_node]
        if not self._others:
            raise SimulationError("on-off traffic needs at least two nodes")
        self._remaining_in_burst = 0

    def _choose_destination(self) -> int:
        return self._others[self.rng.randrange(len(self._others))]

    def _advance(self, cycle: int) -> None:
        if self._remaining_in_burst == 0:
            self._remaining_in_burst = draw_geometric_burst(
                self.rng, self.config.mean_burst_packets
            )
        self._remaining_in_burst -= 1
        if self._remaining_in_burst > 0:
            self._next_time = cycle + self._flits_per_packet
            return
        burst = draw_geometric_burst(self.rng, self.config.mean_burst_packets)
        gap = draw_burst_gap(
            self.rng, burst, self._mean_packet_interval, self._flits_per_packet
        )
        self._next_time = cycle + self._flits_per_packet + gap
        self._remaining_in_burst = burst


@register_traffic_pattern("uniform")
def build_uniform_traffic(
    topology: NoCTopology, config: SimConfig, injection_rate: float
) -> list[SyntheticSource]:
    """One uniform-random injector per node."""
    return [
        UniformRandomSource(topology, node, injection_rate, config)
        for node in topology.nodes
    ]


@register_traffic_pattern("transpose")
def build_transpose_traffic(
    topology: NoCTopology, config: SimConfig, injection_rate: float
) -> list[SyntheticSource]:
    """One transpose injector per node whose partner differs from itself."""
    sources = []
    for node in topology.nodes:
        x, y = topology.coords(node)
        if x == y:
            continue  # diagonal nodes send to themselves: nothing to inject
        if y >= topology.width or x >= topology.height:
            continue  # no partner on a non-square grid
        sources.append(TransposeSource(topology, node, injection_rate, config))
    if not sources:
        raise SimulationError(
            f"transpose traffic has no flows on a "
            f"{topology.width}x{topology.height} grid"
        )
    return sources


@register_traffic_pattern("onoff")
def build_onoff_traffic(
    topology: NoCTopology, config: SimConfig, injection_rate: float
) -> list[SyntheticSource]:
    """One bursty on-off injector per node (uniform destinations)."""
    return [
        OnOffSource(topology, node, injection_rate, config)
        for node in topology.nodes
    ]
