"""Flit-level wormhole NoC simulator (SystemC / ×pipes substitute).

The paper validates NMAP by generating a SystemC NoC with ×pipes macros and
simulating it cycle-accurately (§7.2, Figure 5c).  This package is the
equivalent substrate in Python, split into two layers (``ARCHITECTURE.md``):

* a **model layer** — pluggable routers (the paper's wormhole switch, plus
  a virtual-channel variant), network interfaces, credit-flow links and
  traffic injectors (trace-driven from the mapped core graph, or synthetic
  uniform-random / transpose / bursty on-off patterns);
* an **engine layer** — interchangeable time-advance backends: the
  cycle-accurate reference loop (``engine="cycle"``), a heap-scheduled
  event-driven engine (``engine="event"``) that skips all dead time, a
  structure-of-arrays ``engine="vector"`` that flattens the network into
  numpy-backed flat state for saturation loads, and a load-adaptive
  ``engine="auto"`` policy — all producing identical results.

Key model parameters (:class:`SimConfig`) mirror the paper's Table 3:
64-byte packets, a 7-cycle switch traversal, and link bandwidths swept in
GB/s (converted to flits/cycle by the configured clock and flit width).
"""

from repro.simnoc.config import SimConfig
from repro.simnoc.engines import get_engine, list_engines
from repro.simnoc.models import (
    RouterModel,
    TrafficSource,
    get_router_model,
    get_traffic_pattern,
    list_router_models,
    list_traffic_patterns,
)
from repro.simnoc.network import (
    Network,
    build_network,
    build_synthetic_network,
)
from repro.simnoc.packet import Flit, FlitKind, Packet
from repro.simnoc.simulator import (
    SimulationReport,
    Simulator,
    simulate_mapping,
    simulate_synthetic,
)
from repro.simnoc.stats import FlowStats, LatencyStats
from repro.simnoc.trace import TraceEvent, TraceRecorder
from repro.simnoc.traffic import BurstyTrafficSource
from repro.simnoc.vc_router import VCRouter

__all__ = [
    "BurstyTrafficSource",
    "Flit",
    "FlitKind",
    "FlowStats",
    "LatencyStats",
    "Network",
    "Packet",
    "RouterModel",
    "SimConfig",
    "SimulationReport",
    "Simulator",
    "TraceEvent",
    "TraceRecorder",
    "TrafficSource",
    "VCRouter",
    "build_network",
    "build_synthetic_network",
    "get_engine",
    "get_router_model",
    "get_traffic_pattern",
    "list_engines",
    "list_router_models",
    "list_traffic_patterns",
    "simulate_mapping",
    "simulate_synthetic",
]
