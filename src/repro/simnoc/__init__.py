"""Cycle-level wormhole NoC simulator (SystemC / ×pipes substitute).

The paper validates NMAP by generating a SystemC NoC with ×pipes macros and
simulating it cycle-accurately (§7.2, Figure 5c).  This package is the
equivalent substrate in Python: a flit-level, cycle-driven simulator of an
input-buffered wormhole mesh with credit-based flow control, source routing
(single-path or weighted multi-path from a :class:`RoutingResult`), bursty
traffic generators driven by the core graph's bandwidths and latency
statistics collection.

Key model parameters (:class:`SimConfig`) mirror the paper's Table 3:
64-byte packets, a 7-cycle switch traversal, and link bandwidths swept in
GB/s (converted to flits/cycle by the configured clock and flit width).
"""

from repro.simnoc.config import SimConfig
from repro.simnoc.network import Network, build_network
from repro.simnoc.packet import Flit, FlitKind, Packet
from repro.simnoc.simulator import SimulationReport, Simulator, simulate_mapping
from repro.simnoc.stats import LatencyStats
from repro.simnoc.trace import TraceEvent, TraceRecorder
from repro.simnoc.traffic import BurstyTrafficSource

__all__ = [
    "BurstyTrafficSource",
    "Flit",
    "FlitKind",
    "LatencyStats",
    "Network",
    "Packet",
    "SimConfig",
    "SimulationReport",
    "Simulator",
    "TraceEvent",
    "TraceRecorder",
    "build_network",
    "simulate_mapping",
]
