"""Latency and throughput statistics over delivered packets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simnoc.packet import Packet


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a set of packet latencies (cycles).

    Attributes:
        count: packets measured.
        mean: average creation-to-delivery latency.
        p50/p95/p99: percentiles.
        maximum: worst observed latency.
        mean_network: average injection-to-delivery latency (NI queueing
            excluded).
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float
    mean_network: float

    @classmethod
    def from_packets(cls, packets: list[Packet]) -> "LatencyStats":
        """Aggregate the measured, delivered packets.

        Raises:
            SimulationError: when no measured packets were delivered (the
                run was too short or the network deadlocked silently).
        """
        latencies = sorted(p.latency for p in packets if p.measured)
        if not latencies:
            raise SimulationError("no measured packets delivered")
        network = [p.network_latency for p in packets if p.measured]

        def percentile(fraction: float) -> float:
            index = min(len(latencies) - 1, int(round(fraction * (len(latencies) - 1))))
            return float(latencies[index])

        return cls(
            count=len(latencies),
            mean=sum(latencies) / len(latencies),
            p50=percentile(0.50),
            p95=percentile(0.95),
            p99=percentile(0.99),
            maximum=float(latencies[-1]),
            mean_network=sum(network) / len(network),
        )


def per_commodity_means(packets: list[Packet]) -> dict[int, float]:
    """Mean latency per commodity index over measured packets."""
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for packet in packets:
        if not packet.measured:
            continue
        sums[packet.commodity_index] = sums.get(packet.commodity_index, 0.0) + packet.latency
        counts[packet.commodity_index] = counts.get(packet.commodity_index, 0) + 1
    return {index: sums[index] / counts[index] for index in sums}


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def per_commodity_jitter(packets: list[Packet]) -> dict[int, float]:
    """Delivery jitter per commodity: std of gaps between adjacent deliveries.

    The paper defines jitter as "the time between the delivery of adjacent
    packets" and motivates NMAPTM (split across equal-hop minimum paths)
    for low-jitter traffic — packets taking paths of different lengths
    arrive unevenly.  This measures exactly that: for each commodity, the
    standard deviation of consecutive delivery-time gaps.
    """
    deliveries: dict[int, list[int]] = {}
    for packet in packets:
        if not packet.measured or packet.delivered_cycle is None:
            continue
        deliveries.setdefault(packet.commodity_index, []).append(
            packet.delivered_cycle
        )
    jitter: dict[int, float] = {}
    for index, times in deliveries.items():
        times.sort()
        gaps = [float(b - a) for a, b in zip(times, times[1:])]
        jitter[index] = _std(gaps)
    return jitter


def per_commodity_latency_std(packets: list[Packet]) -> dict[int, float]:
    """Latency standard deviation per commodity (path-length mixing shows
    up here even when delivery gaps stay regular)."""
    latencies: dict[int, list[float]] = {}
    for packet in packets:
        if not packet.measured:
            continue
        latencies.setdefault(packet.commodity_index, []).append(float(packet.latency))
    return {index: _std(values) for index, values in latencies.items()}
