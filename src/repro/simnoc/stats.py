"""Latency and throughput statistics over delivered packets."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simnoc.packet import Packet


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a set of packet latencies (cycles).

    Attributes:
        count: packets measured.
        mean: average creation-to-delivery latency.
        p50/p95/p99: percentiles.
        maximum: worst observed latency.
        mean_network: average injection-to-delivery latency (NI queueing
            excluded).
    """

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float
    mean_network: float

    @classmethod
    def from_packets(cls, packets: list[Packet]) -> "LatencyStats":
        """Aggregate the measured, delivered packets.

        Raises:
            SimulationError: when no measured packets were delivered (the
                run was too short or the network deadlocked silently).
        """
        latencies = sorted(p.latency for p in packets if p.measured)
        if not latencies:
            raise SimulationError("no measured packets delivered")
        network = [p.network_latency for p in packets if p.measured]

        def percentile(fraction: float) -> float:
            index = min(len(latencies) - 1, int(round(fraction * (len(latencies) - 1))))
            return float(latencies[index])

        return cls(
            count=len(latencies),
            mean=sum(latencies) / len(latencies),
            p50=percentile(0.50),
            p95=percentile(0.95),
            p99=percentile(0.99),
            maximum=float(latencies[-1]),
            mean_network=sum(network) / len(network),
        )


def latency_histogram(latencies: list[int]) -> list[int]:
    """Power-of-two latency histogram: bin ``i`` counts ``[2**i, 2**(i+1))``.

    Bin 0 covers latencies 0 and 1.  Exponential bins keep the payload tiny
    (a 1M-cycle tail still fits in ~20 integers) while preserving the shape
    that matters for saturation analysis: where the distribution's mass
    sits and how heavy its tail is.  The list is trimmed to the last
    non-empty bin, so it round-trips through JSON compactly.
    """
    if not latencies:
        return []
    bins = [0] * (max(latencies).bit_length() or 1)
    for latency in latencies:
        bins[max(0, latency.bit_length() - 1)] += 1
    return bins


@dataclass(frozen=True)
class FlowStats:
    """Per-flow (per-commodity) latency summary over measured packets.

    Attributes:
        count: packets measured for this flow.
        mean: average creation-to-delivery latency in cycles.
        p50/p95: latency percentiles.
        std: sample standard deviation of latencies.
        jitter: std of gaps between adjacent deliveries (the paper's
            definition — see :func:`per_commodity_jitter`).
        histogram: power-of-two latency histogram
            (see :func:`latency_histogram`).
    """

    count: int
    mean: float
    p50: float
    p95: float
    std: float
    jitter: float
    histogram: list[int] = field(default_factory=list)


def per_flow_stats(packets: list[Packet]) -> dict[int, FlowStats]:
    """Full per-flow summaries (histogram included) over measured packets."""
    latencies: dict[int, list[int]] = {}
    deliveries: dict[int, list[int]] = {}
    for packet in packets:
        if not packet.measured or packet.delivered_cycle is None:
            continue
        latencies.setdefault(packet.commodity_index, []).append(packet.latency)
        deliveries.setdefault(packet.commodity_index, []).append(
            packet.delivered_cycle
        )
    flows: dict[int, FlowStats] = {}
    for index, values in latencies.items():
        values.sort()
        times = sorted(deliveries[index])
        gaps = [float(b - a) for a, b in zip(times, times[1:])]

        def percentile(fraction: float) -> float:
            position = min(len(values) - 1, int(round(fraction * (len(values) - 1))))
            return float(values[position])

        flows[index] = FlowStats(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(0.50),
            p95=percentile(0.95),
            std=_std([float(v) for v in values]),
            jitter=_std(gaps),
            histogram=latency_histogram(values),
        )
    return flows


def per_commodity_means(packets: list[Packet]) -> dict[int, float]:
    """Mean latency per commodity index (a view of :func:`per_flow_stats`)."""
    return {index: flow.mean for index, flow in per_flow_stats(packets).items()}


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def per_commodity_jitter(packets: list[Packet]) -> dict[int, float]:
    """Delivery jitter per commodity: std of gaps between adjacent deliveries.

    The paper defines jitter as "the time between the delivery of adjacent
    packets" and motivates NMAPTM (split across equal-hop minimum paths)
    for low-jitter traffic — packets taking paths of different lengths
    arrive unevenly.  A view of :func:`per_flow_stats`, which computes it.
    """
    return {index: flow.jitter for index, flow in per_flow_stats(packets).items()}


def per_commodity_latency_std(packets: list[Packet]) -> dict[int, float]:
    """Latency standard deviation per commodity (path-length mixing shows
    up here even when delivery gaps stay regular).  A view of
    :func:`per_flow_stats`."""
    return {index: flow.std for index, flow in per_flow_stats(packets).items()}
