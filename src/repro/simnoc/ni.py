"""Network interfaces: packetization at injection, statistics at ejection.

The NI mirrors ×pipes' network interface macro at the level the evaluation
needs: it owns an unbounded injection queue of flits (the core can always
hand data over; backpressure shows up as queueing delay, which is part of
packet latency), feeds the router's local input port one flit per cycle
when a buffer slot is free, and timestamps deliveries on the ejection side.

When the attached router runs virtual channels, the NI is also where a
packet is pinned to its lane: ``commodity_index % num_vcs``, so every packet
of one flow rides the same VC end to end and per-flow delivery order is
preserved (packets of one flow cannot overtake each other on another lane).
The injection queue stays a single FIFO — a head-of-line packet whose lane
is full stalls later packets, which is the backpressure a real NI sees.
"""

from __future__ import annotations

from collections import deque

from repro.simnoc.packet import Flit, Packet, is_last_flit, make_flits


class NetworkInterface:
    """Injection/ejection endpoint attached to one router's local port."""

    __slots__ = (
        "node",
        "router",
        "num_vcs",
        "injection_queue",
        "delivered_packets",
        "flits_injected",
        "flits_ejected",
    )

    def __init__(self, node: int, router, num_vcs: int = 1) -> None:
        self.node = node
        self.router = router
        self.num_vcs = num_vcs
        self.injection_queue: deque[Flit] = deque()
        self.delivered_packets: list[Packet] = []
        self.flits_injected = 0
        self.flits_ejected = 0

    # ------------------------------------------------------------------
    # injection side
    # ------------------------------------------------------------------
    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet's flits for injection (assigning its lane)."""
        packet.vc = packet.commodity_index % self.num_vcs
        self.injection_queue.extend(make_flits(packet))

    def inject(self, cycle: int, local_key: int) -> int:
        """Move up to one flit into the router's local input port.

        Returns the number of flits moved (0 or 1).
        """
        if not self.injection_queue:
            return 0
        port = self.router.inputs[local_key]
        flit = self.injection_queue[0]
        if not port.can_accept(flit):
            return 0
        self.injection_queue.popleft()
        if flit.is_head and flit.packet.injected_cycle is None:
            flit.packet.injected_cycle = cycle
        port.push(flit, cycle)
        self.flits_injected += 1
        return 1

    @property
    def backlog_flits(self) -> int:
        return len(self.injection_queue)

    # ------------------------------------------------------------------
    # ejection side
    # ------------------------------------------------------------------
    def eject(self, flit: Flit, cycle: int) -> None:
        """Receive a flit leaving the network at this node."""
        self.flits_ejected += 1
        if is_last_flit(flit):
            flit.packet.delivered_cycle = cycle
            self.delivered_packets.append(flit.packet)
