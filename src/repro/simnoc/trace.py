"""Optional flit-level event tracing for the simulator.

A :class:`TraceRecorder` captures every flit movement (which router, which
output, which packet/flit, which cycle) the way a SystemC waveform dump
would, bounded by a configurable event cap so long runs cannot exhaust
memory.  Traces export to CSV-ish text for offline inspection and support
simple queries (per-packet journey, per-link activity) used when debugging
contention or suspected deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simnoc.packet import Flit
from repro.simnoc.router import LOCAL


@dataclass(frozen=True)
class TraceEvent:
    """One flit hop: ``packet/flit`` left ``node`` toward ``to_key``."""

    cycle: int
    node: int
    to_key: int  # downstream node id, or LOCAL for ejection
    packet_id: int
    flit_sequence: int

    def render(self) -> str:
        target = "EJECT" if self.to_key == LOCAL else f"n{self.to_key}"
        return (
            f"{self.cycle:>8}  n{self.node:<3} -> {target:<6} "
            f"p{self.packet_id}#{self.flit_sequence}"
        )


@dataclass
class TraceRecorder:
    """Bounded recorder of :class:`TraceEvent` items.

    Args:
        max_events: hard cap; recording silently stops once reached (the
            ``truncated`` flag says so), keeping traces safe on long runs.
    """

    max_events: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    def __post_init__(self) -> None:
        if self.max_events < 1:
            raise SimulationError(f"max_events must be >= 1, got {self.max_events}")

    def record(self, from_node: int, to_key: int, flit: Flit, cycle: int) -> None:
        """Capture one flit movement (simulator hook)."""
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(
            TraceEvent(
                cycle=cycle,
                node=from_node,
                to_key=to_key,
                packet_id=flit.packet.packet_id,
                flit_sequence=flit.sequence,
            )
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def packet_journey(self, packet_id: int) -> list[TraceEvent]:
        """All events of one packet, in time order."""
        return sorted(
            (event for event in self.events if event.packet_id == packet_id),
            key=lambda event: (event.cycle, event.flit_sequence),
        )

    def link_activity(self, src: int, dst: int) -> list[TraceEvent]:
        """All events crossing the directed link ``src -> dst``."""
        return [
            event
            for event in self.events
            if event.node == src and event.to_key == dst
        ]

    def busiest_link(self) -> tuple[int, int] | None:
        """The physical link with the most recorded flit crossings."""
        counts: dict[tuple[int, int], int] = {}
        for event in self.events:
            if event.to_key == LOCAL:
                continue
            key = (event.node, event.to_key)
            counts[key] = counts.get(key, 0) + 1
        if not counts:
            return None
        return max(counts, key=lambda key: (counts[key], -key[0], -key[1]))

    def render(self, limit: int | None = None) -> str:
        """Text dump: header plus one line per event (optionally capped)."""
        chosen = self.events if limit is None else self.events[:limit]
        lines = ["   cycle  hop             flit"]
        lines.extend(event.render() for event in chosen)
        if self.truncated:
            lines.append(f"... truncated at {self.max_events} events")
        return "\n".join(lines) + "\n"
