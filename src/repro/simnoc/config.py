"""Simulator configuration (the knobs of Table 3 and Figure 5c)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class SimConfig:
    """Global parameters of one simulation run.

    Attributes:
        clock_hz: router clock frequency; with ``flit_bytes`` it converts
            MB/s bandwidths into flits/cycle.  The default 400 MHz with
            4-byte flits makes a 1.6 GB/s link exactly 1 flit/cycle.
        flit_bytes: physical link width.
        packet_bytes: payload per packet; Table 3 uses 64 B (16 flits).
        buffer_depth: input-FIFO capacity per router port, in flits.
        router_delay: switch traversal latency in cycles (Table 3: 7).
        warmup_cycles: cycles simulated before statistics collection.
        measure_cycles: cycles over which packet latencies are recorded.
        drain_cycles: extra cycles after measurement so in-flight measured
            packets can arrive.
        mean_burst_packets: mean packets per traffic burst (bursty sources;
            1.0 disables burstiness).
        seed: RNG seed for traffic generation and split-path selection.
        num_vcs: virtual channels per physical link.  1 selects the plain
            wormhole router (the paper's model); >1 selects the VC wormhole
            router, where worms on different VCs interleave flit-by-flit on
            a shared physical link instead of blocking head-of-line.
        vc_buffer_depth: input-FIFO capacity *per virtual channel* in flits;
            None gives each VC the full ``buffer_depth``.
        router_model: registered router model name; ``"auto"`` picks
            ``"wormhole"`` or ``"wormhole-vc"`` from ``num_vcs``.
    """

    clock_hz: float = 400e6
    flit_bytes: int = 4
    packet_bytes: int = 64
    buffer_depth: int = 8
    router_delay: int = 7
    warmup_cycles: int = 2_000
    measure_cycles: int = 20_000
    drain_cycles: int = 5_000
    mean_burst_packets: float = 4.0
    seed: int = 1
    num_vcs: int = 1
    vc_buffer_depth: int | None = None
    router_model: str = "auto"

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise SimulationError(f"clock must be positive, got {self.clock_hz}")
        if self.flit_bytes < 1:
            raise SimulationError(f"flit width must be >= 1 byte, got {self.flit_bytes}")
        if self.packet_bytes < self.flit_bytes:
            raise SimulationError(
                f"packet ({self.packet_bytes} B) smaller than one flit "
                f"({self.flit_bytes} B)"
            )
        if self.buffer_depth < 2:
            raise SimulationError(
                f"wormhole needs buffer_depth >= 2, got {self.buffer_depth}"
            )
        if self.router_delay < 1:
            raise SimulationError(f"router delay must be >= 1, got {self.router_delay}")
        if self.mean_burst_packets < 1.0:
            raise SimulationError(
                f"mean burst size must be >= 1, got {self.mean_burst_packets}"
            )
        for name in ("warmup_cycles", "measure_cycles", "drain_cycles"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")
        if self.num_vcs < 1:
            raise SimulationError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.vc_buffer_depth is not None and self.vc_buffer_depth < 2:
            raise SimulationError(
                f"wormhole needs vc_buffer_depth >= 2, got {self.vc_buffer_depth}"
            )

    @property
    def effective_router_model(self) -> str:
        """The router model this run instantiates (``"auto"`` resolved)."""
        if self.router_model != "auto":
            return self.router_model
        return "wormhole-vc" if self.num_vcs > 1 else "wormhole"

    @property
    def effective_vc_depth(self) -> int:
        """Per-VC input FIFO capacity in flits."""
        return self.vc_buffer_depth if self.vc_buffer_depth is not None else self.buffer_depth

    @property
    def flits_per_packet(self) -> int:
        """Payload flits per packet (header bits ride in the head flit)."""
        return max(1, -(-self.packet_bytes // self.flit_bytes))

    def mbps_to_flits_per_cycle(self, mbps: float) -> float:
        """Convert a bandwidth in MB/s into flits per clock cycle."""
        return (mbps * 1e6) / (self.flit_bytes * self.clock_hz)

    def gbps_link_rate(self, gb_per_s: float) -> float:
        """Convert a link bandwidth in GB/s into flits per cycle."""
        return (gb_per_s * 1e9) / (self.flit_bytes * self.clock_hz)

    @property
    def total_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles
