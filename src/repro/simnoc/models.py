"""The model layer's contracts: what routers and traffic injectors must be.

``simnoc`` is split into two layers (see ``ARCHITECTURE.md``):

* the **model layer** — routers, network interfaces, links and traffic
  injectors, composable components that define *what* is simulated;
* the **engine layer** (:mod:`repro.simnoc.engines`) — interchangeable
  backends that define *how* simulated time advances (cycle-accurate scan
  or event-driven skipping).

This module holds the small structural protocols the engines program
against, plus the registries that make both router models and traffic
patterns pluggable: adding a new router or injector is one decorator, not
an edit to the network builder or the engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnoc.packet import Packet


@runtime_checkable
class RouterModel(Protocol):
    """What every router implementation must expose to the engines.

    A router owns input buffers (``inputs``, keyed by upstream node id or
    ``LOCAL``) and output ports (``outputs``, keyed by downstream node id or
    ``LOCAL`` for ejection).  The engines never look inside beyond these
    four methods plus the two port dicts the builder wires.
    """

    node: int
    inputs: dict[int, Any]
    outputs: dict[int, Any]

    def step(self, cycle: int, deliver: Callable) -> int:
        """Advance one cycle; return the number of flits moved."""
        ...

    def buffered_flits(self) -> int:
        """Total flits sitting in this router's input buffers."""
        ...

    def is_idle(self) -> bool:
        """True when stepping would be a no-op (modulo token refills)."""
        ...

    def next_action_cycle(self, cycle: int) -> int | None:
        """Earliest future cycle a step could change state *by itself*.

        ``None`` means only an external event (flit arrival, credit return)
        can make this router act again.  The event engine uses this to skip
        dead cycles; returning a cycle earlier than necessary is safe
        (a spurious wake is a no-op step), missing one is not.
        """
        ...


@runtime_checkable
class TrafficSource(Protocol):
    """What every traffic injector must expose to the engines.

    A source owns one stream of packets entering the network at
    ``src_node``.  Engines poll it with :meth:`packets_for_cycle` (cycle
    engines, every cycle) or schedule it by :attr:`next_event_cycle`
    (active-set and event engines).
    """

    src_node: int

    def packets_for_cycle(
        self, cycle: int, next_packet_id: Callable[[], int]
    ) -> "list[Packet]":
        """Packets whose creation time falls on this cycle (possibly none)."""
        ...

    @property
    def next_event_cycle(self) -> int:
        """First integer cycle at which the source can produce a packet."""
        ...


# ----------------------------------------------------------------------
# router-model registry
# ----------------------------------------------------------------------
#: ``factory(node, input_keys, output_specs, config) -> RouterModel``.
RouterFactory = Callable[..., RouterModel]

#: One registered router model: the factory plus the flow-control fact the
#: network builder needs — whether input buffering (and therefore the
#: credit budget a downstream FIFO grants upstream) is per virtual channel
#: (``config.effective_vc_depth`` per lane) or per physical link
#: (``config.buffer_depth``).  Declared at registration so the builder
#: never guesses from the model's name.
_ROUTER_MODELS: dict[str, tuple[RouterFactory, bool]] = {}


def register_router_model(
    name: str, *, per_lane_buffers: bool = False
) -> Callable[[RouterFactory], RouterFactory]:
    """Decorator registering a router factory under ``name``.

    The factory signature is ``(node, input_keys, output_specs, config)``
    where ``output_specs`` maps downstream key to ``(rate, credits)`` and
    ``config`` is the run's :class:`~repro.simnoc.config.SimConfig`.

    Args:
        name: registry key (``SimConfig.router_model`` values).
        per_lane_buffers: True when the model buffers per virtual channel,
            sized ``config.effective_vc_depth`` per lane; False when it has
            one ``config.buffer_depth`` FIFO per physical link.  The
            builder wires downstream credits from this declaration.
    """

    def decorate(factory: RouterFactory) -> RouterFactory:
        if name in _ROUTER_MODELS:
            raise SimulationError(f"router model {name!r} is already registered")
        _ROUTER_MODELS[name] = (factory, per_lane_buffers)
        return factory

    return decorate


def get_router_model(name: str) -> RouterFactory:
    """Resolve a router factory by name.

    Raises:
        SimulationError: for unknown names; the message lists valid ones.
    """
    return _router_model_entry(name)[0]


def router_model_uses_lanes(name: str) -> bool:
    """Whether the named model declared per-virtual-channel buffering."""
    return _router_model_entry(name)[1]


def _router_model_entry(name: str) -> tuple[RouterFactory, bool]:
    _ensure_models_loaded()
    try:
        return _ROUTER_MODELS[name]
    except KeyError:
        raise SimulationError(
            f"unknown router model {name!r}; known: {', '.join(list_router_models())}"
        ) from None


def list_router_models() -> tuple[str, ...]:
    """All registered router model names, sorted."""
    _ensure_models_loaded()
    return tuple(sorted(_ROUTER_MODELS))


# ----------------------------------------------------------------------
# traffic-pattern registry
# ----------------------------------------------------------------------
#: ``factory(topology, config, injection_rate) -> list[TrafficSource]``.
TrafficFactory = Callable[..., "list[TrafficSource]"]

_TRAFFIC_PATTERNS: dict[str, TrafficFactory] = {}

#: The commodity-driven pattern handled by ``build_network`` itself (it
#: needs the mapped core graph and a routing result, which synthetic
#: patterns do not).  Kept here so surfaces can enumerate every pattern.
TRACE_PATTERN = "trace"


def register_traffic_pattern(name: str) -> Callable[[TrafficFactory], TrafficFactory]:
    """Decorator registering a synthetic traffic factory under ``name``.

    The factory signature is ``(topology, config, injection_rate)`` with
    ``injection_rate`` in flits/cycle per injecting node; it returns one
    :class:`TrafficSource` per injecting node.
    """

    def decorate(factory: TrafficFactory) -> TrafficFactory:
        if name == TRACE_PATTERN or name in _TRAFFIC_PATTERNS:
            raise SimulationError(f"traffic pattern {name!r} is already registered")
        _TRAFFIC_PATTERNS[name] = factory
        return factory

    return decorate


def get_traffic_pattern(name: str) -> TrafficFactory:
    """Resolve a synthetic traffic factory by name.

    Raises:
        SimulationError: for unknown names (including ``"trace"``, which is
            not synthetic — use ``build_network`` for commodity traffic).
    """
    _ensure_models_loaded()
    try:
        return _TRAFFIC_PATTERNS[name]
    except KeyError:
        raise SimulationError(
            f"unknown traffic pattern {name!r}; known synthetic patterns: "
            f"{', '.join(sorted(_TRAFFIC_PATTERNS))} (plus {TRACE_PATTERN!r} "
            f"for commodity-driven traffic)"
        ) from None


def list_traffic_patterns() -> tuple[str, ...]:
    """Every traffic pattern name, ``"trace"`` first, synthetics sorted."""
    _ensure_models_loaded()
    return (TRACE_PATTERN, *sorted(_TRAFFIC_PATTERNS))


def _ensure_models_loaded() -> None:
    """Import the modules whose decorators populate the registries."""
    import repro.simnoc.router  # noqa: F401  (registers "wormhole")
    import repro.simnoc.synthetic  # noqa: F401  (registers synthetic patterns)
    import repro.simnoc.vc_router  # noqa: F401  (registers "wormhole-vc")
