"""Input-buffered wormhole router with credit flow control.

Each router has one input port per incoming link (plus the local injection
port) and one output port per outgoing link (plus ejection).  Wormhole
switching: a head flit arbitrates for its output port; the port stays
allocated to that packet until the tail passes, so a blocked head stalls
the whole worm in place — the "domino effect" the paper blames for the
non-linear latency growth of single-path routing at low link bandwidth.

Timing model per flit and hop:

* router pipeline: a flit becomes eligible to leave ``router_delay`` cycles
  after entering the input buffer (Table 3's 7-cycle switch delay);
* link serialization: an output port holds a token bucket refilled at the
  link's rate in flits/cycle, so a 0.5 flit/cycle link moves a flit every
  other cycle;
* buffering: a flit moves only when the downstream input buffer has a free
  slot (credit-based flow control; credits return when the downstream
  buffer is popped).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simnoc.packet import Flit, is_last_flit

#: Port key for the local (core-side) injection/ejection direction.
LOCAL = -1


@dataclass
class InputPort:
    """One input FIFO of a router; ``feeder`` is the upstream output port."""

    router_node: int
    from_key: int  # upstream node id, or LOCAL
    capacity: int
    queue: deque = field(default_factory=deque)  # entries: (enter_cycle, Flit)
    feeder: "OutputPort | None" = None

    @property
    def occupancy(self) -> int:
        return len(self.queue)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.queue)

    def push(self, flit: Flit, cycle: int) -> None:
        if self.free_slots <= 0:
            raise SimulationError(
                f"buffer overflow at node {self.router_node} port {self.from_key}"
            )
        self.queue.append((cycle, flit))

    def visible_head(self, cycle: int, router_delay: int) -> Flit | None:
        """The head-of-line flit if it has finished the router pipeline."""
        if not self.queue:
            return None
        enter_cycle, flit = self.queue[0]
        if cycle - enter_cycle >= router_delay:
            return flit
        return None

    def pop(self) -> Flit:
        _enter, flit = self.queue.popleft()
        if self.feeder is not None:
            self.feeder.credits += 1
        return flit


@dataclass
class OutputPort:
    """One output of a router, driving a link (or the ejection port).

    ``rate`` is the link bandwidth in flits/cycle; ``credits`` mirrors the
    free slots of the downstream input buffer (infinite for ejection).
    """

    router_node: int
    to_key: int  # downstream node id, or LOCAL for ejection
    rate: float
    credits: float  # float('inf') for ejection
    tokens: float = 0.0
    owner: int | None = None  # input-port key holding the wormhole
    owner_packet_id: int | None = None
    rr_pointer: int = 0
    flits_carried: int = 0
    #: Last cycle this port's token bucket was refilled (-1 = never).  Lets
    #: the active-set simulator skip idle routers entirely and catch up
    #: their refills later, bit-identically to per-cycle refilling.
    last_refill: int = -1

    def refill(self) -> None:
        """Token-bucket refill; capacity one extra token of headroom."""
        self.tokens = min(self.tokens + self.rate, max(1.0, self.rate) + 1.0)

    def refill_to(self, cycle: int) -> None:
        """Apply every per-cycle refill owed up to (and including) ``cycle``.

        Replays ``min(tokens + rate, cap)`` once per skipped cycle rather
        than multiplying ``rate`` by the gap, so the token value is exactly
        what a cycle-by-cycle simulation would have produced (floating-point
        accumulation order matters); the replay stops as soon as the bucket
        saturates, since ``cap`` is a fixpoint of the update.
        """
        pending = cycle - self.last_refill
        if pending <= 0:
            return
        self.last_refill = cycle
        cap = max(1.0, self.rate) + 1.0
        tokens = self.tokens
        for _ in range(pending):
            tokens = min(tokens + self.rate, cap)
            if tokens == cap:
                break
        self.tokens = tokens

    @property
    def can_send(self) -> bool:
        return self.tokens >= 1.0 and self.credits >= 1.0


class Router:
    """One mesh cross-point: input buffers, output ports, wormhole logic."""

    def __init__(
        self,
        node: int,
        input_keys: list[int],
        output_specs: dict[int, tuple[float, float]],
        buffer_depth: int,
        router_delay: int,
    ) -> None:
        """
        Args:
            node: mesh node id.
            input_keys: upstream node ids (LOCAL included by the builder).
            output_specs: downstream key -> (rate flits/cycle, initial
                credits); ejection uses ``float('inf')`` credits.
            buffer_depth: input FIFO capacity in flits.
            router_delay: pipeline latency in cycles.
        """
        self.node = node
        self.router_delay = router_delay
        self.inputs: dict[int, InputPort] = {
            key: InputPort(node, key, buffer_depth) for key in input_keys
        }
        self.input_order = sorted(self.inputs)
        self.outputs: dict[int, OutputPort] = {
            key: OutputPort(node, key, rate, credits)
            for key, (rate, credits) in output_specs.items()
        }
        self.output_order = sorted(self.outputs)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def next_hop_key(self, flit: Flit) -> int:
        """Where this flit's packet goes next from this node.

        The packet carries its full source route; the hop after this node is
        the next output, and arriving at the route's last node means
        ejection.

        Raises:
            SimulationError: when the route does not contain this node or
                requests a missing output port.
        """
        path = flit.packet.path
        try:
            position = path.index(self.node)
        except ValueError:
            raise SimulationError(
                f"packet {flit.packet.packet_id} routed through node "
                f"{self.node} not on its path {path}"
            ) from None
        if position == len(path) - 1:
            return LOCAL
        nxt = path[position + 1]
        if nxt not in self.outputs:
            raise SimulationError(
                f"node {self.node} has no output toward {nxt} "
                f"(packet {flit.packet.packet_id})"
            )
        return nxt

    # ------------------------------------------------------------------
    # per-cycle operation
    # ------------------------------------------------------------------
    def _arbitrate(self, port: OutputPort, cycle: int) -> int | None:
        """Round-robin among inputs whose visible head requests this output."""
        n = len(self.input_order)
        for offset in range(n):
            key = self.input_order[(port.rr_pointer + offset) % n]
            flit = self.inputs[key].visible_head(cycle, self.router_delay)
            if flit is None or not flit.is_head:
                continue
            if self.next_hop_key(flit) == port.to_key:
                port.rr_pointer = (self.input_order.index(key) + 1) % n
                return key
        return None

    def step(self, cycle: int, deliver) -> int:
        """Advance all output ports by one cycle.

        Args:
            cycle: current cycle number.
            deliver: callback ``(from_node, to_key, flit, cycle)`` invoked
                for every flit leaving this router (the network routes it to
                the downstream input buffer or the ejection sink).

        Returns:
            Number of flits moved (the simulator's progress counter).
        """
        moved = 0
        for out_key in self.output_order:
            port = self.outputs[out_key]
            port.refill_to(cycle)
            if port.owner is None:
                winner = self._arbitrate(port, cycle)
                if winner is None:
                    continue
                port.owner = winner
                head = self.inputs[winner].visible_head(cycle, self.router_delay)
                assert head is not None
                port.owner_packet_id = head.packet.packet_id
            # Links faster than one flit/cycle (rate > 1) may move several
            # flits per cycle — the token bucket provides the budget.
            while port.owner is not None and port.can_send:
                source = self.inputs[port.owner]
                flit = source.visible_head(cycle, self.router_delay)
                if flit is None or flit.packet.packet_id != port.owner_packet_id:
                    break  # worm's next flit not here/ready yet
                if self.next_hop_key(flit) != port.to_key:  # pragma: no cover
                    raise SimulationError(
                        f"worm of packet {flit.packet.packet_id} changed direction"
                    )
                source.pop()
                port.tokens -= 1.0
                if port.credits != float("inf"):
                    port.credits -= 1.0
                port.flits_carried += 1
                deliver(self.node, port.to_key, flit, cycle)
                moved += 1
                if is_last_flit(flit):
                    port.owner = None
                    port.owner_packet_id = None
        return moved

    def buffered_flits(self) -> int:
        return sum(port.occupancy for port in self.inputs.values())

    def is_idle(self) -> bool:
        """True when stepping this router would be a no-op (modulo refill).

        No buffered flits and no allocated wormhole means no arbitration can
        succeed and no flit can move; token refills are the only skipped
        effect, and :meth:`OutputPort.refill_to` replays those exactly when
        the router re-activates.
        """
        for port in self.inputs.values():
            if port.queue:
                return False
        for port in self.outputs.values():
            if port.owner is not None:
                return False
        return True
