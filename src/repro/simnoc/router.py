"""Input-buffered wormhole router with credit flow control.

Each router has one input port per incoming link (plus the local injection
port) and one output port per outgoing link (plus ejection).  Wormhole
switching: a head flit arbitrates for its output port; the port stays
allocated to that packet until the tail passes, so a blocked head stalls
the whole worm in place — the "domino effect" the paper blames for the
non-linear latency growth of single-path routing at low link bandwidth.

Timing model per flit and hop:

* router pipeline: a flit becomes eligible to leave ``router_delay`` cycles
  after entering the input buffer (Table 3's 7-cycle switch delay);
* link serialization: an output port holds a token bucket refilled at the
  link's rate in flits/cycle, so a 0.5 flit/cycle link moves a flit every
  other cycle;
* buffering: a flit moves only when the downstream input buffer has a free
  slot (credit-based flow control; credits return when the downstream
  buffer is popped).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import fastpath
from repro.errors import SimulationError
from repro.simnoc.models import register_router_model
from repro.simnoc.packet import Flit, is_last_flit

#: Port key for the local (core-side) injection/ejection direction.
LOCAL = -1


def refill_bucket_to(port, cycle: int) -> None:
    """Apply every per-cycle token refill owed up to (and including) ``cycle``.

    Shared by every output-port implementation (``port`` needs ``tokens``,
    ``rate`` and ``last_refill``).  Replays ``min(tokens + rate, cap)`` once
    per skipped cycle rather than multiplying ``rate`` by the gap, so the
    token value is exactly what a cycle-by-cycle simulation would have
    produced (floating-point accumulation order matters); the replay stops
    as soon as the bucket saturates, since ``cap`` is a fixpoint of the
    update.  The event engine's bit-exactness rests on this function and
    :func:`bucket_tokens_ready_cycle` performing the *same* operation
    sequence — that is why there is exactly one copy of each.
    """
    pending = cycle - port.last_refill
    if pending <= 0:
        return
    port.last_refill = cycle
    cap = max(1.0, port.rate) + 1.0
    tokens = port.tokens
    for _ in range(pending):
        tokens = min(tokens + port.rate, cap)
        if tokens == cap:
            break
    port.tokens = tokens


def bucket_tokens_ready_cycle(port, cycle: int) -> int:
    """First cycle ``>= cycle`` at which the bucket holds a whole token.

    Replays the exact per-cycle update :func:`refill_bucket_to` will
    perform (same floating-point operation sequence), so the event engine's
    prediction lands on precisely the cycle a cycle-by-cycle simulation
    would first move a flit.
    """
    cap = max(1.0, port.rate) + 1.0
    tokens = port.tokens
    ready = cycle
    while tokens < 1.0:
        tokens = min(tokens + port.rate, cap)
        ready += 1
    return ready


def resolve_next_hop(node: int, outputs: dict, flit: Flit) -> int:
    """Where ``flit``'s packet goes next from ``node`` (``LOCAL`` = eject).

    The packet carries its full source route; the hop after ``node`` is the
    next output, and arriving at the route's last node means ejection.
    Shared by every router model — routing is a property of the packet, not
    of the switch microarchitecture.

    Raises:
        SimulationError: when the route does not contain this node or
            requests a missing output port.
    """
    path = flit.packet.path
    try:
        position = path.index(node)
    except ValueError:
        raise SimulationError(
            f"packet {flit.packet.packet_id} routed through node "
            f"{node} not on its path {path}"
        ) from None
    if position == len(path) - 1:
        return LOCAL
    nxt = path[position + 1]
    if nxt not in outputs:
        raise SimulationError(
            f"node {node} has no output toward {nxt} "
            f"(packet {flit.packet.packet_id})"
        )
    return nxt


@dataclass(slots=True)
class InputPort:
    """One input FIFO of a router; ``feeder`` is the upstream output port."""

    router_node: int
    from_key: int  # upstream node id, or LOCAL
    capacity: int
    queue: deque = field(default_factory=deque)  # entries: (enter_cycle, Flit)
    feeder: "OutputPort | None" = None

    @property
    def occupancy(self) -> int:
        return len(self.queue)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.queue)

    def can_accept(self, flit: Flit) -> bool:
        """Whether a push of ``flit`` would fit (the NI's backpressure probe)."""
        return self.free_slots > 0

    def push(self, flit: Flit, cycle: int) -> None:
        if self.free_slots <= 0:
            raise SimulationError(
                f"buffer overflow at node {self.router_node} port {self.from_key}"
            )
        self.queue.append((cycle, flit))

    def visible_head(self, cycle: int, router_delay: int) -> Flit | None:
        """The head-of-line flit if it has finished the router pipeline."""
        if not self.queue:
            return None
        enter_cycle, flit = self.queue[0]
        if cycle - enter_cycle >= router_delay:
            return flit
        return None

    def pop(self) -> Flit:
        _enter, flit = self.queue.popleft()
        if self.feeder is not None:
            self.feeder.credits += 1
        return flit


@dataclass(slots=True)
class OutputPort:
    """One output of a router, driving a link (or the ejection port).

    ``rate`` is the link bandwidth in flits/cycle; ``credits`` mirrors the
    free slots of the downstream input buffer (infinite for ejection).
    """

    router_node: int
    to_key: int  # downstream node id, or LOCAL for ejection
    rate: float
    credits: float  # float('inf') for ejection
    tokens: float = 0.0
    owner: int | None = None  # input-port key holding the wormhole
    owner_packet_id: int | None = None
    rr_pointer: int = 0
    flits_carried: int = 0
    #: Last cycle this port's token bucket was refilled (-1 = never).  Lets
    #: the active-set simulator skip idle routers entirely and catch up
    #: their refills later, bit-identically to per-cycle refilling.
    last_refill: int = -1

    def refill(self) -> None:
        """Token-bucket refill; capacity one extra token of headroom."""
        self.tokens = min(self.tokens + self.rate, max(1.0, self.rate) + 1.0)

    def refill_to(self, cycle: int) -> None:
        """Apply every refill owed up to ``cycle`` (:func:`refill_bucket_to`)."""
        refill_bucket_to(self, cycle)

    def tokens_ready_cycle(self, cycle: int) -> int:
        """First cycle with a whole token (:func:`bucket_tokens_ready_cycle`)."""
        return bucket_tokens_ready_cycle(self, cycle)

    @property
    def can_send(self) -> bool:
        return self.tokens >= 1.0 and self.credits >= 1.0


class Router:
    """One mesh cross-point: input buffers, output ports, wormhole logic."""

    __slots__ = (
        "node",
        "router_delay",
        "inputs",
        "input_order",
        "outputs",
        "output_order",
        "last_step_released",
    )

    def __init__(
        self,
        node: int,
        input_keys: list[int],
        output_specs: dict[int, tuple[float, float]],
        buffer_depth: int,
        router_delay: int,
    ) -> None:
        """
        Args:
            node: mesh node id.
            input_keys: upstream node ids (LOCAL included by the builder).
            output_specs: downstream key -> (rate flits/cycle, initial
                credits); ejection uses ``float('inf')`` credits.
            buffer_depth: input FIFO capacity in flits.
            router_delay: pipeline latency in cycles.
        """
        self.node = node
        self.router_delay = router_delay
        self.inputs: dict[int, InputPort] = {
            key: InputPort(node, key, buffer_depth) for key in input_keys
        }
        self.input_order = sorted(self.inputs)
        self.outputs: dict[int, OutputPort] = {
            key: OutputPort(node, key, rate, credits)
            for key, (rate, credits) in output_specs.items()
        }
        self.output_order = sorted(self.outputs)
        #: True when the last step released an output port (a tail passed).
        #: The event engine re-wakes the router next cycle exactly then —
        #: a release is the only post-move state change that enables an
        #: action no other wake source predicts (re-arbitration of waiting
        #: heads, including the next head the tail's pop just exposed).
        self.last_step_released = False

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def next_hop_key(self, flit: Flit) -> int:
        """Where this flit's packet goes next from this node.

        The packet carries its full source route; the hop after this node is
        the next output, and arriving at the route's last node means
        ejection.

        Raises:
            SimulationError: when the route does not contain this node or
                requests a missing output port.
        """
        return resolve_next_hop(self.node, self.outputs, flit)

    # ------------------------------------------------------------------
    # per-cycle operation
    # ------------------------------------------------------------------
    def _arbitrate(self, port: OutputPort, cycle: int) -> int | None:
        """Round-robin among inputs whose visible head requests this output."""
        n = len(self.input_order)
        for offset in range(n):
            index = (port.rr_pointer + offset) % n
            key = self.input_order[index]
            flit = self.inputs[key].visible_head(cycle, self.router_delay)
            if flit is None or not flit.is_head:
                continue
            if self.next_hop_key(flit) == port.to_key:
                port.rr_pointer = (index + 1) % n
                return key
        return None

    def step(self, cycle: int, deliver) -> int:
        """Advance all output ports by one cycle.

        Args:
            cycle: current cycle number.
            deliver: callback ``(from_node, to_key, flit, cycle)`` invoked
                for every flit leaving this router (the network routes it to
                the downstream input buffer or the ejection sink).

        Returns:
            Number of flits moved (the simulator's progress counter).

        With fast paths enabled, a pre-pass probes each input once and only
        touches output ports that hold a worm or are requested by a visible
        head — everything else is skipped wholesale (skipped token refills
        replay bit-exactly on the next real touch, the same invariant that
        lets whole routers be skipped).  The scalar reference scans every
        port like the seed did; both produce identical flit movements.
        """
        moved = 0
        self.last_step_released = False
        if fastpath.fast_paths_enabled():
            requested = self._probe_requests(cycle)
            for out_key in self.output_order:
                port = self.outputs[out_key]
                if port.owner is None and (
                    requested is None or out_key not in requested
                ):
                    continue
                port.refill_to(cycle)
                advanced = self._advance_port(port, cycle, deliver)
                if advanced:
                    moved += advanced
                    # A pop may have exposed the next packet's head at the
                    # front of an input FIFO; the seed scan would let a
                    # later-ordered port arbitrate it this same cycle, so
                    # refresh the request set before the skip decisions.
                    requested = self._probe_requests(cycle)
        else:
            for out_key in self.output_order:
                port = self.outputs[out_key]
                port.refill_to(cycle)
                moved += self._advance_port(port, cycle, deliver)
        return moved

    def _probe_requests(self, cycle: int) -> set[int] | None:
        """Output keys some currently visible head flit requests."""
        requested: set[int] | None = None
        for key in self.input_order:
            flit = self.inputs[key].visible_head(cycle, self.router_delay)
            if flit is not None and flit.is_head:
                out = self.next_hop_key(flit)
                if requested is None:
                    requested = {out}
                else:
                    requested.add(out)
        return requested

    def _advance_port(self, port: OutputPort, cycle: int, deliver) -> int:
        """Arbitrate (if free) and move the allocated worm's ready flits."""
        moved = 0
        if port.owner is None:
            winner = self._arbitrate(port, cycle)
            if winner is None:
                return 0
            port.owner = winner
            head = self.inputs[winner].visible_head(cycle, self.router_delay)
            assert head is not None
            port.owner_packet_id = head.packet.packet_id
        # Links faster than one flit/cycle (rate > 1) may move several
        # flits per cycle — the token bucket provides the budget.
        while port.owner is not None and port.can_send:
            source = self.inputs[port.owner]
            flit = source.visible_head(cycle, self.router_delay)
            if flit is None or flit.packet.packet_id != port.owner_packet_id:
                break  # worm's next flit not here/ready yet
            if self.next_hop_key(flit) != port.to_key:  # pragma: no cover
                raise SimulationError(
                    f"worm of packet {flit.packet.packet_id} changed direction"
                )
            source.pop()
            port.tokens -= 1.0
            if port.credits != float("inf"):
                port.credits -= 1.0
            port.flits_carried += 1
            deliver(self.node, port.to_key, flit, cycle)
            moved += 1
            if is_last_flit(flit):
                port.owner = None
                port.owner_packet_id = None
                self.last_step_released = True
        return moved

    def awaits_credit(self, to_key: int) -> bool:
        """Whether a credit returned on ``to_key`` could unblock a move.

        Credits only gate moves of an *allocated* worm; arbitration ignores
        them.  The event engine uses this O(1) probe to decide whether a
        downstream pop must wake this router.
        """
        return self.outputs[to_key].owner is not None

    def buffered_flits(self) -> int:
        return sum(port.occupancy for port in self.inputs.values())

    def is_idle(self) -> bool:
        """True when stepping this router would be a no-op (modulo refill).

        No buffered flits and no allocated wormhole means no arbitration can
        succeed and no flit can move; token refills are the only skipped
        effect, and :meth:`OutputPort.refill_to` replays those exactly when
        the router re-activates.
        """
        for port in self.inputs.values():
            if port.queue:
                return False
        for port in self.outputs.values():
            if port.owner is not None:
                return False
        return True

    def next_action_cycle(self, cycle: int) -> int | None:
        """Earliest cycle after ``cycle`` a step could change state by itself.

        Called by the event engine right after :meth:`step` ran at
        ``cycle``.  Only two things make a stalled router act again without
        an external event (arrival or credit return):

        * a queued flit finishing the router pipeline — its head-of-line
          visibility cycle is ``enter + router_delay``;
        * an allocated worm waiting for link tokens — the refill schedule
          is deterministic, so the cycle the bucket reaches one token is
          :meth:`OutputPort.tokens_ready_cycle`.

        Already-visible-but-blocked heads contribute no candidate: they are
        waiting on a port release (a move in this router — the engine
        reschedules after any move), a credit, or an arrival, all of which
        generate their own wake events.
        """
        best: int | None = None
        for port in self.inputs.values():
            if port.queue:
                enter, _flit = port.queue[0]
                visible = enter + self.router_delay
                if visible > cycle and (best is None or visible < best):
                    best = visible
        for out_key in self.output_order:
            port = self.outputs[out_key]
            if port.owner is None or port.tokens >= 1.0 or port.credits < 1.0:
                continue
            source = self.inputs[port.owner]
            flit = source.visible_head(cycle, self.router_delay)
            if flit is None or flit.packet.packet_id != port.owner_packet_id:
                continue  # waiting on an arrival or the pipeline, not tokens
            ready = port.tokens_ready_cycle(cycle)
            if best is None or ready < best:
                best = ready
        return best


@register_router_model("wormhole")
def build_wormhole_router(
    node: int,
    input_keys: list[int],
    output_specs: dict[int, tuple[float, float]],
    config,
) -> Router:
    """Factory for the paper's single-channel wormhole router."""
    return Router(
        node,
        input_keys,
        output_specs,
        buffer_depth=config.buffer_depth,
        router_delay=config.router_delay,
    )
