"""Wormhole router with virtual channels (the richer router model).

The paper's router (:class:`repro.simnoc.router.Router`) blocks head-of-line:
one stalled worm freezes the whole physical link — the "domino effect"
behind the non-linear latency growth of single-path routing.  Virtual
channels are the classical fix: each physical link multiplexes ``num_vcs``
lanes, every lane with its own input FIFO and credit loop, and the link's
serialization budget round-robins across lanes flit by flit.  A worm blocked
on VC0 no longer stalls traffic riding VC1 over the same wires.

Model choices (kept deliberately simple and deterministic):

* **Per-flow VC assignment** — the injecting NI pins each packet to
  ``commodity_index % num_vcs`` for its whole journey.  Flows never change
  lanes mid-flight, which preserves per-flow in-order delivery (packets of
  one flow cannot overtake each other on a different lane).
* **Per-VC wormhole allocation** — a head flit allocates (output port,
  its VC) and holds it until the tail passes, exactly like the base router
  but per lane.
* **Shared link budget** — one token bucket per output port (the physical
  link's flits/cycle), arbitrated round-robin across VCs, so adding VCs
  never creates bandwidth out of thin air.

Timing (pipeline delay, token-bucket serialization, credit flow control)
matches the base router so the two models are comparable knob-for-knob.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import fastpath
from repro.errors import SimulationError
from repro.simnoc.models import register_router_model
from repro.simnoc.packet import Flit, is_last_flit
from repro.simnoc.router import (
    LOCAL,
    bucket_tokens_ready_cycle,
    refill_bucket_to,
    resolve_next_hop,
)


@dataclass(slots=True)
class VCInputPort:
    """One input of a VC router: ``num_vcs`` FIFOs sharing the physical link."""

    router_node: int
    from_key: int  # upstream node id, or LOCAL
    num_vcs: int
    vc_capacity: int
    queues: list[deque] = field(default_factory=list)  # per VC: (enter, Flit)
    feeder: "VCOutputPort | None" = None

    def __post_init__(self) -> None:
        if not self.queues:
            self.queues = [deque() for _ in range(self.num_vcs)]

    @property
    def occupancy(self) -> int:
        return sum(len(queue) for queue in self.queues)

    def can_accept(self, flit: Flit) -> bool:
        """Whether the flit's lane has a free slot (NI backpressure probe)."""
        return len(self.queues[flit.packet.vc]) < self.vc_capacity

    def push(self, flit: Flit, cycle: int) -> None:
        queue = self.queues[flit.packet.vc]
        if len(queue) >= self.vc_capacity:
            raise SimulationError(
                f"VC buffer overflow at node {self.router_node} port "
                f"{self.from_key} vc {flit.packet.vc}"
            )
        queue.append((cycle, flit))

    def visible_head(self, vc: int, cycle: int, router_delay: int) -> Flit | None:
        """The lane's head-of-line flit if it cleared the router pipeline."""
        queue = self.queues[vc]
        if not queue:
            return None
        enter_cycle, flit = queue[0]
        if cycle - enter_cycle >= router_delay:
            return flit
        return None

    def pop(self, vc: int) -> Flit:
        _enter, flit = self.queues[vc].popleft()
        if self.feeder is not None:
            self.feeder.vc_credits[vc] += 1
        return flit


@dataclass(slots=True)
class VCOutputPort:
    """One output of a VC router: shared token bucket, per-VC allocation state."""

    router_node: int
    to_key: int  # downstream node id, or LOCAL for ejection
    rate: float
    num_vcs: int
    vc_credits: list[float]  # float('inf') per lane for ejection
    tokens: float = 0.0
    vc_owner: list[int | None] = field(default_factory=list)
    vc_owner_packet: list[int | None] = field(default_factory=list)
    vc_rr_inputs: list[int] = field(default_factory=list)  # arbitration per VC
    vc_rr: int = 0  # flit-interleaving pointer across VCs
    flits_carried: int = 0
    last_refill: int = -1

    def __post_init__(self) -> None:
        if not self.vc_owner:
            self.vc_owner = [None] * self.num_vcs
            self.vc_owner_packet = [None] * self.num_vcs
            self.vc_rr_inputs = [0] * self.num_vcs

    def refill_to(self, cycle: int) -> None:
        """Apply every refill owed up to ``cycle`` (:func:`refill_bucket_to`)."""
        refill_bucket_to(self, cycle)

    def tokens_ready_cycle(self, cycle: int) -> int:
        """First cycle with a whole token (:func:`bucket_tokens_ready_cycle`)."""
        return bucket_tokens_ready_cycle(self, cycle)


class VCRouter:
    """Input-buffered wormhole router with ``num_vcs`` virtual channels."""

    __slots__ = (
        "node",
        "num_vcs",
        "router_delay",
        "inputs",
        "input_order",
        "outputs",
        "output_order",
        "last_step_released",
    )

    def __init__(
        self,
        node: int,
        input_keys: list[int],
        output_specs: dict[int, tuple[float, float]],
        num_vcs: int,
        vc_buffer_depth: int,
        router_delay: int,
    ) -> None:
        """
        Args:
            node: mesh node id.
            input_keys: upstream node ids (LOCAL included by the builder).
            output_specs: downstream key -> (rate flits/cycle, initial
                credits *per VC*); ejection uses ``float('inf')``.
            num_vcs: virtual channels per physical link.
            vc_buffer_depth: input FIFO capacity per VC, in flits.
            router_delay: pipeline latency in cycles.
        """
        if num_vcs < 1:
            raise SimulationError(f"num_vcs must be >= 1, got {num_vcs}")
        self.node = node
        self.num_vcs = num_vcs
        self.router_delay = router_delay
        self.inputs: dict[int, VCInputPort] = {
            key: VCInputPort(node, key, num_vcs, vc_buffer_depth)
            for key in input_keys
        }
        self.input_order = sorted(self.inputs)
        self.outputs: dict[int, VCOutputPort] = {
            key: VCOutputPort(node, key, rate, num_vcs, [credits] * num_vcs)
            for key, (rate, credits) in output_specs.items()
        }
        self.output_order = sorted(self.outputs)
        #: True when the last step released a lane (same event-engine
        #: contract as :class:`repro.simnoc.router.Router`).
        self.last_step_released = False

    def next_hop_key(self, flit: Flit) -> int:
        """Where this flit's packet goes next from this node."""
        return resolve_next_hop(self.node, self.outputs, flit)

    # ------------------------------------------------------------------
    # per-cycle operation
    # ------------------------------------------------------------------
    def _arbitrate(self, port: VCOutputPort, vc: int, cycle: int) -> int | None:
        """Round-robin among inputs whose lane-``vc`` head requests this port."""
        n = len(self.input_order)
        for offset in range(n):
            index = (port.vc_rr_inputs[vc] + offset) % n
            key = self.input_order[index]
            flit = self.inputs[key].visible_head(vc, cycle, self.router_delay)
            if flit is None or not flit.is_head:
                continue
            if self.next_hop_key(flit) == port.to_key:
                port.vc_rr_inputs[vc] = (index + 1) % n
                return key
        return None

    def _movable_flit(self, port: VCOutputPort, vc: int, cycle: int) -> Flit | None:
        """The lane's next flit if its worm can cross the switch right now."""
        owner = port.vc_owner[vc]
        if owner is None or port.vc_credits[vc] < 1.0:
            return None
        flit = self.inputs[owner].visible_head(vc, cycle, self.router_delay)
        if flit is None or flit.packet.packet_id != port.vc_owner_packet[vc]:
            return None
        return flit

    def step(self, cycle: int, deliver) -> int:
        """Advance all output ports by one cycle (same contract as Router).

        With fast paths enabled, a pre-pass mirroring the base router's
        names the (output, vc) pairs a visible lane head could arbitrate
        for; untouched ports are skipped wholesale (refills replay
        bit-exactly later).  The scalar reference scans every port and
        lane; both produce identical flit movements.
        """
        moved = 0
        self.last_step_released = False
        if fastpath.fast_paths_enabled():
            requested = self._probe_requests(cycle)
            for out_key in self.output_order:
                port = self.outputs[out_key]
                wanted = requested.get(out_key)
                if wanted is None and all(owner is None for owner in port.vc_owner):
                    continue
                port.refill_to(cycle)
                advanced = self._advance_port(
                    port, sorted(wanted) if wanted is not None else (), cycle, deliver
                )
                if advanced:
                    moved += advanced
                    # Pops may expose new lane heads that later-ordered
                    # ports would arbitrate this same cycle (see Router).
                    requested = self._probe_requests(cycle)
        else:
            all_lanes = range(self.num_vcs)
            for out_key in self.output_order:
                port = self.outputs[out_key]
                port.refill_to(cycle)
                moved += self._advance_port(port, all_lanes, cycle, deliver)
        return moved

    def _probe_requests(self, cycle: int) -> dict[int, set[int]]:
        """(output key -> lanes) some currently visible lane head requests."""
        requested: dict[int, set[int]] = {}
        for key in self.input_order:
            port_in = self.inputs[key]
            for vc in range(self.num_vcs):
                flit = port_in.visible_head(vc, cycle, self.router_delay)
                if flit is not None and flit.is_head:
                    requested.setdefault(self.next_hop_key(flit), set()).add(vc)
        return requested

    def _advance_port(self, port: VCOutputPort, lanes, cycle: int, deliver) -> int:
        """Allocate free lanes in ``lanes``, then move ready flits."""
        moved = 0
        # Lane allocation: every free lane arbitrates independently.
        for vc in lanes:
            if port.vc_owner[vc] is not None:
                continue
            winner = self._arbitrate(port, vc, cycle)
            if winner is None:
                continue
            port.vc_owner[vc] = winner
            head = self.inputs[winner].visible_head(vc, cycle, self.router_delay)
            assert head is not None
            port.vc_owner_packet[vc] = head.packet.packet_id
        # Switch traversal: the physical link's token budget is shared,
        # round-robinned across lanes flit by flit.
        while port.tokens >= 1.0:
            progressed = False
            for offset in range(self.num_vcs):
                vc = (port.vc_rr + offset) % self.num_vcs
                flit = self._movable_flit(port, vc, cycle)
                if flit is None:
                    continue
                if self.next_hop_key(flit) != port.to_key:  # pragma: no cover
                    raise SimulationError(
                        f"worm of packet {flit.packet.packet_id} changed direction"
                    )
                self.inputs[port.vc_owner[vc]].pop(vc)
                port.tokens -= 1.0
                if port.vc_credits[vc] != float("inf"):
                    port.vc_credits[vc] -= 1.0
                port.flits_carried += 1
                deliver(self.node, port.to_key, flit, cycle)
                moved += 1
                if is_last_flit(flit):
                    port.vc_owner[vc] = None
                    port.vc_owner_packet[vc] = None
                    self.last_step_released = True
                port.vc_rr = (vc + 1) % self.num_vcs
                progressed = True
                break
            if not progressed:
                break
        return moved

    def awaits_credit(self, to_key: int) -> bool:
        """Whether a credit returned on ``to_key`` could unblock a move."""
        return any(owner is not None for owner in self.outputs[to_key].vc_owner)

    def buffered_flits(self) -> int:
        return sum(port.occupancy for port in self.inputs.values())

    def is_idle(self) -> bool:
        """True when stepping would be a no-op (modulo token refills)."""
        for port in self.inputs.values():
            if port.occupancy:
                return False
        for port in self.outputs.values():
            if any(owner is not None for owner in port.vc_owner):
                return False
        return True

    def next_action_cycle(self, cycle: int) -> int | None:
        """Earliest self-scheduled action cycle (event-engine contract).

        Mirrors :meth:`repro.simnoc.router.Router.next_action_cycle`:
        pipeline-visibility cycles of queued lane heads, plus token-ready
        cycles for allocated lanes that are flit-ready and credit-ready but
        token-starved.
        """
        best: int | None = None
        for port in self.inputs.values():
            for queue in port.queues:
                if queue:
                    visible = queue[0][0] + self.router_delay
                    if visible > cycle and (best is None or visible < best):
                        best = visible
        for out_key in self.output_order:
            port = self.outputs[out_key]
            if port.tokens >= 1.0:
                continue
            for vc in range(self.num_vcs):
                if self._movable_flit(port, vc, cycle) is not None:
                    ready = port.tokens_ready_cycle(cycle)
                    if best is None or ready < best:
                        best = ready
                    break
        return best


@register_router_model("wormhole-vc", per_lane_buffers=True)
def build_vc_router(
    node: int,
    input_keys: list[int],
    output_specs: dict[int, tuple[float, float]],
    config,
) -> VCRouter:
    """Factory for the virtual-channel wormhole router."""
    return VCRouter(
        node,
        input_keys,
        output_specs,
        num_vcs=config.num_vcs,
        vc_buffer_depth=config.effective_vc_depth,
        router_delay=config.router_delay,
    )
