"""Assemble a simulatable network from a mapping and a routing result.

``build_network`` is the ×pipesCompiler-equivalent step at simulation level:
it instantiates one router per mesh node (the model picked by the config's
``num_vcs``/``router_model`` — see :mod:`repro.simnoc.models`), wires
input/output ports along the topology's links, attaches a network interface
per node and creates one bursty traffic source per commodity, with the
source's weighted path set taken from the routing result (single path, or a
flow decomposition of the MCF solution for split traffic).

``build_synthetic_network`` builds the same fabric but drives it with a
registered synthetic traffic pattern (uniform/transpose/onoff) instead of
the mapped core graph — the substrate for saturation sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.base import RoutingResult, decompose_flows
from repro.simnoc.config import SimConfig
from repro.simnoc.models import (
    RouterModel,
    TrafficSource,
    get_router_model,
    get_traffic_pattern,
    router_model_uses_lanes,
)
from repro.simnoc.ni import NetworkInterface
from repro.simnoc.router import LOCAL
from repro.simnoc.traffic import BurstyTrafficSource


@dataclass
class Network:
    """All simulator components of one NoC instance."""

    topology: NoCTopology
    config: SimConfig
    routers: dict[int, RouterModel]
    interfaces: dict[int, NetworkInterface]
    sources: list[TrafficSource]
    link_rates: dict[tuple[int, int], float] = field(default_factory=dict)

    def total_buffered_flits(self) -> int:
        return sum(router.buffered_flits() for router in self.routers.values())

    def total_backlog_flits(self) -> int:
        return sum(ni.backlog_flits for ni in self.interfaces.values())


def commodity_paths(
    routing: RoutingResult, commodity: Commodity
) -> list[tuple[list[int], float]]:
    """Weighted source routes for one commodity from a routing result."""
    if routing.paths is not None:
        return [(list(routing.paths[commodity.index]), 1.0)]
    return decompose_flows(
        routing.topology, commodity, routing.flows.get(commodity.index, {})
    )


def build_fabric(
    topology: NoCTopology,
    config: SimConfig,
    link_rate_flits_per_cycle: float | None = None,
) -> tuple[
    dict[int, RouterModel], dict[int, NetworkInterface], dict[tuple[int, int], float]
]:
    """Routers + NIs + link rates, wired but with no traffic attached.

    The router model comes from the config (``num_vcs > 1`` selects the
    VC wormhole router unless ``router_model`` pins one explicitly); credit
    loops are wired per physical link, or per virtual channel for VC models.

    Raises:
        SimulationError: if any link's rate comes out non-positive.
    """
    model_name = config.effective_router_model
    factory = get_router_model(model_name)
    # Credit budget = the downstream input FIFO the wire feeds.  Whether
    # that FIFO is per lane or per link is declared by the model's
    # registration, never inferred from its name (a custom model with
    # num_vcs=1 would otherwise get credits sized for the wrong buffer).
    if router_model_uses_lanes(model_name):
        credit_depth = config.effective_vc_depth
    else:
        if config.num_vcs > 1:
            raise SimulationError(
                f"router model {model_name!r} buffers per link and cannot "
                f"carry num_vcs={config.num_vcs}; pick a per-lane model "
                f"such as 'wormhole-vc'"
            )
        credit_depth = config.buffer_depth

    routers: dict[int, RouterModel] = {}
    for node in topology.nodes:
        input_keys = [LOCAL] + list(topology.neighbors(node))
        output_specs: dict[int, tuple[float, float]] = {
            LOCAL: (1.0, float("inf"))
        }
        for neighbor in topology.neighbors(node):
            if link_rate_flits_per_cycle is not None:
                rate = link_rate_flits_per_cycle
            else:
                rate = config.mbps_to_flits_per_cycle(
                    topology.link_bandwidth(node, neighbor)
                )
            if rate <= 0:
                raise SimulationError(f"link {node}->{neighbor} has rate {rate}")
            output_specs[neighbor] = (rate, float(credit_depth))
        routers[node] = factory(node, input_keys, output_specs, config)

    # Wire credit feedback: each input port knows the output port feeding it.
    for node, router in routers.items():
        for neighbor in topology.neighbors(node):
            upstream = routers[neighbor]
            router.inputs[neighbor].feeder = upstream.outputs[node]

    interfaces = {
        node: NetworkInterface(node, routers[node], num_vcs=config.num_vcs)
        for node in topology.nodes
    }
    link_rates = {
        (link.src, link.dst): routers[link.src].outputs[link.dst].rate
        for link in topology.links()
    }
    return routers, interfaces, link_rates


def build_network(
    topology: NoCTopology,
    commodities: list[Commodity],
    routing: RoutingResult,
    config: SimConfig,
    link_rate_flits_per_cycle: float | None = None,
    bandwidth_scale: float = 1.0,
) -> Network:
    """Build a ready-to-run :class:`Network` with trace-driven traffic.

    Args:
        topology: the mesh/torus to instantiate.
        commodities: traffic demands (MB/s each).
        routing: where each commodity's packets travel (paths or flows).
        config: global simulator parameters.
        link_rate_flits_per_cycle: override every link's rate (Figure 5c
            sweeps this); by default each link's rate derives from its
            bandwidth in the topology via the config's clock/flit width.
        bandwidth_scale: multiplies every commodity's injection rate
            (load-sweep experiments).

    Raises:
        SimulationError: if any commodity's scaled rate exceeds one
            flit/cycle (a single NI cannot physically inject faster).
    """
    routers, interfaces, link_rates = build_fabric(
        topology, config, link_rate_flits_per_cycle
    )

    sources: list[BurstyTrafficSource] = []
    for commodity in sorted(commodities, key=lambda c: c.index):
        rate = config.mbps_to_flits_per_cycle(commodity.value) * bandwidth_scale
        source = BurstyTrafficSource(
            commodity_index=commodity.index,
            src_node=commodity.src_node,
            dst_node=commodity.dst_node,
            rate_flits_per_cycle=rate,
            paths=commodity_paths(routing, commodity),
            config=config,
            rng=random.Random(config.seed * 1_000_003 + commodity.index),
        )
        sources.append(source)

    return Network(
        topology=topology,
        config=config,
        routers=routers,
        interfaces=interfaces,
        sources=sources,
        link_rates=link_rates,
    )


def build_synthetic_network(
    topology: NoCTopology,
    config: SimConfig,
    traffic: str,
    injection_rate: float,
    link_rate_flits_per_cycle: float | None = None,
) -> Network:
    """Build a :class:`Network` driven by a registered synthetic pattern.

    Args:
        topology: the mesh/torus to instantiate.
        config: global simulator parameters (seed drives the injectors).
        traffic: registered pattern name (``"uniform"``, ``"transpose"``,
            ``"onoff"``).
        injection_rate: offered load per injecting node, in flits/cycle.
        link_rate_flits_per_cycle: optional uniform link-rate override.

    Raises:
        SimulationError: for unknown patterns or oversubscribed injection.
    """
    routers, interfaces, link_rates = build_fabric(
        topology, config, link_rate_flits_per_cycle
    )
    sources = list(get_traffic_pattern(traffic)(topology, config, injection_rate))
    sources.sort(key=lambda source: source.src_node)
    return Network(
        topology=topology,
        config=config,
        routers=routers,
        interfaces=interfaces,
        sources=sources,
        link_rates=link_rates,
    )
