"""Assemble a simulatable network from a mapping and a routing result.

``build_network`` is the ×pipesCompiler-equivalent step at simulation level:
it instantiates one router per mesh node, wires input/output ports along the
topology's links, attaches a network interface per node and creates one
bursty traffic source per commodity, with the source's weighted path set
taken from the routing result (single path, or a flow decomposition of the
MCF solution for split traffic).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.base import RoutingResult, decompose_flows
from repro.simnoc.config import SimConfig
from repro.simnoc.ni import NetworkInterface
from repro.simnoc.router import LOCAL, Router
from repro.simnoc.traffic import BurstyTrafficSource


@dataclass
class Network:
    """All simulator components of one NoC instance."""

    topology: NoCTopology
    config: SimConfig
    routers: dict[int, Router]
    interfaces: dict[int, NetworkInterface]
    sources: list[BurstyTrafficSource]
    link_rates: dict[tuple[int, int], float] = field(default_factory=dict)

    def total_buffered_flits(self) -> int:
        return sum(router.buffered_flits() for router in self.routers.values())

    def total_backlog_flits(self) -> int:
        return sum(ni.backlog_flits for ni in self.interfaces.values())


def commodity_paths(
    routing: RoutingResult, commodity: Commodity
) -> list[tuple[list[int], float]]:
    """Weighted source routes for one commodity from a routing result."""
    if routing.paths is not None:
        return [(list(routing.paths[commodity.index]), 1.0)]
    return decompose_flows(
        routing.topology, commodity, routing.flows.get(commodity.index, {})
    )


def build_network(
    topology: NoCTopology,
    commodities: list[Commodity],
    routing: RoutingResult,
    config: SimConfig,
    link_rate_flits_per_cycle: float | None = None,
    bandwidth_scale: float = 1.0,
) -> Network:
    """Build a ready-to-run :class:`Network`.

    Args:
        topology: the mesh/torus to instantiate.
        commodities: traffic demands (MB/s each).
        routing: where each commodity's packets travel (paths or flows).
        config: global simulator parameters.
        link_rate_flits_per_cycle: override every link's rate (Figure 5c
            sweeps this); by default each link's rate derives from its
            bandwidth in the topology via the config's clock/flit width.
        bandwidth_scale: multiplies every commodity's injection rate
            (load-sweep experiments).

    Raises:
        SimulationError: if any commodity's scaled rate exceeds one
            flit/cycle (a single NI cannot physically inject faster).
    """
    routers: dict[int, Router] = {}
    for node in topology.nodes:
        input_keys = [LOCAL] + list(topology.neighbors(node))
        output_specs: dict[int, tuple[float, float]] = {
            LOCAL: (1.0, float("inf"))
        }
        for neighbor in topology.neighbors(node):
            if link_rate_flits_per_cycle is not None:
                rate = link_rate_flits_per_cycle
            else:
                rate = config.mbps_to_flits_per_cycle(
                    topology.link_bandwidth(node, neighbor)
                )
            if rate <= 0:
                raise SimulationError(f"link {node}->{neighbor} has rate {rate}")
            output_specs[neighbor] = (rate, float(config.buffer_depth))
        routers[node] = Router(
            node,
            input_keys,
            output_specs,
            buffer_depth=config.buffer_depth,
            router_delay=config.router_delay,
        )

    # Wire credit feedback: each input port knows the output port feeding it.
    for node, router in routers.items():
        for neighbor in topology.neighbors(node):
            upstream = routers[neighbor]
            router.inputs[neighbor].feeder = upstream.outputs[node]

    interfaces = {node: NetworkInterface(node, routers[node]) for node in topology.nodes}

    sources: list[BurstyTrafficSource] = []
    for commodity in sorted(commodities, key=lambda c: c.index):
        rate = config.mbps_to_flits_per_cycle(commodity.value) * bandwidth_scale
        source = BurstyTrafficSource(
            commodity_index=commodity.index,
            src_node=commodity.src_node,
            dst_node=commodity.dst_node,
            rate_flits_per_cycle=rate,
            paths=commodity_paths(routing, commodity),
            config=config,
            rng=random.Random(config.seed * 1_000_003 + commodity.index),
        )
        sources.append(source)

    link_rates = {
        (link.src, link.dst): routers[link.src].outputs[link.dst].rate
        for link in topology.links()
    }
    return Network(
        topology=topology,
        config=config,
        routers=routers,
        interfaces=interfaces,
        sources=sources,
        link_rates=link_rates,
    )
