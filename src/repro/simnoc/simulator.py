"""The cycle-driven simulation loop and its report.

Per cycle: traffic sources create packets (handed to their NI), NIs inject
one flit each into their router's local port, then every router advances its
output ports (arbitration, wormhole forwarding, link serialization, credit
flow control).  Flits delivered to a router's ejection port reach the NI,
which timestamps complete packets.

Packets created during warmup or drain are excluded from statistics.  A
watchdog aborts runs where no flit moves for a long stretch while traffic is
in flight (wormhole + arbitrary multi-path source routing is not provably
deadlock-free; at the evaluated loads deadlock does not occur, but silent
hangs must not masquerade as results).
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass

from repro import fastpath
from repro.errors import SimulationError
from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping
from repro.routing.base import RoutingResult
from repro.simnoc.config import SimConfig
from repro.simnoc.network import Network, build_network
from repro.simnoc.packet import Packet
from repro.simnoc.router import LOCAL
from repro.simnoc.stats import (
    LatencyStats,
    per_commodity_jitter,
    per_commodity_latency_std,
    per_commodity_means,
)

#: Cycles without any flit movement (while flits are in flight) that count
#: as a deadlock.
DEADLOCK_WINDOW = 50_000


@dataclass
class SimulationReport:
    """Everything a simulation run produced.

    Attributes:
        stats: latency statistics over measured packets.
        per_commodity_latency: mean latency per commodity index.
        packets_created / packets_delivered: totals including warmup/drain.
        cycles: cycles simulated.
        link_utilization: delivered flits / (rate * cycles) per link.
    """

    stats: LatencyStats
    per_commodity_latency: dict[int, float]
    packets_created: int
    packets_delivered: int
    cycles: int
    link_utilization: dict[tuple[int, int], float]
    per_commodity_jitter: dict[int, float]
    per_commodity_latency_std: dict[int, float]


class Simulator:
    """Drives a :class:`Network` for a configured number of cycles.

    Args:
        network: the built network to simulate.
        trace: optional :class:`repro.simnoc.trace.TraceRecorder`; when
            given, every flit movement is recorded (bounded by the
            recorder's cap).
    """

    def __init__(self, network: Network, trace=None, active_set: bool | None = None) -> None:
        self.network = network
        self.config = network.config
        self.trace = trace
        #: None = follow the global fast-path switch; True/False forces the
        #: active-set or full-scan cycle loop (the latter is the reference
        #: oracle the equivalence tests compare against).
        self.active_set = active_set
        self._packet_counter = 0
        self._all_packets: list[Packet] = []

    def _next_packet_id(self) -> int:
        self._packet_counter += 1
        return self._packet_counter

    def run(self) -> SimulationReport:
        """Simulate warmup + measurement + drain and aggregate statistics.

        Dispatches to the active-set cycle loop (skip idle routers/NIs,
        fast-forward fully idle gaps) or the scan-everything reference loop;
        both produce identical reports — see PERFORMANCE.md for the
        invariants that make the skipping exact.

        Raises:
            SimulationError: on detected deadlock or when no measured packet
                is delivered.
        """
        use_active = (
            self.active_set
            if self.active_set is not None
            else fastpath.fast_paths_enabled()
        )
        if use_active:
            self._run_active_set()
        else:
            self._run_full_scan()
        return self._build_report()

    def _run_full_scan(self) -> None:
        """The seed's cycle loop: every source, NI and router, every cycle."""
        network = self.network
        config = self.config
        measure_start = config.warmup_cycles
        measure_end = config.warmup_cycles + config.measure_cycles
        last_progress = 0

        trace = self.trace

        def deliver(from_node: int, to_key: int, flit, cycle: int) -> None:
            if trace is not None:
                trace.record(from_node, to_key, flit, cycle)
            if to_key == LOCAL:
                network.interfaces[from_node].eject(flit, cycle)
            else:
                network.routers[to_key].inputs[from_node].push(flit, cycle)

        for cycle in range(config.total_cycles):
            moved = 0
            for source in network.sources:
                for packet in source.packets_for_cycle(cycle, self._next_packet_id):
                    packet.measured = measure_start <= cycle < measure_end
                    self._all_packets.append(packet)
                    network.interfaces[packet.src_node].offer_packet(packet)
            for node in sorted(network.interfaces):
                moved += network.interfaces[node].inject(cycle, LOCAL)
            for node in sorted(network.routers):
                moved += network.routers[node].step(cycle, deliver)

            if moved:
                last_progress = cycle
            elif (
                cycle - last_progress > DEADLOCK_WINDOW
                and network.total_buffered_flits() > 0
            ):
                raise SimulationError(
                    f"deadlock: no flit moved since cycle {last_progress} "
                    f"with {network.total_buffered_flits()} flits buffered"
                )

    def _run_active_set(self) -> None:
        """Cycle loop that only touches components with pending work.

        Equivalence with :meth:`_run_full_scan` (the invariants the property
        tests pin down):

        * an NI with an empty injection queue and a router with no buffered
          flits and no allocated wormhole are no-ops in the full scan except
          for token refills, which :meth:`OutputPort.refill_to` replays
          bit-exactly on re-activation;
        * routers are stepped in ascending node id; a flit delivered
          downstream mid-cycle activates its receiver, inserting it into the
          current sweep iff its id is still ahead (the full scan would have
          stepped it later this same cycle) — receivers behind the sweep
          point were stepped as no-ops already and wake next cycle;
        * sources sit in a heap keyed by their next firing cycle, so a
          completely idle network (no backlog, no flits in flight) jumps
          straight to the next injection without touching anything.
        """
        network = self.network
        config = self.config
        measure_start = config.warmup_cycles
        measure_end = config.warmup_cycles + config.measure_cycles
        total_cycles = config.total_cycles
        last_progress = 0

        trace = self.trace
        routers = network.routers
        interfaces = network.interfaces

        active_routers: set[int] = set()
        active_nis: set[int] = set()

        # Per-cycle router sweep state, shared with the deliver closure.
        sweep: list[int] = []
        swept: set[int] = set()
        sweep_pos = [0]

        def deliver(from_node: int, to_key: int, flit, cycle: int) -> None:
            if trace is not None:
                trace.record(from_node, to_key, flit, cycle)
            if to_key == LOCAL:
                interfaces[from_node].eject(flit, cycle)
                return
            routers[to_key].inputs[from_node].push(flit, cycle)
            active_routers.add(to_key)
            if to_key not in swept and to_key > sweep[sweep_pos[0]]:
                bisect.insort(sweep, to_key, lo=sweep_pos[0] + 1)
                swept.add(to_key)

        event_heap = [
            (source.next_event_cycle, index)
            for index, source in enumerate(network.sources)
        ]
        heapq.heapify(event_heap)

        cycle = 0
        while cycle < total_cycles:
            if not active_routers and not active_nis:
                # Fully idle: no flit buffered or in flight anywhere, so
                # nothing can happen before the next source fires.
                if not event_heap or event_heap[0][0] >= total_cycles:
                    break
                if event_heap[0][0] > cycle:
                    cycle = event_heap[0][0]

            while event_heap and event_heap[0][0] <= cycle:
                _, index = heapq.heappop(event_heap)
                source = network.sources[index]
                for packet in source.packets_for_cycle(cycle, self._next_packet_id):
                    packet.measured = measure_start <= cycle < measure_end
                    self._all_packets.append(packet)
                    interfaces[packet.src_node].offer_packet(packet)
                    active_nis.add(packet.src_node)
                heapq.heappush(event_heap, (source.next_event_cycle, index))

            moved = 0
            if active_nis:
                drained = []
                for node in sorted(active_nis):
                    interface = interfaces[node]
                    injected = interface.inject(cycle, LOCAL)
                    if injected:
                        moved += injected
                        active_routers.add(node)
                    if not interface.backlog_flits:
                        drained.append(node)
                for node in drained:
                    active_nis.discard(node)

            if active_routers:
                sweep = sorted(active_routers)
                swept = set(sweep)
                sweep_pos[0] = 0
                while sweep_pos[0] < len(sweep):
                    moved += routers[sweep[sweep_pos[0]]].step(cycle, deliver)
                    sweep_pos[0] += 1
                for node in sweep:
                    if routers[node].is_idle():
                        active_routers.discard(node)

            if moved:
                last_progress = cycle
            elif (
                cycle - last_progress > DEADLOCK_WINDOW
                and network.total_buffered_flits() > 0
            ):
                raise SimulationError(
                    f"deadlock: no flit moved since cycle {last_progress} "
                    f"with {network.total_buffered_flits()} flits buffered"
                )
            cycle += 1

    def _build_report(self) -> SimulationReport:
        network = self.network
        config = self.config
        delivered = [
            packet
            for ni in network.interfaces.values()
            for packet in ni.delivered_packets
        ]
        measured = [packet for packet in delivered if packet.measured]
        stats = LatencyStats.from_packets(measured)

        utilization = {}
        for (src, dst), rate in network.link_rates.items():
            carried = network.routers[src].outputs[dst].flits_carried
            utilization[(src, dst)] = carried / (rate * config.total_cycles)

        return SimulationReport(
            stats=stats,
            per_commodity_latency=per_commodity_means(measured),
            packets_created=len(self._all_packets),
            packets_delivered=len(delivered),
            cycles=config.total_cycles,
            link_utilization=utilization,
            per_commodity_jitter=per_commodity_jitter(measured),
            per_commodity_latency_std=per_commodity_latency_std(measured),
        )


def simulate_mapping(
    topology: NoCTopology,
    commodities: list[Commodity],
    routing: RoutingResult,
    config: SimConfig,
    link_rate_flits_per_cycle: float | None = None,
    bandwidth_scale: float = 1.0,
) -> SimulationReport:
    """Convenience wrapper: build the network and run one simulation."""
    network = build_network(
        topology,
        commodities,
        routing,
        config,
        link_rate_flits_per_cycle=link_rate_flits_per_cycle,
        bandwidth_scale=bandwidth_scale,
    )
    return Simulator(network).run()


def simulate_mapped_application(
    mapping: Mapping,
    routing: RoutingResult,
    config: SimConfig,
    **kwargs,
) -> SimulationReport:
    """Simulate a mapped application using its core graph's bandwidths."""
    from repro.graphs.commodities import build_commodities

    commodities = build_commodities(mapping.core_graph, mapping)
    return simulate_mapping(mapping.topology, commodities, routing, config, **kwargs)
