"""The simulation front door: pick an engine, run it, build the report.

The heavy lifting lives in the two layers this module stitches together:
the **model layer** (routers, NIs, traffic sources — built by
:mod:`repro.simnoc.network`) and the **engine layer**
(:mod:`repro.simnoc.engines` — cycle-accurate or event-driven time).
:class:`Simulator` is the run context engines drive: it owns the network,
the config, the optional trace recorder, the global packet-id counter and
the statistics aggregation.

Packets created during warmup or drain are excluded from statistics.  Every
engine raises :class:`~repro.errors.SimulationError` on detected deadlock
(wormhole + arbitrary multi-path source routing is not provably
deadlock-free; silent hangs must not masquerade as results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.graphs.commodities import Commodity
from repro.graphs.topology import NoCTopology
from repro.routing.base import RoutingResult

if TYPE_CHECKING:  # pragma: no cover - avoids a mapping<->simnoc import cycle
    from repro.mapping.base import Mapping
from repro.simnoc.config import SimConfig
from repro.simnoc.engines.base import get_engine
from repro.simnoc.engines.cycle import DEADLOCK_WINDOW  # noqa: F401  (re-export)
from repro.simnoc.network import Network, build_network, build_synthetic_network
from repro.simnoc.packet import Packet
from repro.simnoc.stats import FlowStats, LatencyStats, per_flow_stats


@dataclass
class SimulationReport:
    """Everything a simulation run produced.

    Attributes:
        stats: latency statistics over measured packets.
        per_commodity_latency: mean latency per commodity index.
        packets_created / packets_delivered: totals including warmup/drain.
        cycles: cycles simulated.
        link_utilization: delivered flits / (rate * cycles) per link.
        per_flow: full per-flow summaries (count, percentiles, std, jitter
            and a power-of-two latency histogram) per commodity index.
        link_flits: flits carried per directed link (the utilization
            numerator, useful when comparing runs of different lengths).
    """

    stats: LatencyStats
    per_commodity_latency: dict[int, float]
    packets_created: int
    packets_delivered: int
    cycles: int
    link_utilization: dict[tuple[int, int], float]
    per_commodity_jitter: dict[int, float]
    per_commodity_latency_std: dict[int, float]
    per_flow: dict[int, FlowStats] = field(default_factory=dict)
    link_flits: dict[tuple[int, int], int] = field(default_factory=dict)


class Simulator:
    """Drives a :class:`Network` through one configured simulation run.

    Args:
        network: the built network to simulate.
        trace: optional :class:`repro.simnoc.trace.TraceRecorder`; when
            given, every flit movement is recorded (bounded by the
            recorder's cap).
        active_set: None = follow the global fast-path switch; True/False
            forces the active-set or full-scan variant of the cycle engine
            (the latter is the reference oracle the equivalence tests
            compare against).  Ignored by the event engine.
        engine: registered engine name — ``"cycle"`` (bit-exact
            reference), ``"event"`` (heap-scheduled, skips dead time),
            ``"vector"`` (structure-of-arrays, fastest at high load),
            ``"sharded"`` (multi-process over a fabric partition) or
            ``"auto"`` (load-adaptive choice between event and vector).
        shards: worker count for the ``sharded`` engine (ignored by every
            other engine; defaults to 2 when the sharded engine runs
            without one).
        partitioner: partitioner name for the ``sharded`` engine
            (``"auto"`` walks the metis -> greedy-edge -> round-robin
            ladder; ignored by every other engine).
    """

    def __init__(
        self,
        network: Network,
        trace=None,
        active_set: bool | None = None,
        engine: str = "cycle",
        shards: int | None = None,
        partitioner: str | None = None,
    ) -> None:
        self.network = network
        self.config = network.config
        self.trace = trace
        self.active_set = active_set
        self.engine_name = engine
        self.shards = shards
        self.partitioner = partitioner
        self._packet_counter = 0
        self.all_packets: list[Packet] = []

    def next_packet_id(self) -> int:
        """Fresh globally unique packet id (engines pass this to sources)."""
        self._packet_counter += 1
        return self._packet_counter

    def run(self) -> SimulationReport:
        """Simulate warmup + measurement + drain and aggregate statistics.

        Every engine produces an identical report for identical inputs (the
        property suite pins this); they differ only in wall-clock time.

        Raises:
            SimulationError: on detected deadlock, when no measured packet
                is delivered, or for unknown engine names.
        """
        get_engine(self.engine_name).run(self)
        return self._build_report()

    def _build_report(self) -> SimulationReport:
        network = self.network
        config = self.config
        delivered = [
            packet
            for ni in network.interfaces.values()
            for packet in ni.delivered_packets
        ]
        measured = [packet for packet in delivered if packet.measured]
        stats = LatencyStats.from_packets(measured)

        utilization = {}
        link_flits = {}
        for (src, dst), rate in network.link_rates.items():
            carried = network.routers[src].outputs[dst].flits_carried
            utilization[(src, dst)] = carried / (rate * config.total_cycles)
            link_flits[(src, dst)] = carried

        # One pass computes every per-flow figure; the flat per_commodity_*
        # dicts are views of the same FlowStats, not second computations.
        per_flow = per_flow_stats(measured)
        return SimulationReport(
            stats=stats,
            per_commodity_latency={i: f.mean for i, f in per_flow.items()},
            packets_created=len(self.all_packets),
            packets_delivered=len(delivered),
            cycles=config.total_cycles,
            link_utilization=utilization,
            per_commodity_jitter={i: f.jitter for i, f in per_flow.items()},
            per_commodity_latency_std={i: f.std for i, f in per_flow.items()},
            per_flow=per_flow,
            link_flits=link_flits,
        )


def simulate_mapping(
    topology: NoCTopology,
    commodities: list[Commodity],
    routing: RoutingResult,
    config: SimConfig,
    link_rate_flits_per_cycle: float | None = None,
    bandwidth_scale: float = 1.0,
    engine: str = "cycle",
) -> SimulationReport:
    """Convenience wrapper: build the network and run one simulation."""
    network = build_network(
        topology,
        commodities,
        routing,
        config,
        link_rate_flits_per_cycle=link_rate_flits_per_cycle,
        bandwidth_scale=bandwidth_scale,
    )
    return Simulator(network, engine=engine).run()


def simulate_mapped_application(
    mapping: "Mapping",
    routing: RoutingResult,
    config: SimConfig,
    **kwargs,
) -> SimulationReport:
    """Simulate a mapped application using its core graph's bandwidths."""
    from repro.graphs.commodities import build_commodities

    commodities = build_commodities(mapping.core_graph, mapping)
    return simulate_mapping(mapping.topology, commodities, routing, config, **kwargs)


def simulate_synthetic(
    topology: NoCTopology,
    config: SimConfig,
    traffic: str,
    injection_rate: float,
    link_rate_flits_per_cycle: float | None = None,
    engine: str = "cycle",
) -> SimulationReport:
    """Simulate a registered synthetic traffic pattern on a bare topology."""
    network = build_synthetic_network(
        topology,
        config,
        traffic,
        injection_rate,
        link_rate_flits_per_cycle=link_rate_flits_per_cycle,
    )
    return Simulator(network, engine=engine).run()
