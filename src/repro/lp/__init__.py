"""Linear-programming substrate (substitute for the paper's ``lp_solve``).

The paper solves its multi-commodity-flow formulations (MCF1/MCF2) with the
standalone ``lp_solve`` package.  This package provides a small, explicit
modeling layer — variables, linear expressions, constraints, an objective —
that lowers to ``scipy.optimize.linprog`` (LPs) or ``scipy.optimize.milp``
(when integer variables are present).  The modeling layer keeps the routing
code readable: constraints are written the way the paper writes Equations
5, 8 and 9.
"""

from repro.lp.model import LinExpr, LinearProgram, Variable, lin_sum
from repro.lp.solver import Solution, SolveStatus, solve

__all__ = [
    "LinExpr",
    "LinearProgram",
    "Solution",
    "SolveStatus",
    "Variable",
    "lin_sum",
    "solve",
]
