"""Modeling objects for linear (and mixed-integer) programs.

A :class:`LinearProgram` owns :class:`Variable` objects and linear
constraints built from :class:`LinExpr` expressions.  Expressions support
natural arithmetic (``2 * x + y - 3``) and comparisons produce constraints
(``expr <= rhs``), so multi-commodity-flow builders read like the paper's
equations.  Solving is delegated to :mod:`repro.lp.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import SolverError


class Variable:
    """One decision variable with bounds and an optional integrality flag.

    Instances are created through :meth:`LinearProgram.add_var`; identity is
    the ``index`` within the owning program.
    """

    __slots__ = ("index", "name", "low", "high", "integer")

    def __init__(
        self,
        index: int,
        name: str,
        low: float | None = 0.0,
        high: float | None = None,
        integer: bool = False,
    ) -> None:
        self.index = index
        self.name = name
        self.low = low
        self.high = high
        self.integer = integer

    # Arithmetic lifts a Variable into a LinExpr -----------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self._expr() + other

    def __radd__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self._expr() + other

    def __sub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return (-1.0 * self._expr()) + other

    def __mul__(self, factor: float) -> "LinExpr":
        return self._expr() * factor

    def __rmul__(self, factor: float) -> "LinExpr":
        return self._expr() * factor

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1.0

    def __le__(self, other: "Variable | LinExpr | float") -> "ConstraintSpec":
        return self._expr() <= other

    def __ge__(self, other: "Variable | LinExpr | float") -> "ConstraintSpec":
        return self._expr() >= other

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


class LinExpr:
    """A linear expression: ``sum(coef_i * var_i) + constant``.

    Immutable by convention: arithmetic returns new expressions.  The
    coefficient map is keyed by variable index.
    """

    __slots__ = ("coefs", "constant")

    def __init__(self, coefs: Mapping[int, float] | None = None, constant: float = 0.0) -> None:
        self.coefs: dict[int, float] = dict(coefs or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value: "Variable | LinExpr | float") -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise SolverError(f"cannot use {value!r} in a linear expression")

    def __add__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        rhs = self._coerce(other)
        coefs = dict(self.coefs)
        for index, coef in rhs.coefs.items():
            coefs[index] = coefs.get(index, 0.0) + coef
        return LinExpr(coefs, self.constant + rhs.constant)

    def __radd__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self + other

    def __sub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: "Variable | LinExpr | float") -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, factor: float) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise SolverError("linear expressions can only be scaled by numbers")
        return LinExpr(
            {index: coef * factor for index, coef in self.coefs.items()},
            self.constant * factor,
        )

    def __rmul__(self, factor: float) -> "LinExpr":
        return self * factor

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other: "Variable | LinExpr | float") -> "ConstraintSpec":
        return ConstraintSpec(self - other, "<=")

    def __ge__(self, other: "Variable | LinExpr | float") -> "ConstraintSpec":
        return ConstraintSpec(self - other, ">=")

    def equals(self, other: "Variable | LinExpr | float") -> "ConstraintSpec":
        """Equality constraint (``==`` is left to Python's object semantics)."""
        return ConstraintSpec(self - other, "==")

    def __repr__(self) -> str:
        terms = " + ".join(f"{coef:g}*v{index}" for index, coef in sorted(self.coefs.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


@dataclass(frozen=True)
class ConstraintSpec:
    """A normalized constraint: ``expr (<=|>=|==) 0`` after moving the RHS."""

    expr: LinExpr
    sense: str  # "<=", ">=", "=="


def lin_sum(items: Iterable["Variable | LinExpr | float"]) -> LinExpr:
    """Sum an iterable of variables/expressions into one expression.

    Builds the coefficient map in place, so summing thousands of flow
    variables (as the MCF builders do) stays linear time.
    """
    coefs: dict[int, float] = {}
    constant = 0.0
    for item in items:
        expr = LinExpr._coerce(item)
        constant += expr.constant
        for index, coef in expr.coefs.items():
            coefs[index] = coefs.get(index, 0.0) + coef
    return LinExpr(coefs, constant)


@dataclass
class LinearProgram:
    """A container of variables, constraints and one objective.

    Attributes:
        name: label used in error messages.
        minimize: objective sense; True for minimization (the only sense the
            paper's formulations need, but maximization is supported by
            negating).
    """

    name: str = "lp"
    minimize: bool = True
    variables: list[Variable] = field(default_factory=list)
    constraints: list[ConstraintSpec] = field(default_factory=list)
    objective: LinExpr = field(default_factory=LinExpr)

    def add_var(
        self,
        name: str,
        low: float | None = 0.0,
        high: float | None = None,
        integer: bool = False,
    ) -> Variable:
        """Create a variable.  Default bounds are ``[0, +inf)`` as in the paper."""
        if low is not None and high is not None and low > high:
            raise SolverError(f"variable {name!r} has empty bounds [{low}, {high}]")
        variable = Variable(len(self.variables), name, low, high, integer)
        self.variables.append(variable)
        return variable

    def add_constraint(self, spec: ConstraintSpec) -> None:
        """Register a constraint built via ``<=``, ``>=`` or ``.equals()``."""
        if not isinstance(spec, ConstraintSpec):
            raise SolverError(
                "add_constraint expects a comparison of linear expressions; "
                f"got {spec!r}"
            )
        self.constraints.append(spec)

    def set_objective(self, expr: "Variable | LinExpr", minimize: bool = True) -> None:
        self.objective = LinExpr._coerce(expr)
        self.minimize = minimize

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def has_integer_vars(self) -> bool:
        return any(variable.integer for variable in self.variables)

    def bounds(self) -> Sequence[tuple[float | None, float | None]]:
        return [(variable.low, variable.high) for variable in self.variables]

    def __repr__(self) -> str:
        kind = "MILP" if self.has_integer_vars else "LP"
        return (
            f"LinearProgram({self.name!r}, {kind}, vars={self.num_vars}, "
            f"constraints={self.num_constraints})"
        )
