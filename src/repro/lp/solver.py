"""Lowering :class:`~repro.lp.model.LinearProgram` to scipy's HiGHS solvers.

Pure LPs go through :func:`scipy.optimize.linprog`; programs with integer
variables go through :func:`scipy.optimize.milp`.  Both receive sparse
constraint matrices, so the mesh-sized MCF programs (a few thousand
variables) solve in milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.errors import SolverError
from repro.lp.model import LinearProgram


class SolveStatus(enum.Enum):
    """Normalized solver outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(frozen=True)
class Solution:
    """Result of solving a :class:`LinearProgram`.

    Attributes:
        status: normalized outcome.
        objective: objective value including the expression's constant term
            (meaningful only when ``status`` is OPTIMAL).
        values: optimal value per variable index.
    """

    status: SolveStatus
    objective: float
    values: tuple[float, ...]

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def value_of(self, variable) -> float:  # noqa: ANN001 - Variable, avoids import cycle
        """Optimal value of a variable (by its ``index``)."""
        return self.values[variable.index]


def _build_matrices(program: LinearProgram):
    """Split constraints into A_ub x <= b_ub and A_eq x == b_eq (sparse)."""
    ub_rows: list[dict[int, float]] = []
    ub_rhs: list[float] = []
    eq_rows: list[dict[int, float]] = []
    eq_rhs: list[float] = []
    for spec in program.constraints:
        coefs = spec.expr.coefs
        rhs = -spec.expr.constant
        if spec.sense == "<=":
            ub_rows.append(coefs)
            ub_rhs.append(rhs)
        elif spec.sense == ">=":
            ub_rows.append({index: -coef for index, coef in coefs.items()})
            ub_rhs.append(-rhs)
        elif spec.sense == "==":
            eq_rows.append(coefs)
            eq_rhs.append(rhs)
        else:  # pragma: no cover - ConstraintSpec only produces these senses
            raise SolverError(f"unknown constraint sense {spec.sense!r}")

    def to_sparse(rows: list[dict[int, float]]):
        data: list[float] = []
        row_idx: list[int] = []
        col_idx: list[int] = []
        for row, coefs in enumerate(rows):
            for col, coef in coefs.items():
                row_idx.append(row)
                col_idx.append(col)
                data.append(coef)
        return sparse.csr_matrix(
            (data, (row_idx, col_idx)), shape=(len(rows), program.num_vars)
        )

    return to_sparse(ub_rows), np.array(ub_rhs), to_sparse(eq_rows), np.array(eq_rhs)


def _objective_vector(program: LinearProgram) -> np.ndarray:
    vector = np.zeros(program.num_vars)
    for index, coef in program.objective.coefs.items():
        vector[index] = coef
    if not program.minimize:
        vector = -vector
    return vector


def _finish(program: LinearProgram, status: SolveStatus, x, objective: float) -> Solution:
    if status is not SolveStatus.OPTIMAL:
        return Solution(status=status, objective=float("nan"), values=())
    value = objective + program.objective.constant
    if not program.minimize:
        value = -objective + program.objective.constant
    return Solution(status=status, objective=float(value), values=tuple(float(v) for v in x))


def solve(program: LinearProgram) -> Solution:
    """Solve a linear or mixed-integer program.

    Args:
        program: the model to solve; must have at least one variable.

    Returns:
        A :class:`Solution`; infeasibility/unboundedness is reported in the
        status rather than raised, because MCF1's whole point is to measure
        how infeasible a mapping is.

    Raises:
        SolverError: on empty programs or unexpected backend failures.
    """
    if program.num_vars == 0:
        raise SolverError(f"program {program.name!r} has no variables")
    a_ub, b_ub, a_eq, b_eq = _build_matrices(program)
    cost = _objective_vector(program)
    bounds = program.bounds()

    if program.has_integer_vars:
        return _solve_milp(program, cost, a_ub, b_ub, a_eq, b_eq)

    result = optimize.linprog(
        cost,
        A_ub=a_ub if a_ub.shape[0] else None,
        b_ub=b_ub if len(b_ub) else None,
        A_eq=a_eq if a_eq.shape[0] else None,
        b_eq=b_eq if len(b_eq) else None,
        bounds=bounds,
        method="highs",
    )
    if result.status == 0:
        return _finish(program, SolveStatus.OPTIMAL, result.x, float(result.fun))
    if result.status == 2:
        return _finish(program, SolveStatus.INFEASIBLE, None, 0.0)
    if result.status == 3:
        return _finish(program, SolveStatus.UNBOUNDED, None, 0.0)
    raise SolverError(
        f"linprog failed on {program.name!r}: status={result.status} {result.message}"
    )


def _solve_milp(program: LinearProgram, cost, a_ub, b_ub, a_eq, b_eq) -> Solution:
    constraints = []
    if a_ub.shape[0]:
        constraints.append(optimize.LinearConstraint(a_ub, -np.inf, b_ub))
    if a_eq.shape[0]:
        constraints.append(optimize.LinearConstraint(a_eq, b_eq, b_eq))
    integrality = np.array(
        [1 if variable.integer else 0 for variable in program.variables]
    )
    lower = np.array(
        [-np.inf if variable.low is None else variable.low for variable in program.variables]
    )
    upper = np.array(
        [np.inf if variable.high is None else variable.high for variable in program.variables]
    )
    result = optimize.milp(
        cost,
        constraints=constraints,
        integrality=integrality,
        bounds=optimize.Bounds(lower, upper),
    )
    if result.status == 0:
        return _finish(program, SolveStatus.OPTIMAL, result.x, float(result.fun))
    if result.status == 2:
        return _finish(program, SolveStatus.INFEASIBLE, None, 0.0)
    if result.status == 3:  # pragma: no cover - unbounded MILPs not built here
        return _finish(program, SolveStatus.UNBOUNDED, None, 0.0)
    raise SolverError(
        f"milp failed on {program.name!r}: status={result.status} {result.message}"
    )
