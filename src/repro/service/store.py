"""Content-addressed result store: the service's persistent cache tier.

Entries are keyed by :func:`repro.api.canonical_request_key` — the SHA-256
of the canonical serialized request — and hold the canonical response
bytes (:func:`repro.service.wire.canonical_response_bytes`).  The store
generalizes the PR-4 in-process ``execute_map``/routing caches into a tier
that survives the process and is shared by every worker thread:

* **Schema-version namespacing.**  Entries live under
  ``<root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json``; bumping the payload
  schema changes both the namespace directory *and* the key itself (the
  blob embeds the version), so stale-format entries can never be served.
* **Atomic writes.**  Every entry is written to a temporary file in the
  destination directory and published with ``os.replace`` — concurrent
  writers of one key race harmlessly to an identical final state and a
  reader can never observe a half-written entry.
* **Corruption tolerance.**  A truncated or garbage entry (killed writer
  on a non-atomic filesystem, disk fault) fails JSON validation on read,
  is unlinked best-effort, and reads as a miss — the request recomputes
  and repairs the entry instead of crashing the service.
* **In-flight dedup.**  The first caller to :meth:`claim` a cold key owns
  its computation; concurrent claimers of the same key :meth:`wait` and
  receive the owner's exact bytes.  100 identical concurrent submissions
  execute once and all 100 read byte-identical bodies.

Error results (``error-response`` payloads) are *published* to waiters —
concurrent duplicates of a failing request all see the same typed failure
— but never *persisted*: a transient timeout or worker death must not
poison the cache for future submissions.

Deadlock discipline for direct ``claim``/``publish`` users (the job
runner): never ``wait`` on a key before publishing or abandoning every key
you own, and claim each distinct key at most once per job.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Callable

from repro.api.specs import SCHEMA_VERSION


class _InFlight:
    """One in-progress computation: waiters block on ``event``."""

    __slots__ = ("event", "data")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.data: bytes | None = None


class ResultStore:
    """Thread-safe content-addressed result store (disk- or memory-backed).

    Args:
        root: directory for the persistent tier; ``None`` keeps entries in
            memory only (tests, throwaway servers) with identical
            semantics.
        schema_version: payload schema the namespace is bound to; defaults
            to the library's :data:`~repro.api.SCHEMA_VERSION`.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        schema_version: int = SCHEMA_VERSION,
    ) -> None:
        self._root = None if root is None else Path(root)
        self._schema = schema_version
        self._lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}
        self._memory: dict[str, bytes] = {}
        self._counts = {
            "executed": 0,
            "stored": 0,
            "hits": 0,
            "inflight_waits": 0,
            "corrupt_dropped": 0,
            "errors_uncached": 0,
        }

    # -- paths ----------------------------------------------------------
    @property
    def namespace(self) -> Path | None:
        """Schema-versioned root directory (``None`` for memory stores)."""
        if self._root is None:
            return None
        return self._root / f"v{self._schema}"

    def path_for(self, key: str) -> Path:
        """On-disk location of a key's entry (disk-backed stores only)."""
        namespace = self.namespace
        if namespace is None:
            raise ValueError("memory-backed store has no entry paths")
        return namespace / key[:2] / f"{key}.json"

    # -- validation -----------------------------------------------------
    @staticmethod
    def _valid(data: bytes) -> bool:
        """A well-formed entry: one JSON object carrying a payload kind."""
        try:
            payload = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            return False
        return isinstance(payload, dict) and "kind" in payload

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[counter] += amount

    def _read(self, key: str) -> bytes | None:
        """Raw entry bytes, or None for a miss *or* a dropped corrupt entry."""
        if self._root is None:
            with self._lock:
                return self._memory.get(key)
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if not self._valid(data):
            try:
                path.unlink()
            except OSError:
                pass
            self._bump("corrupt_dropped")
            return None
        return data

    # -- basic tier -----------------------------------------------------
    def get(self, key: str) -> bytes | None:
        """Entry bytes for ``key``, or None (misses and corrupt entries)."""
        data = self._read(key)
        if data is not None:
            self._bump("hits")
        return data

    def put(self, key: str, data: bytes) -> None:
        """Persist an entry atomically (temp file + ``os.replace``)."""
        if self._root is None:
            with self._lock:
                self._memory[key] = data
                self._counts["stored"] += 1
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self._bump("stored")

    # -- in-flight dedup ------------------------------------------------
    def claim(self, key: str) -> tuple[str, bytes | None]:
        """Resolve a key against both tiers, claiming it when cold.

        Returns one of:

        * ``("hit", data)`` — the entry exists; serve it.
        * ``("owned", None)`` — the caller now owns computing this key and
          must eventually :meth:`publish` or :meth:`abandon` it.
        * ``("wait", None)`` — another caller owns it; :meth:`wait`.
        """
        with self._lock:
            if key in self._inflight:
                self._counts["inflight_waits"] += 1
                return "wait", None
        data = self.get(key)
        if data is not None:
            return "hit", data
        with self._lock:
            # Re-check: someone may have claimed between the read and here.
            if key in self._inflight:
                self._counts["inflight_waits"] += 1
                return "wait", None
            self._inflight[key] = _InFlight()
            return "owned", None

    def publish(self, key: str, data: bytes, cache: bool = True) -> None:
        """Complete an owned key: hand ``data`` to waiters, persist if asked.

        ``cache=False`` is the error path — waiters still receive the exact
        bytes (concurrent duplicates stay byte-identical), but nothing is
        persisted, so the next submission recomputes.
        """
        if cache:
            self.put(key, data)
        else:
            self._bump("errors_uncached")
        self._bump("executed")
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.data = data
            entry.event.set()

    def abandon(self, key: str) -> None:
        """Release an owned key without a result; waiters must recompute."""
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.event.set()

    def wait(self, key: str, timeout: float | None = None) -> bytes | None:
        """Block until the in-flight computation of ``key`` completes.

        Returns the published bytes, the stored entry when the owner
        already finished, or None when the owner abandoned (or the wait
        timed out) — the caller then computes for itself.
        """
        with self._lock:
            entry = self._inflight.get(key)
        if entry is None:
            return self._read(key)
        if not entry.event.wait(timeout):
            return None
        if entry.data is not None:
            return entry.data
        return self._read(key)

    def get_or_compute(
        self, key: str, compute: Callable[[], tuple[bytes, bool]]
    ) -> tuple[bytes, str]:
        """The full dedup protocol for single-key callers.

        ``compute`` returns ``(data, cacheable)``.  The result is the entry
        bytes plus their origin: ``"hit"`` (store), ``"inflight"`` (another
        caller's computation) or ``"computed"`` (this call executed it).
        """
        while True:
            state, data = self.claim(key)
            if state == "hit":
                assert data is not None
                return data, "hit"
            if state == "owned":
                try:
                    data, cacheable = compute()
                except BaseException:
                    self.abandon(key)
                    raise
                self.publish(key, data, cache=cacheable)
                return data, "computed"
            data = self.wait(key)
            if data is not None:
                return data, "inflight"
            # Owner abandoned (crash) or served an uncached error that is
            # already gone — loop and claim it ourselves.

    def stats(self) -> dict[str, int]:
        """Counter snapshot (served via ``GET /v1/health``)."""
        with self._lock:
            snapshot = dict(self._counts)
            snapshot["inflight"] = len(self._inflight)
        return snapshot
