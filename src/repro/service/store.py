"""Content-addressed result store: the service's persistent cache tier.

Entries are keyed by :func:`repro.api.canonical_request_key` — the SHA-256
of the canonical serialized request — and hold the canonical response
bytes (:func:`repro.service.wire.canonical_response_bytes`).  The store
generalizes the PR-4 in-process ``execute_map``/routing caches into a tier
that survives the process and is shared by every worker thread:

* **Schema-version namespacing.**  Entries live under
  ``<root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json``; bumping the payload
  schema changes both the namespace directory *and* the key itself (the
  blob embeds the version), so stale-format entries can never be served.
* **Atomic writes.**  Every entry is written to a temporary file in the
  destination directory and published with ``os.replace`` — concurrent
  writers of one key race harmlessly to an identical final state and a
  reader can never observe a half-written entry.
* **Corruption tolerance.**  A truncated or garbage entry (killed writer
  on a non-atomic filesystem, disk fault) fails JSON validation on read,
  is unlinked best-effort, and reads as a miss — the request recomputes
  and repairs the entry instead of crashing the service.
* **In-flight dedup.**  The first caller to :meth:`claim` a cold key owns
  its computation; concurrent claimers of the same key :meth:`wait` and
  receive the owner's exact bytes.  100 identical concurrent submissions
  execute once and all 100 read byte-identical bodies.

* **Bounded disk.**  With ``max_bytes`` set, the store is an LRU: every
  ``put`` that pushes the byte total over the cap evicts least-recently-
  used entries until it fits again (reads refresh recency, persisted via
  the entry's mtime so the ordering survives restarts).  With ``ttl``
  set, an entry idle longer than ``ttl`` seconds reads as a miss and is
  unlinked.  Keys with an in-flight computation are never evicted — an
  owner publishing or a waiter about to read can't have the entry pulled
  out from under it — so the total may transiently exceed the cap by the
  in-flight entries, never by cold ones.

Error results (``error-response`` payloads) are *published* to waiters —
concurrent duplicates of a failing request all see the same typed failure
— but never *persisted*: a transient timeout or worker death must not
poison the cache for future submissions.

Deadlock discipline for direct ``claim``/``publish`` users (the job
runner): never ``wait`` on a key before publishing or abandoning every key
you own, and claim each distinct key at most once per job.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable

from repro.api.specs import SCHEMA_VERSION


class _InFlight:
    """One in-progress computation: waiters block on ``event``."""

    __slots__ = ("event", "data")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.data: bytes | None = None


class ResultStore:
    """Thread-safe content-addressed result store (disk- or memory-backed).

    Args:
        root: directory for the persistent tier; ``None`` keeps entries in
            memory only (tests, throwaway servers) with identical
            semantics.
        schema_version: payload schema the namespace is bound to; defaults
            to the library's :data:`~repro.api.SCHEMA_VERSION`.
        max_bytes: LRU size cap over the entry bytes; None = unbounded.
        ttl: idle time-to-live in seconds — an entry neither written nor
            read for this long expires (reads as a miss, file unlinked);
            None = entries never expire.
        clock: time source for TTL/LRU stamps (tests inject a fake).
    """

    def __init__(
        self,
        root: str | Path | None = None,
        schema_version: int = SCHEMA_VERSION,
        *,
        max_bytes: int | None = None,
        ttl: float | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._root = None if root is None else Path(root)
        self._schema = schema_version
        self._max_bytes = max_bytes
        self._ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}
        self._memory: dict[str, bytes] = {}
        #: key -> [size, last-touch stamp], in LRU order (oldest first).
        self._index: "OrderedDict[str, list]" = OrderedDict()
        self._bytes = 0
        self._counts = {
            "executed": 0,
            "stored": 0,
            "hits": 0,
            "inflight_waits": 0,
            "corrupt_dropped": 0,
            "errors_uncached": 0,
            "evicted": 0,
            "ttl_expired": 0,
        }
        if self._root is not None and (max_bytes is not None or ttl is not None):
            self._scan()

    # -- eviction index -------------------------------------------------
    def _scan(self) -> None:
        """Rebuild the LRU index from the namespace dir (startup only).

        Entry mtimes — refreshed on every read — seed the recency order,
        so LRU decisions survive a restart.
        """
        namespace = self.namespace
        assert namespace is not None
        found: list[tuple[float, str, int]] = []
        try:
            shards = list(namespace.iterdir())
        except OSError:
            return
        for shard in shards:
            try:
                entries = list(shard.iterdir())
            except OSError:
                continue
            for entry in entries:
                if entry.suffix != ".json" or entry.name.startswith("."):
                    continue
                try:
                    stat = entry.stat()
                except OSError:
                    continue
                found.append((stat.st_mtime, entry.stem, stat.st_size))
        with self._lock:
            for stamp, key, size in sorted(found):
                self._index[key] = [size, stamp]
                self._bytes += size

    def _tracking(self) -> bool:
        return self._max_bytes is not None or self._ttl is not None

    def _index_put(self, key: str, size: int) -> None:
        """Record a write: newest recency, then evict LRU over the cap."""
        if not self._tracking():
            return
        with self._lock:
            old = self._index.pop(key, None)
            if old is not None:
                self._bytes -= old[0]
            self._index[key] = [size, self._clock()]
            self._bytes += size
            if self._max_bytes is None:
                return
            while self._bytes > self._max_bytes:
                victim = next(
                    (k for k in self._index if k not in self._inflight and k != key),
                    None,
                )
                if victim is None:
                    break  # everything left is in flight; transient overage
                self._drop_locked(victim, "evicted")

    def _index_forget(self, key: str) -> None:
        if not self._tracking():
            return
        with self._lock:
            entry = self._index.pop(key, None)
            if entry is not None:
                self._bytes -= entry[0]

    def _drop_locked(self, key: str, counter: str) -> None:
        """Remove one entry (both tiers) under ``self._lock``."""
        entry = self._index.pop(key, None)
        if entry is not None:
            self._bytes -= entry[0]
        self._memory.pop(key, None)
        if self._root is not None:
            try:
                self.path_for(key).unlink()
            except OSError:
                pass
        self._counts[counter] += 1

    def _check_fresh(self, key: str, size: int) -> bool:
        """TTL check + LRU touch for a read hit; False = expired."""
        if not self._tracking():
            return True
        now = self._clock()
        with self._lock:
            entry = self._index.get(key)
            stamp = entry[1] if entry is not None else now
            if self._ttl is not None and now - stamp > self._ttl:
                self._drop_locked(key, "ttl_expired")
                return False
            if entry is None:
                self._index[key] = [size, now]
                self._bytes += size
            else:
                entry[1] = now
                self._index.move_to_end(key)
        if self._root is not None:
            try:
                os.utime(self.path_for(key))
            except OSError:
                pass
        return True

    # -- paths ----------------------------------------------------------
    @property
    def namespace(self) -> Path | None:
        """Schema-versioned root directory (``None`` for memory stores)."""
        if self._root is None:
            return None
        return self._root / f"v{self._schema}"

    def path_for(self, key: str) -> Path:
        """On-disk location of a key's entry (disk-backed stores only)."""
        namespace = self.namespace
        if namespace is None:
            raise ValueError("memory-backed store has no entry paths")
        return namespace / key[:2] / f"{key}.json"

    # -- validation -----------------------------------------------------
    @staticmethod
    def _valid(data: bytes) -> bool:
        """A well-formed entry: one JSON object carrying a payload kind."""
        try:
            payload = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            return False
        return isinstance(payload, dict) and "kind" in payload

    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[counter] += amount

    def _read(self, key: str) -> bytes | None:
        """Raw entry bytes, or None for a miss, corrupt entry, or expiry."""
        if self._root is None:
            with self._lock:
                data = self._memory.get(key)
            if data is None:
                return None
            return data if self._check_fresh(key, len(data)) else None
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if not self._valid(data):
            try:
                path.unlink()
            except OSError:
                pass
            self._index_forget(key)
            self._bump("corrupt_dropped")
            return None
        return data if self._check_fresh(key, len(data)) else None

    # -- basic tier -----------------------------------------------------
    def get(self, key: str) -> bytes | None:
        """Entry bytes for ``key``, or None (misses and corrupt entries)."""
        data = self._read(key)
        if data is not None:
            self._bump("hits")
        return data

    def put(self, key: str, data: bytes) -> None:
        """Persist an entry atomically (temp file + ``os.replace``)."""
        if self._root is None:
            with self._lock:
                self._memory[key] = data
                self._counts["stored"] += 1
            self._index_put(key, len(data))
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self._bump("stored")
        self._index_put(key, len(data))

    # -- in-flight dedup ------------------------------------------------
    def claim(self, key: str) -> tuple[str, bytes | None]:
        """Resolve a key against both tiers, claiming it when cold.

        Returns one of:

        * ``("hit", data)`` — the entry exists; serve it.
        * ``("owned", None)`` — the caller now owns computing this key and
          must eventually :meth:`publish` or :meth:`abandon` it.
        * ``("wait", None)`` — another caller owns it; :meth:`wait`.
        """
        with self._lock:
            if key in self._inflight:
                self._counts["inflight_waits"] += 1
                return "wait", None
        data = self.get(key)
        if data is not None:
            return "hit", data
        with self._lock:
            # Re-check: someone may have claimed between the read and here.
            if key in self._inflight:
                self._counts["inflight_waits"] += 1
                return "wait", None
            self._inflight[key] = _InFlight()
            return "owned", None

    def publish(self, key: str, data: bytes, cache: bool = True) -> None:
        """Complete an owned key: hand ``data`` to waiters, persist if asked.

        ``cache=False`` is the error path — waiters still receive the exact
        bytes (concurrent duplicates stay byte-identical), but nothing is
        persisted, so the next submission recomputes.
        """
        if cache:
            self.put(key, data)
        else:
            self._bump("errors_uncached")
        self._bump("executed")
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.data = data
            entry.event.set()

    def abandon(self, key: str) -> None:
        """Release an owned key without a result; waiters must recompute."""
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.event.set()

    def wait(self, key: str, timeout: float | None = None) -> bytes | None:
        """Block until the in-flight computation of ``key`` completes.

        Returns the published bytes, the stored entry when the owner
        already finished, or None when the owner abandoned (or the wait
        timed out) — the caller then computes for itself.
        """
        with self._lock:
            entry = self._inflight.get(key)
        if entry is None:
            return self._read(key)
        if not entry.event.wait(timeout):
            return None
        if entry.data is not None:
            return entry.data
        return self._read(key)

    def get_or_compute(
        self, key: str, compute: Callable[[], tuple[bytes, bool]]
    ) -> tuple[bytes, str]:
        """The full dedup protocol for single-key callers.

        ``compute`` returns ``(data, cacheable)``.  The result is the entry
        bytes plus their origin: ``"hit"`` (store), ``"inflight"`` (another
        caller's computation) or ``"computed"`` (this call executed it).
        """
        while True:
            state, data = self.claim(key)
            if state == "hit":
                assert data is not None
                return data, "hit"
            if state == "owned":
                try:
                    data, cacheable = compute()
                except BaseException:
                    self.abandon(key)
                    raise
                self.publish(key, data, cache=cacheable)
                return data, "computed"
            data = self.wait(key)
            if data is not None:
                return data, "inflight"
            # Owner abandoned (crash) or served an uncached error that is
            # already gone — loop and claim it ourselves.

    def stats(self) -> dict[str, int]:
        """Counter snapshot (served via ``GET /v1/health``)."""
        with self._lock:
            snapshot = dict(self._counts)
            snapshot["inflight"] = len(self._inflight)
            if self._tracking():
                snapshot["bytes"] = self._bytes
                snapshot["entries"] = len(self._index)
        return snapshot
