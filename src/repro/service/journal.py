"""The write-ahead job journal: what makes "accepted" a durable promise.

The job registry and admission queue are in-memory — a graceful drain
finishes accepted work, but a hard crash (``kill -9``, OOM kill, power
loss) would silently drop every queued and running job.  The journal
closes that gap: every admitted job is appended here as one fsync'd
record *before* the 202 leaves the server, and completion appends a
tombstone.  On restart, :meth:`JobJournal.recover` returns the accepted
records without a matching tombstone, and the service replays them under
their original job ids — clients polling a pre-crash job id simply see it
complete.  Replay is idempotent by construction: slots are keyed on
:func:`repro.api.canonical_request_key`, so a slot that already published
to the content-addressed store before the crash resolves as a byte-
identical store hit instead of re-executing.

Format: one record per line, ``<checksum> <canonical-json>`` — the
checksum is the first 12 hex chars of the SHA-256 of the JSON text.  A
record is appended with a single ``write`` call, so a crash can only ever
tear the *tail* of the file; recovery drops any line whose checksum or
JSON fails to validate (counted and logged, never fatal) and keeps
parsing, so a torn tail or a flipped bit costs at most that one record.

Durability ladder per record type:

* ``accepted`` — flushed **and** fsync'd before the append returns; this
  is the record the 202 promise rides on.
* ``done`` — flushed, not fsync'd.  Losing a tombstone to a crash merely
  re-runs a finished job on recovery, which the store dedups into hits;
  fsyncing it would double the per-job fsync cost for no correctness win.

The file stays bounded: finished records are compacted away — the journal
is atomically rewritten with only its unfinished ``accepted`` records —
after every ``compact_every`` completions, after recovery, and on clean
shutdown.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from collections import OrderedDict
from pathlib import Path

log = logging.getLogger(__name__)

#: Journal record types.
RECORD_ACCEPTED = "accepted"
RECORD_DONE = "done"

_CHECKSUM_CHARS = 12


class JobJournal:
    """Append-only, checksummed, compacting journal of accepted jobs.

    Args:
        path: journal file location (created on first append).
        fsync: fsync ``accepted`` records before returning (the durable
            default); ``False`` trades the promise for speed in tests.
        compact_every: rewrite the file after this many finished jobs, so
            a long-running service's journal holds only in-flight work
            plus a bounded tail of tombstones.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        compact_every: int = 256,
    ) -> None:
        self._path = Path(path)
        self._fsync = fsync
        self._compact_every = max(1, compact_every)
        self._lock = threading.Lock()
        self._file = None
        self._dead = 0
        #: job id -> its ``accepted`` record, for every unfinished job.
        self._pending: "OrderedDict[str, dict]" = OrderedDict()
        self._counts = {
            "accepted": 0,
            "finished": 0,
            "dropped": 0,
            "recovered": 0,
            "compactions": 0,
        }

    @property
    def path(self) -> Path:
        return self._path

    # -- record codec ---------------------------------------------------
    @staticmethod
    def _encode(record: dict) -> bytes:
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        return f"{digest[:_CHECKSUM_CHARS]} {body}\n".encode("utf-8")

    @staticmethod
    def _decode(line: bytes) -> dict | None:
        """Parse one journal line; None for torn/corrupt records."""
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
        checksum, sep, body = text.partition(" ")
        if not sep or len(checksum) != _CHECKSUM_CHARS:
            return None
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if digest[:_CHECKSUM_CHARS] != checksum:
            return None
        try:
            record = json.loads(body)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    # -- appends --------------------------------------------------------
    def _handle(self):
        if self._file is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self._path, "ab")
        return self._file

    def _append(self, record: dict, durable: bool) -> None:
        handle = self._handle()
        handle.write(self._encode(record))
        handle.flush()
        if durable and self._fsync:
            os.fsync(handle.fileno())

    def record_accepted(
        self,
        job_id: str,
        requests: list[dict],
        batch: bool,
        client: str = "anonymous",
        priority: str = "normal",
    ) -> None:
        """Journal an admitted job (fsync'd) — call before the 202."""
        record = {
            "type": RECORD_ACCEPTED,
            "job": job_id,
            "batch": batch,
            "client": client,
            "priority": priority,
            "requests": requests,
        }
        with self._lock:
            self._append(record, durable=True)
            self._pending[job_id] = record
            self._counts["accepted"] += 1

    def record_finished(self, job_id: str) -> None:
        """Journal a job's completion (success or typed failure alike)."""
        record = {"type": RECORD_DONE, "job": job_id}
        with self._lock:
            self._append(record, durable=False)
            self._pending.pop(job_id, None)
            self._counts["finished"] += 1
            self._dead += 1
            if self._dead >= self._compact_every:
                self._compact_locked()

    # -- recovery -------------------------------------------------------
    def recover(self) -> list[dict]:
        """Replay the journal; return unfinished ``accepted`` records.

        Corrupt lines (torn tail after a crash, bit rot anywhere) are
        dropped with a warning and counted in ``stats()["dropped"]`` —
        recovery never raises on journal content.  The journal's in-memory
        pending set is reset to what the file says, so a following
        :meth:`compact` bounds the file to exactly the returned records.
        """
        with self._lock:
            try:
                raw = self._path.read_bytes()
            except OSError:
                raw = b""
            dropped = 0
            pending: "OrderedDict[str, dict]" = OrderedDict()
            for line in raw.split(b"\n"):
                if not line.strip():
                    continue
                record = self._decode(line)
                if record is None:
                    dropped += 1
                    continue
                kind = record.get("type")
                job_id = record.get("job")
                if kind == RECORD_ACCEPTED and isinstance(job_id, str):
                    # First record wins: a duplicate accepted line (e.g.
                    # compaction raced a crash) must not replay twice.
                    pending.setdefault(job_id, record)
                elif kind == RECORD_DONE:
                    pending.pop(job_id, None)
                else:
                    dropped += 1
            if dropped:
                log.warning(
                    "job journal %s: dropped %d corrupt record(s) "
                    "(torn tail after a crash is expected and harmless)",
                    self._path,
                    dropped,
                )
            self._pending = pending
            self._dead = 0
            self._counts["dropped"] += dropped
            self._counts["recovered"] = len(pending)
            return list(pending.values())

    # -- compaction -----------------------------------------------------
    def compact(self) -> None:
        """Atomically rewrite the file with only unfinished records."""
        with self._lock:
            self._compact_locked()

    def _compact_locked(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        data = b"".join(self._encode(r) for r in self._pending.values())
        self._path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._path.parent / f".{self._path.name}.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self._path)
        self._dead = 0
        self._counts["compactions"] += 1

    # -- introspection --------------------------------------------------
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (served via ``GET /v1/health``)."""
        with self._lock:
            snapshot = dict(self._counts)
            snapshot["pending"] = len(self._pending)
        return snapshot

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
