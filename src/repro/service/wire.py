"""Wire-format helpers shared by the service's server and client.

The service does not invent a protocol: the bodies on the wire *are* the
``repro.api`` payloads (frozen, schema-versioned, JSON-round-trippable),
framed by a thin job envelope.  This module holds the three pieces both
sides must agree on:

* payload dispatch — a ``kind`` field picks the typed request/response
  class (:func:`parse_request` / :func:`parse_response`);
* the canonical byte encoding of a response
  (:func:`canonical_response_bytes`) — sorted keys, no whitespace, one
  trailing newline.  These exact bytes are what the result store persists
  and what every client of the same job receives, which is what makes the
  dedup contract "byte-identical" rather than merely "equal";
* the mapping from a typed error class to an HTTP status class
  (:func:`status_for_error`): malformed requests are the caller's fault
  (400), requests that are well-formed but cannot be satisfied on that
  fabric are unprocessable (422), infrastructure failures — worker death,
  batch timeout — are the gateway's (504), anything unrecognized is a 500.
"""

from __future__ import annotations

import json
from typing import Any

import repro.errors as _errors
from repro.api.specs import (
    ErrorResponse,
    MapRequest,
    MapResponse,
    SimRequest,
    SimResponse,
)
from repro.errors import ApiError

#: Payload kinds accepted by ``POST /v1/jobs``.
REQUEST_KINDS = ("map-request", "sim-request")

#: Payload kinds a completed job slot may carry.
RESPONSE_KINDS = ("map-response", "sim-response", "error-response")


def parse_request(payload: Any) -> MapRequest | SimRequest:
    """Typed request from a wire payload, dispatched on ``kind``.

    Raises:
        ApiError: for non-dict payloads, unknown kinds, or any payload
            validation failure inside ``from_dict`` — all of which the
            server answers with HTTP 400 at submission time, before the
            request can reach a worker.
    """
    if not isinstance(payload, dict):
        raise ApiError(
            f"request payload must be a dict, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind == "map-request":
        return MapRequest.from_dict(payload)
    if kind == "sim-request":
        return SimRequest.from_dict(payload)
    raise ApiError(
        f"request payload kind must be one of {', '.join(REQUEST_KINDS)}, "
        f"got {kind!r}"
    )


def parse_response(payload: Any) -> MapResponse | SimResponse | ErrorResponse:
    """Typed response from a wire payload, dispatched on ``kind``."""
    if not isinstance(payload, dict):
        raise ApiError(
            f"response payload must be a dict, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind == "map-response":
        return MapResponse.from_dict(payload)
    if kind == "sim-response":
        return SimResponse.from_dict(payload)
    if kind == "error-response":
        return ErrorResponse.from_dict(payload)
    raise ApiError(
        f"response payload kind must be one of {', '.join(RESPONSE_KINDS)}, "
        f"got {kind!r}"
    )


def canonical_response_bytes(
    response: MapResponse | SimResponse | ErrorResponse,
) -> bytes:
    """The one canonical byte encoding of a response payload.

    Sorted keys, compact separators, UTF-8, newline-terminated — ready to
    persist as a store entry, serve as a result body, or stream as one
    NDJSON line, all byte-identical to each other.
    """
    return (
        json.dumps(response.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


#: Error classes with a dedicated status: malformed request vs. batch
#: infrastructure (worker death / per-request timeout).
_STATUS_BY_ERROR = {"ApiError": 400, "BatchError": 504}

#: Every other library error class means "well-formed request that cannot
#: be satisfied on that input" — 422.  Derived from the live exception
#: hierarchy so new subsystem errors classify themselves.  ServiceError
#: and its whole subtree (overload/draining/quota/circuit-breaker) are
#: excluded: those describe the service or the client's transport, never
#: the request content, so an unexpected one surfaces as a 500.
_CONTENT_ERRORS = frozenset(
    name
    for name, obj in vars(_errors).items()
    if isinstance(obj, type)
    and issubclass(obj, _errors.ReproError)
    and obj is not _errors.ReproError
    and name not in _STATUS_BY_ERROR
    and not issubclass(obj, _errors.ServiceError)
)


def status_for_error(error: str | None) -> int:
    """HTTP status for a completed job slot (``None`` = success, 200)."""
    if error is None:
        return 200
    specific = _STATUS_BY_ERROR.get(error)
    if specific is not None:
        return specific
    if error in _CONTENT_ERRORS:
        return 422
    return 500
