"""Job lifecycle: admission control, registry, and the dispatch workers.

A *job* is one submission — a single request or a batch — broken into
per-request *slots*.  Admission is a degradation ladder, cheapest refusal
first: a draining service rejects everything new (503); a client over its
quota of concurrently active jobs is rejected (429) before it can starve
the others; under queue pressure, ``low``-priority work is shed first and
``normal`` next (429), so ``high``-priority submissions keep landing
until the queue is genuinely full; and a full queue rejects everyone
(429) instead of letting latency grow without bound.  Every refusal
carries a ``retry_after`` hint sized to the backlog, surfaced upstream as
the ``Retry-After`` header.

With a :class:`~repro.service.journal.JobJournal` attached, admission is
also *durable*: the job's requests are journaled (one fsync'd record)
before ``submit`` returns — i.e. before the 202 leaves the server — and
completion appends a tombstone.  :meth:`JobRunner.restore` re-enqueues
journaled jobs after a hard crash under their original ids.

Worker threads pull whole jobs and run them through the content-addressed
store's dedup protocol: every slot key is claimed first (store hits and
keys another job is already computing resolve without executing anything),
then the owned misses fan out through :func:`repro.api.run_batch` — by
default with ``executor="process"``, so the service inherits all of the
batch engine's hardening (typed ``ErrorResponse`` slots, per-request
timeouts, crash-retry for dead workers) and its multi-core scaling.  Owned
misses run in chunks so a long sweep publishes results incrementally and
the ``/events`` stream sees per-point progress rather than one burst.

Slots whose key another job owns are awaited *after* all owned keys are
published — that ordering (plus per-job key dedup) is what makes the
cross-job wait graph acyclic.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import queue
import threading
import uuid
from collections import OrderedDict

from repro.api import canonical_request_key, run_batch
from repro.api.specs import ErrorResponse, MapRequest, SimRequest
from repro.errors import ApiError, ServiceError
from repro.service.journal import JobJournal
from repro.service.store import ResultStore
from repro.service.wire import canonical_response_bytes, parse_request

log = logging.getLogger(__name__)

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"

SLOT_PENDING = "pending"
SLOT_DONE = "done"

#: Priority classes, shed-first order: under queue pressure ``low`` work
#: is refused first, then ``normal``; ``high`` is admitted until the
#: queue is genuinely full.
PRIORITIES = ("low", "normal", "high")

#: Chaos hooks mirroring the batch engine's ``REPRO_CRASH_*`` style: when
#: a job carries a slot whose tag matches ``REPRO_SERVICE_CRASH_TAG``, the
#: dispatch worker thread dies (``SystemExit``) after claiming the job's
#: store keys — the worst possible moment, with claims held and slots
#: pending.  With ``REPRO_SERVICE_CRASH_ONCE`` set to a sentinel path only
#: the first matching worker dies, so the retry path can be observed.
#: Test instruments only: inert unless the variables are set.
_SERVICE_CRASH_TAG_ENV = "REPRO_SERVICE_CRASH_TAG"
_SERVICE_CRASH_ONCE_ENV = "REPRO_SERVICE_CRASH_ONCE"


class OverloadedError(ServiceError):
    """The admission ladder refused the submission (HTTP 429)."""


class QuotaExceededError(OverloadedError):
    """The client is over its quota of concurrently active jobs (429)."""


class DrainingError(ServiceError):
    """The service is shutting down and accepts no new work (503)."""


def _request_tag(request: MapRequest | SimRequest) -> str | None:
    """The batch-correlation tag of a request (sim requests inherit it)."""
    if isinstance(request, SimRequest):
        return request.map_request.tag
    return request.tag


class JobSlot:
    """One request inside a job, plus its completed wire bytes."""

    __slots__ = ("request", "key", "status", "data", "cached", "kind", "error")

    def __init__(self, request: MapRequest | SimRequest) -> None:
        self.request = request
        self.key = canonical_request_key(request)
        self.status = SLOT_PENDING
        self.data: bytes | None = None
        self.cached = False
        self.kind: str | None = None
        self.error: str | None = None

    def describe(self, index: int) -> dict:
        return {
            "index": index,
            "key": self.key,
            "status": self.status,
            "cached": self.cached,
            "kind": self.kind,
            "error": self.error,
        }


class Job:
    """One submission: ordered slots plus coarse status, lock-guarded."""

    def __init__(
        self,
        job_id: str,
        requests: list[MapRequest | SimRequest],
        batch: bool,
        client: str = "anonymous",
        priority: str = "normal",
        recovered: bool = False,
    ) -> None:
        self.id = job_id
        self.batch = batch
        self.client = client
        self.priority = priority
        self.recovered = recovered
        self.slots = [JobSlot(request) for request in requests]
        self.status = JOB_QUEUED
        self._lock = threading.Lock()
        self._done = threading.Event()

    def record(self, index: int, data: bytes, cached: bool) -> None:
        """Complete one slot with its canonical wire bytes."""
        payload = json.loads(data)
        slot = self.slots[index]
        with self._lock:
            slot.data = data
            slot.cached = cached
            slot.kind = payload.get("kind")
            slot.error = (
                payload.get("error") if slot.kind == "error-response" else None
            )
            slot.status = SLOT_DONE

    def mark_running(self) -> None:
        with self._lock:
            self.status = JOB_RUNNING

    def mark_done(self) -> None:
        with self._lock:
            self.status = JOB_DONE
        self._done.set()

    def wait_done(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def slot_view(self, index: int) -> tuple[str, bytes | None, bool]:
        """A consistent (status, data, cached) snapshot of one slot."""
        slot = self.slots[index]
        with self._lock:
            return slot.status, slot.data, slot.cached

    def describe(self) -> dict:
        """The job envelope served by ``GET /v1/jobs/{id}`` (no payloads)."""
        with self._lock:
            done = sum(1 for slot in self.slots if slot.status == SLOT_DONE)
            return {
                "id": self.id,
                "status": self.status,
                "batch": self.batch,
                "client": self.client,
                "priority": self.priority,
                "recovered": self.recovered,
                "total": len(self.slots),
                "done": done,
                "slots": [
                    slot.describe(index) for index, slot in enumerate(self.slots)
                ],
            }


class JobRegistry:
    """Thread-safe id -> job map with bounded completed-job history."""

    def __init__(self, limit: int = 256) -> None:
        self._limit = limit
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()

    def create(
        self,
        requests: list[MapRequest | SimRequest],
        batch: bool,
        client: str = "anonymous",
        priority: str = "normal",
        job_id: str | None = None,
        recovered: bool = False,
    ) -> Job:
        job = Job(
            job_id or uuid.uuid4().hex[:12],
            requests,
            batch,
            client=client,
            priority=priority,
            recovered=recovered,
        )
        with self._lock:
            self._jobs[job.id] = job
            completed = [
                job_id
                for job_id, existing in self._jobs.items()
                if existing.status == JOB_DONE
            ]
            while len(self._jobs) > self._limit and completed:
                self._jobs.pop(completed.pop(0), None)
        return job

    def discard(self, job_id: str) -> None:
        with self._lock:
            self._jobs.pop(job_id, None)

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict[str, int]:
        with self._lock:
            total = len(self._jobs)
            active = sum(
                1 for job in self._jobs.values() if job.status != JOB_DONE
            )
        return {"total": total, "active": active}

    def active_for(self, client: str) -> int:
        """How many of ``client``'s jobs are queued or running (quotas)."""
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.client == client and job.status != JOB_DONE
            )


def _chunks(items: list, size: int):
    iterator = iter(items)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


class JobRunner:
    """The bounded queue plus the worker threads that drain it."""

    def __init__(
        self,
        store: ResultStore,
        registry: JobRegistry,
        *,
        queue_limit: int = 64,
        workers: int = 2,
        executor: str = "process",
        timeout: float | None = None,
        max_batch: int = 1024,
        chunk: int | None = None,
        journal: JobJournal | None = None,
        client_quota: int | None = None,
        shed_low_at: float = 0.5,
        shed_normal_at: float = 0.85,
    ) -> None:
        if queue_limit < 1:
            raise ApiError(f"queue_limit must be >= 1, got {queue_limit}")
        if workers < 1:
            raise ApiError(f"workers must be >= 1, got {workers}")
        if client_quota is not None and client_quota < 1:
            raise ApiError(f"client_quota must be >= 1, got {client_quota}")
        self._store = store
        self._registry = registry
        self._queue: "queue.Queue[Job | None]" = queue.Queue(maxsize=queue_limit)
        self._workers = workers
        self._executor = executor
        self._timeout = timeout
        self._max_batch = max_batch
        self._chunk = chunk
        self._journal = journal
        self._client_quota = client_quota
        self._shed_low_at = shed_low_at
        self._shed_normal_at = shed_normal_at
        self._threads: list[threading.Thread] = []
        self._feeders: list[threading.Thread] = []
        self._thread_lock = threading.Lock()
        self._thread_serial = itertools.count()
        self._draining = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        # Compile the resolved kernel backend (if any) before accepting
        # work, so the first simulation request never pays compilation
        # latency.  A broken toolchain must not stop the service — the
        # vector engine falls back to its interpreted loops anyway.
        try:
            from repro.simnoc.engines import jit

            jit.warmup()
        except Exception:  # noqa: BLE001 — warm-up is an optimization only
            pass
        for _ in range(self._workers):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        thread = threading.Thread(
            target=self._worker_shell,
            name=f"repro-service-worker-{next(self._thread_serial)}",
            daemon=True,
        )
        with self._thread_lock:
            self._threads.append(thread)
        thread.start()

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new submissions; already-accepted work keeps running."""
        self._draining = True

    def drain(self) -> None:
        """Block until every accepted job has completed, then stop workers.

        The drain contract: no accepted job's results are dropped — the
        queue empties, every in-flight job finishes and publishes, and only
        then do the workers exit.
        """
        self.begin_drain()
        # A recovery feeder still enqueueing counts as accepted work.
        for feeder in self._feeders:
            feeder.join()
        self._queue.join()
        with self._thread_lock:
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join()
        with self._thread_lock:
            self._threads.clear()

    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- submission -----------------------------------------------------
    def retry_after_hint(self) -> float:
        """Suggested client back-off in seconds, sized to the backlog."""
        depth = self._queue.qsize()
        return min(30.0, 1.0 + 2.0 * depth / self._workers)

    def submit(
        self,
        requests: list[MapRequest | SimRequest],
        batch: bool,
        client: str = "anonymous",
        priority: str = "normal",
    ) -> Job:
        """Admit one job through the degradation ladder, or refuse loudly.

        Raises:
            DrainingError: the service is shutting down (HTTP 503).
            QuotaExceededError: ``client`` is over its active-job quota
                (HTTP 429).
            OverloadedError: the queue is full, or pressure shed this
                priority class (HTTP 429).  Both carry ``retry_after``.
            ApiError: empty submission, unknown priority, or batch larger
                than ``max_batch``.
        """
        if not requests:
            raise ApiError("a job needs at least one request")
        if priority not in PRIORITIES:
            raise ApiError(
                f"priority must be one of {', '.join(PRIORITIES)}, got {priority!r}"
            )
        if len(requests) > self._max_batch:
            raise ApiError(
                f"batch of {len(requests)} exceeds the service limit of "
                f"{self._max_batch} requests per job"
            )
        if self._draining:
            raise DrainingError(
                "service is draining and accepts no new jobs",
                retry_after=self.retry_after_hint(),
            )
        if (
            self._client_quota is not None
            and self._registry.active_for(client) >= self._client_quota
        ):
            raise QuotaExceededError(
                f"client {client!r} already has {self._client_quota} active "
                f"job(s); finish or await them first",
                retry_after=self.retry_after_hint(),
            )
        fill = self._queue.qsize() / self._queue.maxsize
        shed_at = {"low": self._shed_low_at, "normal": self._shed_normal_at}
        threshold = shed_at.get(priority)
        if threshold is not None and fill >= threshold:
            raise OverloadedError(
                f"shedding {priority}-priority work: queue at "
                f"{fill:.0%} of {self._queue.maxsize}; retry later",
                retry_after=self.retry_after_hint(),
            )
        job = self._registry.create(requests, batch, client=client, priority=priority)
        self._journal_accepted(job)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._registry.discard(job.id)
            self._journal_finished(job)
            raise OverloadedError(
                f"admission queue is full ({self._queue.maxsize} jobs); retry later",
                retry_after=self.retry_after_hint(),
            ) from None
        return job

    # -- journal --------------------------------------------------------
    def _journal_accepted(self, job: Job) -> None:
        """Make the acceptance durable, or refuse the job (nothing queued).

        Written *before* the job enters the queue, so "journaled" strictly
        precedes "runnable": a crash at any point after ``submit`` returns
        replays the job.  (A crash between journal and enqueue replays a
        job that never got its 202 — harmless, replay is idempotent.)
        """
        if self._journal is None:
            return
        try:
            self._journal.record_accepted(
                job.id,
                [slot.request.to_dict() for slot in job.slots],
                job.batch,
                client=job.client,
                priority=job.priority,
            )
        except OSError as exc:
            self._registry.discard(job.id)
            raise ServiceError(
                f"cannot journal the job (durability unavailable): {exc}"
            ) from exc

    def _journal_finished(self, job: Job) -> None:
        """Tombstone a completed (or refused) job; never raises."""
        if self._journal is None:
            return
        try:
            self._journal.record_finished(job.id)
        except OSError:
            log.warning(
                "could not journal completion of job %s; it may replay "
                "(idempotently) after a crash",
                job.id,
            )

    # -- recovery -------------------------------------------------------
    def restore(self, records: list[dict]) -> list[Job]:
        """Re-admit journaled jobs after a crash, under their original ids.

        Every record is registered immediately (clients polling pre-crash
        job ids see them ``queued`` right away); the actual enqueue happens
        on a feeder thread with a *blocking* put, because recovered work
        was already accepted once and must not be shed by the admission
        ladder — even when there are more recovered jobs than queue slots.
        Records whose requests no longer parse (e.g. a schema change
        across the restart) are tombstoned and skipped with a warning.
        """
        jobs: list[Job] = []
        for record in records:
            try:
                requests = [
                    parse_request(payload) for payload in record["requests"]
                ]
                if not requests:
                    raise ApiError("journaled job has no requests")
            except (ApiError, KeyError, TypeError) as exc:
                log.warning(
                    "dropping unreplayable journaled job %s: %s",
                    record.get("job"),
                    exc,
                )
                if self._journal is not None:
                    self._journal.record_finished(str(record.get("job")))
                continue
            jobs.append(
                self._registry.create(
                    requests,
                    bool(record.get("batch")),
                    client=str(record.get("client", "anonymous")),
                    priority=str(record.get("priority", "normal")),
                    job_id=str(record["job"]),
                    recovered=True,
                )
            )
        if jobs:
            feeder = threading.Thread(
                target=self._feed_restored,
                args=(jobs,),
                name="repro-service-restore",
                daemon=True,
            )
            self._feeders.append(feeder)
            feeder.start()
        return jobs

    def _feed_restored(self, jobs: list[Job]) -> None:
        for job in jobs:
            self._queue.put(job)

    # -- execution ------------------------------------------------------
    def _worker_shell(self) -> None:
        """Run the worker loop; if the thread dies, replace it.

        A worker thread can be killed by something harsher than the
        ``Exception`` handling inside (``SystemExit`` from a chaos hook, a
        ``MemoryError``, ...).  The shell guarantees two things: the dying
        thread's job has already failed its pending slots and abandoned
        its claims (see :meth:`_worker`), and — unless the service is
        draining — a replacement worker is spawned so queued jobs never
        wait on a thread that no longer exists.
        """
        try:
            self._worker()
        except BaseException:
            if not self._draining:
                self._spawn_worker()
            raise

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                try:
                    self._run_job(job)
                except Exception as exc:  # noqa: BLE001 — a worker must survive
                    self._fail_pending_slots(job, exc)
                except BaseException as exc:
                    # The thread is dying: leave every slot answered and
                    # (via _run_job's finally) every claim abandoned, then
                    # let the shell respawn a replacement.
                    self._fail_pending_slots(job, exc)
                    raise
            finally:
                job.mark_done()
                self._journal_finished(job)
                self._queue.task_done()

    def _fail_pending_slots(self, job: Job, exc: BaseException) -> None:
        """Last-resort slot completion when the runner itself failed."""
        message = f"service job runner failed: {exc}"
        for index, slot in enumerate(job.slots):
            if slot.status == SLOT_PENDING:
                response = ErrorResponse(
                    request=slot.request, error="ServiceError", message=message
                )
                job.record(index, canonical_response_bytes(response), cached=False)

    def _inject_worker_chaos(self, job: Job) -> None:
        """Honor the worker-death test hook for a matching job tag."""
        tag = os.environ.get(_SERVICE_CRASH_TAG_ENV)
        if not tag or all(_request_tag(s.request) != tag for s in job.slots):
            return
        sentinel = os.environ.get(_SERVICE_CRASH_ONCE_ENV)
        if sentinel:
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return  # already died once; let the retry run
            os.close(fd)
        raise SystemExit(f"service chaos hook: worker dying on tag {tag!r}")

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        store = self._store
        # Distinct keys only: identical slots within one job share a single
        # claim (and a thread never waits on a key it owns).
        groups: "OrderedDict[str, list[int]]" = OrderedDict()
        for index, slot in enumerate(job.slots):
            groups.setdefault(slot.key, []).append(index)
        owned: list[str] = []
        waiting: list[str] = []
        published: set[str] = set()
        # The try spans from the first claim: no matter how this thread
        # dies — mid-claim-loop, mid-execution, or killed outright — every
        # owned-but-unpublished key is abandoned, so no waiter on another
        # job can hang on a claim whose owner is gone.
        try:
            for key, indices in groups.items():
                state, data = store.claim(key)
                if state == "hit":
                    assert data is not None
                    for index in indices:
                        job.record(index, data, cached=True)
                elif state == "owned":
                    owned.append(key)
                else:
                    waiting.append(key)

            self._inject_worker_chaos(job)

            chunk_size = self._chunk or max(1, min(len(owned), os.cpu_count() or 1))
            # isolate=True keeps singleton chunks on the pool: with the
            # process executor a crashing request must kill a disposable
            # worker, never the service itself.
            isolate = self._executor == "process"
            for chunk in _chunks(owned, chunk_size):
                requests = [job.slots[groups[key][0]].request for key in chunk]
                responses = run_batch(
                    requests,
                    executor=self._executor,
                    timeout=self._timeout,
                    isolate=isolate,
                )
                for key, response in zip(chunk, responses):
                    data = canonical_response_bytes(response)
                    cacheable = not isinstance(response, ErrorResponse)
                    store.publish(key, data, cache=cacheable)
                    published.add(key)
                    for index in groups[key]:
                        job.record(index, data, cached=False)
        finally:
            # A failure between claim and publish must not strand waiters.
            for key in owned:
                if key not in published:
                    store.abandon(key)

        # Only now — with nothing of ours left unpublished — wait on keys
        # other jobs own.  Their owners follow the same discipline, so the
        # cross-job wait graph cannot cycle.
        for key in waiting:
            data = store.wait(key, timeout=self._timeout)
            cached = True
            if data is None:
                # The owner abandoned (or the wait timed out): compute this
                # slot ourselves rather than failing the job — on the
                # configured executor, so crash isolation still holds.
                response = run_batch(
                    [job.slots[groups[key][0]].request],
                    executor=self._executor,
                    timeout=self._timeout,
                    isolate=self._executor == "process",
                )[0]
                data = canonical_response_bytes(response)
                cached = False
            for index in groups[key]:
                job.record(index, data, cached=cached)
