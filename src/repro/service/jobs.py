"""Job lifecycle: admission control, registry, and the dispatch workers.

A *job* is one submission — a single request or a batch — broken into
per-request *slots*.  Admission is a bounded queue: a full queue rejects
the submission (HTTP 429 upstream) instead of letting latency grow without
bound, and a draining service rejects everything new (503) while finishing
what it already accepted.

Worker threads pull whole jobs and run them through the content-addressed
store's dedup protocol: every slot key is claimed first (store hits and
keys another job is already computing resolve without executing anything),
then the owned misses fan out through :func:`repro.api.run_batch` — by
default with ``executor="process"``, so the service inherits all of the
batch engine's hardening (typed ``ErrorResponse`` slots, per-request
timeouts, crash-retry for dead workers) and its multi-core scaling.  Owned
misses run in chunks so a long sweep publishes results incrementally and
the ``/events`` stream sees per-point progress rather than one burst.

Slots whose key another job owns are awaited *after* all owned keys are
published — that ordering (plus per-job key dedup) is what makes the
cross-job wait graph acyclic.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import threading
import uuid
from collections import OrderedDict

from repro.api import canonical_request_key, run_batch
from repro.api.specs import ErrorResponse, MapRequest, SimRequest
from repro.errors import ApiError, ServiceError
from repro.service.store import ResultStore
from repro.service.wire import canonical_response_bytes

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"

SLOT_PENDING = "pending"
SLOT_DONE = "done"


class OverloadedError(ServiceError):
    """The admission queue is full; the submission was rejected (429)."""


class DrainingError(ServiceError):
    """The service is shutting down and accepts no new work (503)."""


class JobSlot:
    """One request inside a job, plus its completed wire bytes."""

    __slots__ = ("request", "key", "status", "data", "cached", "kind", "error")

    def __init__(self, request: MapRequest | SimRequest) -> None:
        self.request = request
        self.key = canonical_request_key(request)
        self.status = SLOT_PENDING
        self.data: bytes | None = None
        self.cached = False
        self.kind: str | None = None
        self.error: str | None = None

    def describe(self, index: int) -> dict:
        return {
            "index": index,
            "key": self.key,
            "status": self.status,
            "cached": self.cached,
            "kind": self.kind,
            "error": self.error,
        }


class Job:
    """One submission: ordered slots plus coarse status, lock-guarded."""

    def __init__(
        self, job_id: str, requests: list[MapRequest | SimRequest], batch: bool
    ) -> None:
        self.id = job_id
        self.batch = batch
        self.slots = [JobSlot(request) for request in requests]
        self.status = JOB_QUEUED
        self._lock = threading.Lock()
        self._done = threading.Event()

    def record(self, index: int, data: bytes, cached: bool) -> None:
        """Complete one slot with its canonical wire bytes."""
        payload = json.loads(data)
        slot = self.slots[index]
        with self._lock:
            slot.data = data
            slot.cached = cached
            slot.kind = payload.get("kind")
            slot.error = (
                payload.get("error") if slot.kind == "error-response" else None
            )
            slot.status = SLOT_DONE

    def mark_running(self) -> None:
        with self._lock:
            self.status = JOB_RUNNING

    def mark_done(self) -> None:
        with self._lock:
            self.status = JOB_DONE
        self._done.set()

    def wait_done(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)

    def slot_view(self, index: int) -> tuple[str, bytes | None, bool]:
        """A consistent (status, data, cached) snapshot of one slot."""
        slot = self.slots[index]
        with self._lock:
            return slot.status, slot.data, slot.cached

    def describe(self) -> dict:
        """The job envelope served by ``GET /v1/jobs/{id}`` (no payloads)."""
        with self._lock:
            done = sum(1 for slot in self.slots if slot.status == SLOT_DONE)
            return {
                "id": self.id,
                "status": self.status,
                "batch": self.batch,
                "total": len(self.slots),
                "done": done,
                "slots": [
                    slot.describe(index) for index, slot in enumerate(self.slots)
                ],
            }


class JobRegistry:
    """Thread-safe id -> job map with bounded completed-job history."""

    def __init__(self, limit: int = 256) -> None:
        self._limit = limit
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()

    def create(self, requests: list[MapRequest | SimRequest], batch: bool) -> Job:
        job = Job(uuid.uuid4().hex[:12], requests, batch)
        with self._lock:
            self._jobs[job.id] = job
            completed = [
                job_id
                for job_id, existing in self._jobs.items()
                if existing.status == JOB_DONE
            ]
            while len(self._jobs) > self._limit and completed:
                self._jobs.pop(completed.pop(0), None)
        return job

    def discard(self, job_id: str) -> None:
        with self._lock:
            self._jobs.pop(job_id, None)

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def counts(self) -> dict[str, int]:
        with self._lock:
            total = len(self._jobs)
            active = sum(
                1 for job in self._jobs.values() if job.status != JOB_DONE
            )
        return {"total": total, "active": active}


def _chunks(items: list, size: int):
    iterator = iter(items)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


class JobRunner:
    """The bounded queue plus the worker threads that drain it."""

    def __init__(
        self,
        store: ResultStore,
        registry: JobRegistry,
        *,
        queue_limit: int = 64,
        workers: int = 2,
        executor: str = "process",
        timeout: float | None = None,
        max_batch: int = 1024,
        chunk: int | None = None,
    ) -> None:
        if queue_limit < 1:
            raise ApiError(f"queue_limit must be >= 1, got {queue_limit}")
        if workers < 1:
            raise ApiError(f"workers must be >= 1, got {workers}")
        self._store = store
        self._registry = registry
        self._queue: "queue.Queue[Job | None]" = queue.Queue(maxsize=queue_limit)
        self._workers = workers
        self._executor = executor
        self._timeout = timeout
        self._max_batch = max_batch
        self._chunk = chunk
        self._threads: list[threading.Thread] = []
        self._draining = False

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        # Compile the resolved kernel backend (if any) before accepting
        # work, so the first simulation request never pays compilation
        # latency.  A broken toolchain must not stop the service — the
        # vector engine falls back to its interpreted loops anyway.
        try:
            from repro.simnoc.engines import jit

            jit.warmup()
        except Exception:  # noqa: BLE001 — warm-up is an optimization only
            pass
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-service-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new submissions; already-accepted work keeps running."""
        self._draining = True

    def drain(self) -> None:
        """Block until every accepted job has completed, then stop workers.

        The drain contract: no accepted job's results are dropped — the
        queue empties, every in-flight job finishes and publishes, and only
        then do the workers exit.
        """
        self.begin_drain()
        self._queue.join()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    def queue_depth(self) -> int:
        return self._queue.qsize()

    # -- submission -----------------------------------------------------
    def submit(self, requests: list[MapRequest | SimRequest], batch: bool) -> Job:
        """Admit one job, or refuse it loudly.

        Raises:
            DrainingError: the service is shutting down (HTTP 503).
            OverloadedError: the admission queue is full (HTTP 429).
            ApiError: empty submission or batch larger than ``max_batch``.
        """
        if not requests:
            raise ApiError("a job needs at least one request")
        if len(requests) > self._max_batch:
            raise ApiError(
                f"batch of {len(requests)} exceeds the service limit of "
                f"{self._max_batch} requests per job"
            )
        if self._draining:
            raise DrainingError("service is draining and accepts no new jobs")
        job = self._registry.create(requests, batch)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            self._registry.discard(job.id)
            raise OverloadedError(
                f"admission queue is full ({self._queue.maxsize} jobs); retry later"
            ) from None
        return job

    # -- execution ------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is None:
                    return
                try:
                    self._run_job(job)
                except Exception as exc:  # noqa: BLE001 — a worker must survive
                    self._fail_pending_slots(job, exc)
                finally:
                    job.mark_done()
            finally:
                self._queue.task_done()

    def _fail_pending_slots(self, job: Job, exc: Exception) -> None:
        """Last-resort slot completion when the runner itself failed."""
        message = f"service job runner failed: {exc}"
        for index, slot in enumerate(job.slots):
            if slot.status == SLOT_PENDING:
                response = ErrorResponse(
                    request=slot.request, error="ServiceError", message=message
                )
                job.record(index, canonical_response_bytes(response), cached=False)

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        store = self._store
        # Distinct keys only: identical slots within one job share a single
        # claim (and a thread never waits on a key it owns).
        groups: "OrderedDict[str, list[int]]" = OrderedDict()
        for index, slot in enumerate(job.slots):
            groups.setdefault(slot.key, []).append(index)
        owned: list[str] = []
        waiting: list[str] = []
        for key, indices in groups.items():
            state, data = store.claim(key)
            if state == "hit":
                assert data is not None
                for index in indices:
                    job.record(index, data, cached=True)
            elif state == "owned":
                owned.append(key)
            else:
                waiting.append(key)

        unpublished = set(owned)
        try:
            chunk_size = self._chunk or max(1, min(len(owned), os.cpu_count() or 1))
            # isolate=True keeps singleton chunks on the pool: with the
            # process executor a crashing request must kill a disposable
            # worker, never the service itself.
            isolate = self._executor == "process"
            for chunk in _chunks(owned, chunk_size):
                requests = [job.slots[groups[key][0]].request for key in chunk]
                responses = run_batch(
                    requests,
                    executor=self._executor,
                    timeout=self._timeout,
                    isolate=isolate,
                )
                for key, response in zip(chunk, responses):
                    data = canonical_response_bytes(response)
                    cacheable = not isinstance(response, ErrorResponse)
                    store.publish(key, data, cache=cacheable)
                    unpublished.discard(key)
                    for index in groups[key]:
                        job.record(index, data, cached=False)
        finally:
            # A failure between claim and publish must not strand waiters.
            for key in unpublished:
                store.abandon(key)

        # Only now — with nothing of ours left unpublished — wait on keys
        # other jobs own.  Their owners follow the same discipline, so the
        # cross-job wait graph cannot cycle.
        for key in waiting:
            data = store.wait(key, timeout=self._timeout)
            cached = True
            if data is None:
                # The owner abandoned (or the wait timed out): compute this
                # slot ourselves rather than failing the job — on the
                # configured executor, so crash isolation still holds.
                response = run_batch(
                    [job.slots[groups[key][0]].request],
                    executor=self._executor,
                    timeout=self._timeout,
                    isolate=self._executor == "process",
                )[0]
                data = canonical_response_bytes(response)
                cached = False
            for index in groups[key]:
                job.record(index, data, cached=cached)
