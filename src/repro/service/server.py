"""The asyncio HTTP job service (stdlib only — no framework dependency).

One event-loop thread does all socket I/O over a hand-rolled HTTP/1.1
layer (request line + headers + Content-Length body in; Content-Length or
chunked responses out); everything that computes runs on the
:class:`~repro.service.jobs.JobRunner` worker threads, which in turn fan
out through ``run_batch``.  The loop therefore stays responsive — health
checks and status polls answer while a saturation sweep grinds.

Endpoints (all JSON):

* ``POST /v1/jobs`` — submit one request payload (``map-request`` /
  ``sim-request``) or a batch (``{"requests": [...]}``); answers 202 with
  the job id and per-slot content keys, 400 for malformed payloads, 429
  when the admission queue is full, 503 while draining.
* ``GET /v1/jobs/{id}`` — the job envelope (slot states, keys, cache
  provenance), plus embedded result payloads once done.  A failed
  single-request job answers with the status class of its typed error.
* ``GET /v1/jobs/{id}/result`` — the raw canonical result bytes: exactly
  the stored entry for a single job, NDJSON concatenation for a batch.
  This is the byte-identity surface the dedup contract is verified on.
* ``GET /v1/jobs/{id}/events`` — chunked NDJSON stream of per-slot results
  as they complete (sweep points arrive incrementally), closed by one
  ``{"done": true}`` line.
* ``GET /v1/health`` — liveness, queue depth, job counts, store counters.
* ``GET /v1/mappers`` — the mapper registry over the wire.

Shutdown is a *drain*, not a drop: SIGTERM/SIGINT (or
:meth:`NocService.request_shutdown`) stops admissions (503), finishes
every accepted job, keeps answering status/result/stream requests through
a short grace window, then exits.  No accepted job's results are lost.

Hard crashes are covered too: with a store root (or explicit
``journal_path``), every admitted job is journaled before its 202 and
replayed on the next start (``recover=True``), so ``kill -9`` mid-batch
loses nothing either — see :mod:`repro.service.journal`.  Overload is a
degradation ladder (per-client quotas, priority shedding, 429/503 with
``Retry-After``) and the store is bounded (``store_max_bytes`` LRU cap,
``result_ttl`` expiry) — see :mod:`repro.service.jobs` and
:mod:`repro.service.store`.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable

from repro.api.registry import mapper_entries
from repro.api.specs import SCHEMA_VERSION
from repro.errors import ApiError, ServiceError
from repro.service.jobs import (
    JOB_DONE,
    PRIORITIES,
    SLOT_DONE,
    DrainingError,
    JobRegistry,
    JobRunner,
    OverloadedError,
)
from repro.service.journal import JobJournal
from repro.service.store import ResultStore
from repro.service.wire import parse_request, status_for_error

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a service deployment can tune.

    Attributes:
        host/port: bind address; port 0 picks an ephemeral port (the bound
            port is announced and exposed as ``NocService.port``).
        store_root: directory for the persistent result store; None keeps
            results in memory only (identical semantics, no reuse across
            restarts).
        queue_limit: admission bound — jobs queued beyond the running ones
            before submissions get 429.
        workers: dispatch worker threads (concurrent jobs).
        executor: ``run_batch`` executor for job slots — ``"process"``
            (default; true multi-core and crash isolation), ``"thread"``
            or ``"serial"``.
        timeout: per-request wall-clock budget passed through to
            ``run_batch``; None disables.
        max_batch: per-job slot cap (oversized batches get 400).
        chunk: slots per ``run_batch`` call inside a job; None sizes chunks
            to the CPU count (incremental streaming with full fan-out).
        job_history: completed jobs retained for status/result queries.
        max_body: request body cap in bytes (413 beyond it).
        drain_grace: seconds to keep serving reads after the drain
            completes, so pollers and open streams collect final results.
        store_max_bytes: LRU size cap on the result store's entry bytes;
            None = unbounded disk.
        result_ttl: idle time-to-live for store entries in seconds; None =
            entries never expire.
        journal_path: write-ahead job journal location.  None derives
            ``<store_root>/journal.ndjson`` when a store root is set (the
            durable default); an empty string disables journaling even
            with a store root.
        recover: replay unfinished journaled jobs on startup (on by
            default — a ``kill -9`` mid-batch loses nothing).
        client_quota: max queued+running jobs per client id (the
            ``X-Repro-Client`` header); beyond it submissions get 429.
        shed_low_at/shed_normal_at: queue-fill fractions beyond which
            ``low``- and ``normal``-priority submissions are shed (429
            with ``Retry-After``); ``high`` is only refused by a full
            queue.
    """

    host: str = "127.0.0.1"
    port: int = 0
    store_root: str | None = None
    queue_limit: int = 64
    workers: int = 2
    executor: str = "process"
    timeout: float | None = None
    max_batch: int = 1024
    chunk: int | None = None
    job_history: int = 256
    max_body: int = 8 * 1024 * 1024
    drain_grace: float = 0.5
    store_max_bytes: int | None = None
    result_ttl: float | None = None
    journal_path: str | None = None
    recover: bool = True
    client_quota: int | None = None
    shed_low_at: float = 0.5
    shed_normal_at: float = 0.85


class _HttpError(Exception):
    """An error reply decided before a handler produced a body."""

    def __init__(
        self,
        status: int,
        error: str,
        message: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error = error
        self.message = message
        self.headers = headers


def _retry_after_headers(exc) -> dict[str, str] | None:
    """``Retry-After`` header for a refusal carrying a back-off hint."""
    hint = getattr(exc, "retry_after", None)
    if hint is None:
        return None
    return {"Retry-After": str(max(1, int(-(-float(hint) // 1))))}


class NocService:
    """The service: a store, a registry, a runner, and an HTTP front end.

    Two ways to run it:

    * ``serve_forever()`` — block the calling thread (the ``repro serve``
      CLI path; installs SIGTERM/SIGINT drain handlers when possible).
    * ``start()`` / ``shutdown()`` — run the loop on a background thread
      (tests and embedding; ``start`` returns the bound port).
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.store = ResultStore(
            self.config.store_root,
            max_bytes=self.config.store_max_bytes,
            ttl=self.config.result_ttl,
        )
        journal_path = self.config.journal_path
        if journal_path is None and self.config.store_root is not None:
            journal_path = str(Path(self.config.store_root) / "journal.ndjson")
        self.journal = JobJournal(journal_path) if journal_path else None
        self.registry = JobRegistry(limit=self.config.job_history)
        self.runner = JobRunner(
            self.store,
            self.registry,
            queue_limit=self.config.queue_limit,
            workers=self.config.workers,
            executor=self.config.executor,
            timeout=self.config.timeout,
            max_batch=self.config.max_batch,
            chunk=self.config.chunk,
            journal=self.journal,
            client_quota=self.config.client_quota,
            shed_low_at=self.config.shed_low_at,
            shed_normal_at=self.config.shed_normal_at,
        )
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    async def _main(
        self, install_signals: bool, announce: Callable[[str], None] | None
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.runner.start()
        if self.journal is not None and self.config.recover:
            # Replay the durable promise before the socket opens: every
            # journaled-but-unfinished job re-enters the queue under its
            # original id, then the journal is compacted down to exactly
            # those records.
            records = self.journal.recover()
            self.journal.compact()
            if records:
                restored = self.runner.restore(records)
                if announce is not None:
                    announce(
                        f"repro.service recovered {len(restored)} unfinished "
                        f"job(s) from {self.journal.path}"
                    )
        server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(sig, self.request_shutdown)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass  # non-main thread or unsupported platform
        if announce is not None:
            announce(
                f"repro.service listening on http://{self.config.host}:{self.port} "
                f"(executor={self.config.executor}, workers={self.config.workers}, "
                f"store={'memory' if self.config.store_root is None else self.config.store_root})"
            )
        self._started.set()
        async with server:
            await self._stop.wait()
            # Drain: finish every accepted job on a pool thread (the loop
            # keeps serving status/result/stream reads meanwhile), then
            # hold the door open briefly so clients collect the results.
            await self._loop.run_in_executor(None, self.runner.drain)
            if self.journal is not None:
                # Every accepted job is done: compacting leaves an empty
                # journal, so the next start has nothing to replay.
                self.journal.compact()
                self.journal.close()
            await asyncio.sleep(self.config.drain_grace)

    def serve_forever(
        self,
        install_signals: bool = True,
        announce: Callable[[str], None] | None = None,
    ) -> None:
        """Run until a shutdown is requested, then drain and return."""
        asyncio.run(self._main(install_signals, announce))

    def request_shutdown(self) -> None:
        """Begin the drain (idempotent, callable from any thread/signal)."""
        self.runner.begin_drain()
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    def start(self) -> int:
        """Serve on a background thread; returns the bound port."""
        if self._thread is not None:
            raise ServiceError("service already started")
        self._thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"install_signals": False},
            name="repro-service-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("service failed to start within 30 s")
        assert self.port is not None
        return self.port

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain and stop a background-thread service."""
        self.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise ServiceError("service did not drain within the timeout")
            self._thread = None

    # -- HTTP plumbing --------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                return
            method, path, headers, body = parsed
            await self._dispatch(writer, method, path, headers, body)
        except _HttpError as exc:
            await self._send_json(
                writer,
                exc.status,
                {"error": exc.error, "message": exc.message},
                extra_headers=exc.headers,
            )
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ):
            pass  # client went away or stalled; nothing to answer
        except Exception as exc:  # noqa: BLE001 — one connection, not the loop
            try:
                await self._send_json(
                    writer,
                    500,
                    {"error": type(exc).__name__, "message": str(exc)},
                )
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        request_line = await asyncio.wait_for(reader.readline(), timeout=30)
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "ApiError", "malformed HTTP request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "ApiError", "bad Content-Length header") from None
        if length > self.config.max_body:
            raise _HttpError(
                413,
                "ApiError",
                f"body of {length} bytes exceeds the {self.config.max_body} limit",
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _send_bytes(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        data: bytes,
        content_type: str = "application/json",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        extras = "".join(
            f"{name}: {value}\r\n"
            for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extras}"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        await self._send_bytes(writer, status, data, extra_headers=extra_headers)

    # -- routing --------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: dict[str, str],
        body: bytes,
    ) -> None:
        if path == "/v1/health" and method == "GET":
            await self._handle_health(writer)
            return
        if path == "/v1/mappers" and method == "GET":
            await self._handle_mappers(writer)
            return
        if path == "/v1/jobs" and method == "POST":
            await self._handle_submit(writer, headers, body)
            return
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            job = self.registry.get(job_id)
            if job is None:
                raise _HttpError(404, "ApiError", f"no such job {job_id!r}")
            if not tail:
                await self._handle_job(writer, job)
                return
            if tail == "result":
                await self._handle_result(writer, job)
                return
            if tail == "events":
                await self._handle_events(writer, job)
                return
        raise _HttpError(404, "ApiError", f"no route for {method} {path}")

    # -- handlers -------------------------------------------------------
    async def _handle_health(self, writer: asyncio.StreamWriter) -> None:
        await self._send_json(
            writer,
            200,
            {
                "status": "draining" if self.runner.draining else "ok",
                "schema": SCHEMA_VERSION,
                "queue_depth": self.runner.queue_depth(),
                "jobs": self.registry.counts(),
                "store": self.store.stats(),
                "journal": (
                    None if self.journal is None else self.journal.stats()
                ),
            },
        )

    async def _handle_mappers(self, writer: asyncio.StreamWriter) -> None:
        await self._send_json(
            writer,
            200,
            {
                "mappers": [
                    {
                        "name": entry.name,
                        "summary": entry.summary,
                        "seedable": entry.seedable,
                        "options": [
                            field.name for field in fields(entry.options_type)
                        ],
                    }
                    for entry in mapper_entries()
                ]
            },
        )

    async def _handle_submit(
        self, writer: asyncio.StreamWriter, headers: dict[str, str], body: bytes
    ) -> None:
        try:
            payload = json.loads(body)
        except ValueError:
            raise _HttpError(400, "ApiError", "body is not valid JSON") from None
        try:
            if isinstance(payload, dict) and "requests" in payload:
                raw = payload["requests"]
                if not isinstance(raw, list) or not raw:
                    raise ApiError("'requests' must be a non-empty list")
                requests = [parse_request(item) for item in raw]
                batch = True
            else:
                requests = [parse_request(payload)]
                batch = False
        except ApiError as exc:
            raise _HttpError(400, "ApiError", str(exc)) from None
        client = headers.get("x-repro-client", "anonymous") or "anonymous"
        priority = headers.get("x-repro-priority", "normal") or "normal"
        if priority not in PRIORITIES:
            raise _HttpError(
                400,
                "ApiError",
                f"X-Repro-Priority must be one of {', '.join(PRIORITIES)}, "
                f"got {priority!r}",
            )
        try:
            job = self.runner.submit(
                requests, batch, client=client, priority=priority
            )
        except OverloadedError as exc:
            # QuotaExceededError included: both are 429 with a back-off hint.
            raise _HttpError(
                429,
                type(exc).__name__,
                str(exc),
                headers=_retry_after_headers(exc),
            ) from None
        except DrainingError as exc:
            raise _HttpError(
                503,
                "DrainingError",
                str(exc),
                headers=_retry_after_headers(exc),
            ) from None
        except ApiError as exc:
            raise _HttpError(400, "ApiError", str(exc)) from None
        await self._send_json(
            writer,
            202,
            {
                "id": job.id,
                "status": job.status,
                "batch": job.batch,
                "slots": len(job.slots),
                "keys": [slot.key for slot in job.slots],
            },
        )

    async def _handle_job(self, writer: asyncio.StreamWriter, job) -> None:
        envelope = job.describe()
        status = 200
        if envelope["status"] == JOB_DONE:
            envelope["results"] = [
                json.loads(slot.data) for slot in job.slots
            ]
            if not job.batch:
                status = status_for_error(job.slots[0].error)
        await self._send_json(writer, status, envelope)

    async def _handle_result(self, writer: asyncio.StreamWriter, job) -> None:
        envelope = job.describe()
        if envelope["status"] != JOB_DONE:
            raise _HttpError(
                409,
                "PendingError",
                f"job {job.id} is {envelope['status']}; result not ready",
            )
        if job.batch:
            data = b"".join(slot.data for slot in job.slots)
            await self._send_bytes(
                writer, 200, data, content_type="application/x-ndjson"
            )
            return
        slot = job.slots[0]
        await self._send_bytes(writer, status_for_error(slot.error), slot.data)

    async def _handle_events(self, writer: asyncio.StreamWriter, job) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

        async def send_line(obj: dict) -> None:
            line = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
            writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
            await writer.drain()

        for index in range(len(job.slots)):
            while True:
                status, data, cached = job.slot_view(index)
                if status == SLOT_DONE:
                    break
                await asyncio.sleep(0.02)
            await send_line(
                {
                    "index": index,
                    "key": job.slots[index].key,
                    "cached": cached,
                    "payload": json.loads(data),
                }
            )
        await send_line({"done": True, "id": job.id, "status": job.describe()["status"]})
        writer.write(b"0\r\n\r\n")
        await writer.drain()
