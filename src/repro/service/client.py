"""The blocking Python client for the job service (stdlib only).

:class:`ServiceClient` speaks the wire protocol of
:mod:`repro.service.server` over ``http.client``: submit typed requests,
poll job status, fetch raw canonical result bytes (the byte-identity
surface), stream per-slot NDJSON events, or use the one-call ``map`` /
``simulate`` conveniences.  Responses come back as the same typed
``repro.api`` payloads a local ``run()`` would produce — including
:class:`~repro.api.ErrorResponse` for failed slots, which the convenience
helpers re-raise as :class:`~repro.errors.ServiceError` with the typed
payload attached.

The transport is production-grade:

* **Timeouts** — a separate connect timeout (fail fast on a dead host)
  and read timeout (budget for a slow reply) per attempt.
* **Idempotent retries** — with ``retries > 0``, transport failures
  (connection refused/reset, dropped mid-reply) and overload rejections
  (429/503) are retried with exponential backoff plus jitter, honoring
  the server's ``Retry-After`` hint when one is sent.  Retrying a
  submission is safe *by construction*: jobs are keyed on the canonical
  request, so a duplicate submission dedups into the same store entry —
  exactly-one execution no matter how many retries it took.
* **Circuit breaker** — after ``breaker_threshold`` consecutive transport
  failures, calls fail fast with a typed
  :class:`~repro.errors.CircuitOpenError` for ``breaker_cooldown``
  seconds instead of each eating a connect timeout; the first call after
  the cooldown probes the server (half-open) and closes the breaker on
  success.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.parse
from dataclasses import dataclass
from typing import Iterator

from repro.api.specs import (
    ErrorResponse,
    MapRequest,
    MapResponse,
    SimRequest,
    SimResponse,
)
from repro.errors import CircuitOpenError, ServiceError
from repro.service.wire import RESPONSE_KINDS, parse_response

#: HTTP statuses that are safe and useful to retry: back-pressure
#: rejections that come with (or imply) a Retry-After.
RETRY_STATUSES = (429, 503)

Request = MapRequest | SimRequest
Response = MapResponse | SimResponse | ErrorResponse


@dataclass(frozen=True)
class JobTicket:
    """A submission receipt: the handle everything else takes."""

    id: str
    batch: bool
    slots: int
    keys: tuple[str, ...]


@dataclass(frozen=True)
class StreamEvent:
    """One completed slot from the ``/events`` NDJSON stream.

    ``cached`` is the server's provenance flag: True when the slot was
    served from the result store or another job's in-flight computation
    rather than executed for this job.
    """

    index: int
    key: str
    cached: bool
    response: Response


class ServiceClient:
    """Blocking client for one service endpoint (``http://host:port``).

    Args:
        base_url: ``http://host:port`` (a bare ``host:port`` is accepted).
        timeout: per-attempt read budget in seconds.
        connect_timeout: per-attempt connect budget; defaults to
            ``timeout``.
        retries: extra attempts after the first for transport failures and
            429/503 rejections.  0 (the default) keeps every failure
            immediate and loud; ``repro submit`` turns retries on.
        backoff/backoff_max: exponential backoff base and cap in seconds;
            each delay is jittered to half..full of its nominal value and
            raised to the server's ``Retry-After`` when one was sent.
        breaker_threshold: consecutive transport failures that open the
            circuit breaker; 0 disables the breaker.
        breaker_cooldown: seconds the breaker stays open; while open,
            calls raise :class:`~repro.errors.CircuitOpenError` without
            touching the network.
        client_id: sent as ``X-Repro-Client`` — the identity the server's
            per-client quotas account against.
        priority: sent as ``X-Repro-Priority`` (``low``/``normal``/
            ``high``) — where this client's work sits in the server's
            shedding ladder.
        rng: randomness source for jitter (tests inject a seeded one).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        *,
        connect_timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.25,
        backoff_max: float = 8.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 15.0,
        client_id: str | None = None,
        priority: str | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if "//" not in base_url:
            base_url = "http://" + base_url
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ServiceError(
                f"only http:// service URLs are supported, got {base_url!r}"
            )
        if parsed.hostname is None:
            raise ServiceError(f"service URL {base_url!r} has no host")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout
        self._connect_timeout = (
            timeout if connect_timeout is None else connect_timeout
        )
        self._retries = max(0, retries)
        self._backoff = backoff
        self._backoff_max = backoff_max
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        self._client_id = client_id
        self._priority = priority
        self._rng = rng or random.Random()
        self._breaker_lock = threading.Lock()
        self._failures = 0
        self._open_until = 0.0

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}"

    # -- circuit breaker ------------------------------------------------
    def _breaker_preflight(self) -> None:
        """Fail fast while the breaker is open; allow one half-open probe."""
        with self._breaker_lock:
            remaining = self._open_until - time.monotonic()
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit breaker open for service at {self.base_url}: "
                    f"{self._failures} consecutive transport failures; "
                    f"retry in {remaining:.1f} s",
                    retry_after=remaining,
                )
            # Past the cooldown: this call is the half-open probe.
            self._open_until = 0.0

    def _breaker_failure(self) -> None:
        with self._breaker_lock:
            self._failures += 1
            if (
                self._breaker_threshold > 0
                and self._failures >= self._breaker_threshold
            ):
                self._open_until = time.monotonic() + self._breaker_cooldown

    def _breaker_success(self) -> None:
        with self._breaker_lock:
            self._failures = 0
            self._open_until = 0.0

    # -- transport ------------------------------------------------------
    def _open(self) -> http.client.HTTPConnection:
        """Connect with the connect budget, then switch to the read budget."""
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._connect_timeout
        )
        connection.connect()
        if connection.sock is not None:
            connection.sock.settimeout(self._timeout)
        return connection

    def _headers(self, body: bytes | None) -> dict[str, str]:
        headers = {"Connection": "close"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        if self._client_id is not None:
            headers["X-Repro-Client"] = self._client_id
        if self._priority is not None:
            headers["X-Repro-Priority"] = self._priority
        return headers

    def _delay(self, attempt: int, retry_after: str | None) -> float:
        """Jittered exponential backoff, raised to the server's hint."""
        nominal = min(self._backoff_max, self._backoff * (2.0 ** attempt))
        delay = nominal * (0.5 + 0.5 * self._rng.random())
        if retry_after is not None:
            try:
                hinted = float(retry_after)
            except ValueError:
                hinted = 0.0
            delay = max(delay, min(hinted, self._backoff_max))
        return delay

    def _request_full(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, str | None, bytes]:
        """One logical request: retries, backoff, breaker accounting.

        Returns ``(status, retry_after_header, body_bytes)``.  Safe to
        retry for every endpoint: reads are idempotent and submissions
        dedup on the canonical request key server-side.
        """
        attempt = 0
        while True:
            self._breaker_preflight()
            exc: Exception | None = None
            try:
                connection = self._open()
            except (OSError, http.client.HTTPException) as err:
                exc = err
            else:
                try:
                    connection.request(
                        method, path, body=body, headers=self._headers(body)
                    )
                    reply = connection.getresponse()
                    status = reply.status
                    retry_after = reply.getheader("Retry-After")
                    data = reply.read()
                except (OSError, http.client.HTTPException) as err:
                    exc = err
                finally:
                    connection.close()
            if exc is None:
                self._breaker_success()
                if status in RETRY_STATUSES and attempt < self._retries:
                    time.sleep(self._delay(attempt, retry_after))
                    attempt += 1
                    continue
                return status, retry_after, data
            self._breaker_failure()
            if attempt >= self._retries:
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {exc}"
                ) from exc
            time.sleep(self._delay(attempt, None))
            attempt += 1

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        status, _, data = self._request_full(method, path, body)
        return status, data

    def _request_json(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict, str | None]:
        body = (
            None
            if payload is None
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        status, retry_after, data = self._request_full(method, path, body)
        try:
            parsed = json.loads(data)
        except ValueError as exc:
            raise ServiceError(
                f"service returned a non-JSON body for {method} {path} "
                f"(HTTP {status})"
            ) from exc
        if not isinstance(parsed, dict):
            raise ServiceError(
                f"service returned a non-object body for {method} {path}"
            )
        return status, parsed, retry_after

    @staticmethod
    def _raise_for(
        status: int,
        payload: dict,
        context: str,
        retry_after: str | None = None,
    ) -> None:
        hint: float | None = None
        if retry_after is not None:
            try:
                hint = float(retry_after)
            except ValueError:
                hint = None
        raise ServiceError(
            f"{context}: HTTP {status} "
            f"{payload.get('error', 'error')}: {payload.get('message', '')}",
            retry_after=hint,
        )

    # -- introspection --------------------------------------------------
    def health(self) -> dict:
        status, payload, retry_after = self._request_json("GET", "/v1/health")
        if status != 200:
            self._raise_for(status, payload, "health check failed", retry_after)
        return payload

    def mappers(self) -> list[dict]:
        status, payload, retry_after = self._request_json("GET", "/v1/mappers")
        if status != 200:
            self._raise_for(status, payload, "mapper listing failed", retry_after)
        return payload["mappers"]

    # -- job lifecycle --------------------------------------------------
    def submit(self, requests: Request | list[Request]) -> JobTicket:
        """Submit one request (single job) or a list (batch job).

        Raises:
            ServiceError: transport failure, malformed payload (400),
                overload (429) or draining (503) rejections — the message
                carries the server's error class and text, and
                ``retry_after`` the server's back-off hint when one was
                sent.  With ``retries`` set, 429/503 and transport
                failures are retried (idempotent: submissions dedup on
                the canonical request key) before this is raised.
            CircuitOpenError: the breaker is open; nothing was sent.
        """
        if isinstance(requests, (MapRequest, SimRequest)):
            payload: dict = requests.to_dict()
        else:
            if not requests:
                raise ServiceError("cannot submit an empty batch")
            payload = {"requests": [request.to_dict() for request in requests]}
        status, reply, retry_after = self._request_json(
            "POST", "/v1/jobs", payload
        )
        if status != 202:
            self._raise_for(status, reply, "submission rejected", retry_after)
        return JobTicket(
            id=reply["id"],
            batch=bool(reply["batch"]),
            slots=int(reply["slots"]),
            keys=tuple(reply["keys"]),
        )

    def status(self, job_id: str) -> dict:
        """The raw job envelope (any completion state)."""
        status, payload, retry_after = self._request_json(
            "GET", f"/v1/jobs/{job_id}"
        )
        if "id" not in payload:
            self._raise_for(
                status, payload, f"job {job_id} lookup failed", retry_after
            )
        return payload

    def result_raw(self, job_id: str) -> bytes:
        """The canonical result bytes of a completed job.

        Single jobs return the stored entry verbatim (even for typed
        failures — the body *is* the ``error-response`` payload); batch
        jobs return the NDJSON concatenation of every slot.
        """
        status, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        try:
            probe = json.loads(data.split(b"\n", 1)[0])
        except ValueError:
            probe = None
        if isinstance(probe, dict) and probe.get("kind") in RESPONSE_KINDS:
            return data
        payload = probe if isinstance(probe, dict) else {}
        self._raise_for(status, payload, f"job {job_id} result unavailable")
        raise AssertionError("unreachable")

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.05
    ) -> Response | list[Response]:
        """Poll until the job completes; return typed response(s).

        Single jobs return one typed payload (``ErrorResponse`` included —
        it is a result, not an exception); batch jobs return the ordered
        list of slot payloads.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            envelope = self.status(job_id)
            if envelope["status"] == "done":
                break
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} did not complete within {timeout} s "
                    f"(status {envelope['status']}, "
                    f"{envelope['done']}/{envelope['total']} slots)"
                )
            time.sleep(poll)
        data = self.result_raw(job_id)
        lines = [line for line in data.split(b"\n") if line.strip()]
        responses = [parse_response(json.loads(line)) for line in lines]
        if envelope["batch"]:
            return responses
        return responses[0]

    def stream(self, job_id: str) -> Iterator[StreamEvent]:
        """Yield per-slot results as the server completes them (NDJSON).

        Streaming is not retried — a consumer observing a half-delivered
        stream must decide for itself whether to re-stream — but the
        breaker still counts connection failures, and an open breaker
        fails fast here too.
        """
        self._breaker_preflight()
        try:
            connection = self._open()
        except (OSError, http.client.HTTPException) as exc:
            self._breaker_failure()
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from exc
        try:
            try:
                connection.request(
                    "GET",
                    f"/v1/jobs/{job_id}/events",
                    headers=self._headers(None),
                )
                reply = connection.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                self._breaker_failure()
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {exc}"
                ) from exc
            self._breaker_success()
            if reply.status != 200:
                body = reply.read()
                try:
                    payload = json.loads(body)
                except ValueError:
                    payload = {}
                self._raise_for(
                    reply.status, payload, f"job {job_id} event stream refused"
                )
            for line in reply:
                if not line.strip():
                    continue
                event = json.loads(line)
                if event.get("done"):
                    return
                yield StreamEvent(
                    index=int(event["index"]),
                    key=event["key"],
                    cached=bool(event["cached"]),
                    response=parse_response(event["payload"]),
                )
            raise ServiceError(
                f"job {job_id} event stream ended without a done marker "
                f"(server dropped mid-stream?)"
            )
        finally:
            connection.close()

    # -- conveniences ---------------------------------------------------
    def _run_single(
        self, request: Request, timeout: float | None
    ) -> Response:
        ticket = self.submit(request)
        response = self.wait(ticket.id, timeout=timeout)
        assert not isinstance(response, list)
        if isinstance(response, ErrorResponse):
            raise ServiceError(
                f"request failed on the service: {response.describe()}",
                response=response,
            )
        return response

    def map(self, request: MapRequest, timeout: float | None = None) -> MapResponse:
        """Submit one map request and block for its typed response."""
        response = self._run_single(request, timeout)
        assert isinstance(response, MapResponse)
        return response

    def simulate(
        self, request: SimRequest, timeout: float | None = None
    ) -> SimResponse:
        """Submit one sim request and block for its typed response."""
        response = self._run_single(request, timeout)
        assert isinstance(response, SimResponse)
        return response
