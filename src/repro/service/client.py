"""The thin blocking Python client for the job service (stdlib only).

:class:`ServiceClient` speaks the wire protocol of
:mod:`repro.service.server` over ``http.client``: submit typed requests,
poll job status, fetch raw canonical result bytes (the byte-identity
surface), stream per-slot NDJSON events, or use the one-call ``map`` /
``simulate`` conveniences.  Responses come back as the same typed
``repro.api`` payloads a local ``run()`` would produce — including
:class:`~repro.api.ErrorResponse` for failed slots, which the convenience
helpers re-raise as :class:`~repro.errors.ServiceError` with the typed
payload attached.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from dataclasses import dataclass
from typing import Iterator

from repro.api.specs import (
    ErrorResponse,
    MapRequest,
    MapResponse,
    SimRequest,
    SimResponse,
)
from repro.errors import ServiceError
from repro.service.wire import RESPONSE_KINDS, parse_response

Request = MapRequest | SimRequest
Response = MapResponse | SimResponse | ErrorResponse


@dataclass(frozen=True)
class JobTicket:
    """A submission receipt: the handle everything else takes."""

    id: str
    batch: bool
    slots: int
    keys: tuple[str, ...]


@dataclass(frozen=True)
class StreamEvent:
    """One completed slot from the ``/events`` NDJSON stream.

    ``cached`` is the server's provenance flag: True when the slot was
    served from the result store or another job's in-flight computation
    rather than executed for this job.
    """

    index: int
    key: str
    cached: bool
    response: Response


class ServiceClient:
    """Blocking client for one service endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        if "//" not in base_url:
            base_url = "http://" + base_url
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme != "http":
            raise ServiceError(
                f"only http:// service URLs are supported, got {base_url!r}"
            )
        if parsed.hostname is None:
            raise ServiceError(f"service URL {base_url!r} has no host")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._timeout = timeout

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self._port}"

    # -- transport ------------------------------------------------------
    def _open(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout
        )

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        connection = self._open()
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            reply = connection.getresponse()
            return reply.status, reply.read()
        except (OSError, http.client.HTTPException) as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _request_json(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        body = (
            None
            if payload is None
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        status, data = self._request(method, path, body)
        try:
            parsed = json.loads(data)
        except ValueError as exc:
            raise ServiceError(
                f"service returned a non-JSON body for {method} {path} "
                f"(HTTP {status})"
            ) from exc
        if not isinstance(parsed, dict):
            raise ServiceError(
                f"service returned a non-object body for {method} {path}"
            )
        return status, parsed

    @staticmethod
    def _raise_for(status: int, payload: dict, context: str) -> None:
        raise ServiceError(
            f"{context}: HTTP {status} "
            f"{payload.get('error', 'error')}: {payload.get('message', '')}"
        )

    # -- introspection --------------------------------------------------
    def health(self) -> dict:
        status, payload = self._request_json("GET", "/v1/health")
        if status != 200:
            self._raise_for(status, payload, "health check failed")
        return payload

    def mappers(self) -> list[dict]:
        status, payload = self._request_json("GET", "/v1/mappers")
        if status != 200:
            self._raise_for(status, payload, "mapper listing failed")
        return payload["mappers"]

    # -- job lifecycle --------------------------------------------------
    def submit(self, requests: Request | list[Request]) -> JobTicket:
        """Submit one request (single job) or a list (batch job).

        Raises:
            ServiceError: transport failure, malformed payload (400),
                overload (429) or draining (503) rejections — the message
                carries the server's error class and text.
        """
        if isinstance(requests, (MapRequest, SimRequest)):
            payload: dict = requests.to_dict()
        else:
            if not requests:
                raise ServiceError("cannot submit an empty batch")
            payload = {"requests": [request.to_dict() for request in requests]}
        status, reply = self._request_json("POST", "/v1/jobs", payload)
        if status != 202:
            self._raise_for(status, reply, "submission rejected")
        return JobTicket(
            id=reply["id"],
            batch=bool(reply["batch"]),
            slots=int(reply["slots"]),
            keys=tuple(reply["keys"]),
        )

    def status(self, job_id: str) -> dict:
        """The raw job envelope (any completion state)."""
        status, payload = self._request_json("GET", f"/v1/jobs/{job_id}")
        if "id" not in payload:
            self._raise_for(status, payload, f"job {job_id} lookup failed")
        return payload

    def result_raw(self, job_id: str) -> bytes:
        """The canonical result bytes of a completed job.

        Single jobs return the stored entry verbatim (even for typed
        failures — the body *is* the ``error-response`` payload); batch
        jobs return the NDJSON concatenation of every slot.
        """
        status, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        try:
            probe = json.loads(data.split(b"\n", 1)[0])
        except ValueError:
            probe = None
        if isinstance(probe, dict) and probe.get("kind") in RESPONSE_KINDS:
            return data
        payload = probe if isinstance(probe, dict) else {}
        self._raise_for(status, payload, f"job {job_id} result unavailable")
        raise AssertionError("unreachable")

    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.05
    ) -> Response | list[Response]:
        """Poll until the job completes; return typed response(s).

        Single jobs return one typed payload (``ErrorResponse`` included —
        it is a result, not an exception); batch jobs return the ordered
        list of slot payloads.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            envelope = self.status(job_id)
            if envelope["status"] == "done":
                break
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} did not complete within {timeout} s "
                    f"(status {envelope['status']}, "
                    f"{envelope['done']}/{envelope['total']} slots)"
                )
            time.sleep(poll)
        data = self.result_raw(job_id)
        lines = [line for line in data.split(b"\n") if line.strip()]
        responses = [parse_response(json.loads(line)) for line in lines]
        if envelope["batch"]:
            return responses
        return responses[0]

    def stream(self, job_id: str) -> Iterator[StreamEvent]:
        """Yield per-slot results as the server completes them (NDJSON)."""
        connection = self._open()
        try:
            try:
                connection.request(
                    "GET",
                    f"/v1/jobs/{job_id}/events",
                    headers={"Connection": "close"},
                )
                reply = connection.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: {exc}"
                ) from exc
            if reply.status != 200:
                body = reply.read()
                try:
                    payload = json.loads(body)
                except ValueError:
                    payload = {}
                self._raise_for(
                    reply.status, payload, f"job {job_id} event stream refused"
                )
            for line in reply:
                if not line.strip():
                    continue
                event = json.loads(line)
                if event.get("done"):
                    return
                yield StreamEvent(
                    index=int(event["index"]),
                    key=event["key"],
                    cached=bool(event["cached"]),
                    response=parse_response(event["payload"]),
                )
            raise ServiceError(
                f"job {job_id} event stream ended without a done marker "
                f"(server dropped mid-stream?)"
            )
        finally:
            connection.close()

    # -- conveniences ---------------------------------------------------
    def _run_single(
        self, request: Request, timeout: float | None
    ) -> Response:
        ticket = self.submit(request)
        response = self.wait(ticket.id, timeout=timeout)
        assert not isinstance(response, list)
        if isinstance(response, ErrorResponse):
            raise ServiceError(
                f"request failed on the service: {response.describe()}",
                response=response,
            )
        return response

    def map(self, request: MapRequest, timeout: float | None = None) -> MapResponse:
        """Submit one map request and block for its typed response."""
        response = self._run_single(request, timeout)
        assert isinstance(response, MapResponse)
        return response

    def simulate(
        self, request: SimRequest, timeout: float | None = None
    ) -> SimResponse:
        """Submit one sim request and block for its typed response."""
        response = self._run_single(request, timeout)
        assert isinstance(response, SimResponse)
        return response
