"""``repro.service`` — mapping/simulation-as-a-service over ``repro.api``.

The typed payloads were one step from a wire protocol; this package takes
the step.  A stdlib-only asyncio HTTP job service
(:class:`~repro.service.server.NocService`) fronts the batch engine with
admission control and a content-addressed result store
(:class:`~repro.service.store.ResultStore`) keyed by
:func:`repro.api.canonical_request_key` — identical requests, however many
clients submit them concurrently, execute once and everyone reads
byte-identical result bodies.  A thin blocking client
(:class:`~repro.service.client.ServiceClient`) round-trips the same typed
payloads.

Quick tour::

    from repro.api import MapRequest, TopologySpec
    from repro.service import NocService, ServiceClient, ServiceConfig

    service = NocService(ServiceConfig(executor="thread"))
    port = service.start()                      # background thread
    client = ServiceClient(f"http://127.0.0.1:{port}")
    response = client.map(MapRequest(app="vopd",
                                     topology=TopologySpec.parse("torus:4x4")))
    service.shutdown()                          # drains, never drops results

Or from the shell: ``repro serve`` / ``repro submit`` (see the CLI).
"""

from repro.service.client import JobTicket, ServiceClient, StreamEvent
from repro.service.jobs import (
    PRIORITIES,
    DrainingError,
    JobRegistry,
    JobRunner,
    OverloadedError,
    QuotaExceededError,
)
from repro.service.journal import JobJournal
from repro.service.server import NocService, ServiceConfig
from repro.service.store import ResultStore
from repro.service.wire import (
    canonical_response_bytes,
    parse_request,
    parse_response,
    status_for_error,
)

__all__ = [
    "PRIORITIES",
    "DrainingError",
    "JobJournal",
    "JobRegistry",
    "JobRunner",
    "JobTicket",
    "NocService",
    "OverloadedError",
    "QuotaExceededError",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "StreamEvent",
    "canonical_response_bytes",
    "parse_request",
    "parse_response",
    "status_for_error",
]
