"""PMAP: two-phase physical mapping of clustered task graphs (Koziris et al.).

Reimplementation of the EuroPDP 2000 algorithm the paper benchmarks.  PMAP
maps clusters (here: cores, since the paper feeds core graphs directly) onto
processors in two phases:

1. *Selection order*: clusters are ordered by their total communication
   with the already-selected set, seeded by the heaviest cluster — a
   max-adjacency ordering.
2. *Physical placement*: each selected cluster is placed on a free
   processor chosen from the *frontier* — processors adjacent to already
   used ones — minimizing hop-weighted communication to the placed
   clusters.  The seed goes to a corner, and placement grows a contiguous
   region outward (nearest-neighbor expansion).

The frontier restriction is the characteristic difference from GMAP/NMAP's
global node scans and is why PMAP trails them on meshes: a locally adjacent
node is not always the globally best one.
"""

from __future__ import annotations

from repro.api.options import PmapOptions
from repro.api.registry import register_mapper
from repro.errors import MappingError
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.metrics.comm_cost import MAXVALUE, comm_cost
from repro.routing.min_path import min_path_routing


def _selection_order(core_graph: CoreGraph) -> list[str]:
    """Max-adjacency order seeded by the heaviest core."""
    order: list[str] = []
    selected: set[str] = set()
    first = max(
        core_graph.cores,
        key=lambda core: (core_graph.core_traffic(core), -core_graph.cores.index(core)),
    )
    order.append(first)
    selected.add(first)
    while len(order) < core_graph.num_cores:
        best = max(
            (core for core in core_graph.cores if core not in selected),
            key=lambda core: (
                sum(core_graph.traffic_between(core, other) for other in selected),
                core_graph.core_traffic(core),
                -core_graph.cores.index(core),
            ),
        )
        order.append(best)
        selected.add(best)
    return order


@register_mapper("pmap", options=PmapOptions,
                 summary="Two-phase frontier placement baseline (Koziris et al.)")
def pmap(core_graph: CoreGraph, topology: NoCTopology) -> MappingResult:
    """Run the PMAP baseline.

    Returns:
        :class:`MappingResult` priced with single-minimum-path routing.
    """
    if core_graph.num_cores == 0:
        raise MappingError("cannot map an empty core graph")
    mapping = Mapping(core_graph, topology)
    order = _selection_order(core_graph)
    mapping.assign(order[0], 0)  # corner seed: node (0, 0)

    for core in order[1:]:
        placed_neighbors = [
            (mapping.node_of(other), core_graph.traffic_between(core, other))
            for other in core_graph.neighbors(core)
            if mapping.is_mapped(other)
        ]
        frontier = sorted(
            {
                neighbor
                for used in mapping.used_nodes()
                for neighbor in topology.neighbors(used)
                if mapping.core_at(neighbor) is None
            }
        )
        candidates = frontier or mapping.free_nodes()
        best_node = min(
            candidates,
            key=lambda node: (
                sum(
                    bandwidth * topology.distance(node, placed)
                    for placed, bandwidth in placed_neighbors
                ),
                node,
            ),
        )
        mapping.assign(core, best_node)

    commodities = build_commodities(core_graph, mapping)
    routing = min_path_routing(topology, commodities)
    feasible = routing.is_feasible()
    return MappingResult(
        mapping=mapping,
        comm_cost=comm_cost(mapping) if feasible else MAXVALUE,
        feasible=feasible,
        algorithm="pmap",
        routing=routing,
    )
