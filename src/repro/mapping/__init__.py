"""Mapping algorithms: NMAP and the baselines it is compared against.

* :func:`~repro.mapping.initializer.initial_mapping` — the paper's
  ``initialize()`` constructive seed.
* :func:`~repro.mapping.nmap.nmap_single_path` — §5,
  ``mappingwithsinglepath()``.
* :func:`~repro.mapping.nmap_split.nmap_with_splitting` — §6,
  ``mappingwithsplitting()`` with MCF1/MCF2 (NMAPTM / NMAPTA).
* :func:`~repro.mapping.pmap.pmap` — Koziris et al.'s two-phase PMAP.
* :func:`~repro.mapping.gmap.gmap` — Hu–Marculescu's greedy mapping (UBC).
* :func:`~repro.mapping.pbb.pbb` — Hu–Marculescu's partial branch-and-bound.
* :func:`~repro.mapping.exhaustive.exhaustive_best_mapping` — brute-force
  oracle for small instances (testing).
* :func:`~repro.mapping.random_map.random_mapping` — seeded random baseline.
"""

from repro.mapping.annealing import annealing_mapping
from repro.mapping.base import Mapping, MappingResult
from repro.mapping.exhaustive import exhaustive_best_mapping
from repro.mapping.gmap import gmap
from repro.mapping.hmap import hmap
from repro.mapping.initializer import initial_mapping
from repro.mapping.nmap import evaluate_single_path, nmap_single_path
from repro.mapping.nmap_split import nmap_with_splitting
from repro.mapping.pbb import pbb
from repro.mapping.pmap import pmap
from repro.mapping.random_map import random_mapping

__all__ = [
    "Mapping",
    "MappingResult",
    "annealing_mapping",
    "evaluate_single_path",
    "exhaustive_best_mapping",
    "gmap",
    "hmap",
    "initial_mapping",
    "nmap_single_path",
    "nmap_with_splitting",
    "pbb",
    "pmap",
    "random_mapping",
]
