"""The mapping function ``map: V -> U`` (Equation 1) and result records.

A :class:`Mapping` is a one-to-one partial assignment of cores to mesh
nodes, defined whenever ``|V| <= |U|`` — nodes may stay empty, and the swap
moves of NMAP's improvement loop may move a core onto an empty node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology


class Mapping:
    """One-to-one (injective) placement of cores onto topology nodes.

    Args:
        core_graph: the application graph ``G(V, E)``.
        topology: the NoC graph ``P(U, F)``; must satisfy ``|V| <= |U|``.
        placement: optional initial core -> node assignment.
    """

    def __init__(
        self,
        core_graph: CoreGraph,
        topology: NoCTopology,
        placement: dict[str, int] | None = None,
    ) -> None:
        if core_graph.num_cores > topology.num_nodes:
            raise MappingError(
                f"{core_graph.num_cores} cores cannot map onto "
                f"{topology.num_nodes} nodes (need |V| <= |U|)"
            )
        if core_graph.num_cores > topology.num_healthy_nodes:
            raise MappingError(
                f"{core_graph.num_cores} cores cannot map onto the "
                f"{topology.num_healthy_nodes} surviving nodes of {topology!r} "
                f"({len(topology.failed_routers)} router(s) failed)"
            )
        self.core_graph = core_graph
        self.topology = topology
        self._core_to_node: dict[str, int] = {}
        self._node_to_core: dict[int, str] = {}
        # Fast-path cache: (graph version, core->index, positions, node->core
        # index).  Built lazily by position_arrays() and then maintained
        # incrementally by assign/unassign/swap_nodes, so vectorized kernels
        # never pay a rebuild on the mutation-heavy swap loops.
        self._arrays: tuple[int, dict[str, int], np.ndarray, np.ndarray] | None = None
        for core, node in (placement or {}).items():
            self.assign(core, node)

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def assign(self, core: str, node: int) -> None:
        """Place ``core`` on ``node``; both must be free.

        Raises:
            MappingError: unknown core/node, or either side already used.
        """
        if not self.core_graph.has_core(core):
            raise MappingError(f"unknown core {core!r}")
        if not (0 <= node < self.topology.num_nodes):
            raise MappingError(f"node {node} outside the topology")
        if node in self.topology.failed_routers:
            raise MappingError(f"node {node} hosts a failed router")
        if core in self._core_to_node:
            raise MappingError(f"core {core!r} already mapped to {self._core_to_node[core]}")
        if node in self._node_to_core:
            raise MappingError(f"node {node} already hosts {self._node_to_core[node]!r}")
        self._core_to_node[core] = node
        self._node_to_core[node] = core
        arrays = self._usable_arrays()
        if arrays is not None:
            _, index, positions, node_core = arrays
            positions[index[core]] = node
            node_core[node] = index[core]

    def unassign(self, core: str) -> None:
        """Remove ``core`` from the placement."""
        try:
            node = self._core_to_node.pop(core)
        except KeyError:
            raise MappingError(f"core {core!r} is not mapped") from None
        del self._node_to_core[node]
        arrays = self._usable_arrays()
        if arrays is not None:
            _, index, positions, node_core = arrays
            positions[index[core]] = -1
            node_core[node] = -1

    def swap_nodes(self, node_a: int, node_b: int) -> None:
        """Exchange the contents of two mesh nodes, in place.

        Either node may be empty, so this also models "move a core to a free
        node" — the full move set of NMAP's pairwise improvement loop.
        """
        for node in (node_a, node_b):
            if not (0 <= node < self.topology.num_nodes):
                raise MappingError(f"node {node} outside the topology")
            if node in self.topology.failed_routers:
                raise MappingError(f"node {node} hosts a failed router")
        core_a = self._node_to_core.pop(node_a, None)
        core_b = self._node_to_core.pop(node_b, None)
        if core_a is not None:
            self._node_to_core[node_b] = core_a
            self._core_to_node[core_a] = node_b
        if core_b is not None:
            self._node_to_core[node_a] = core_b
            self._core_to_node[core_b] = node_a
        arrays = self._usable_arrays()
        if arrays is not None:
            _, index, positions, node_core = arrays
            idx_a = index[core_a] if core_a is not None else -1
            idx_b = index[core_b] if core_b is not None else -1
            node_core[node_a], node_core[node_b] = idx_b, idx_a
            if idx_a >= 0:
                positions[idx_a] = node_b
            if idx_b >= 0:
                positions[idx_b] = node_a

    def swapped(self, node_a: int, node_b: int) -> "Mapping":
        """A copy with the contents of two nodes exchanged."""
        clone = self.copy()
        clone.swap_nodes(node_a, node_b)
        return clone

    def copy(self) -> "Mapping":
        clone = Mapping(self.core_graph, self.topology)
        clone._core_to_node = dict(self._core_to_node)
        clone._node_to_core = dict(self._node_to_core)
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_mapped(self, core: str) -> bool:
        return core in self._core_to_node

    def node_of(self, core: str) -> int:
        """The mesh node hosting ``core`` (``map(v_i)``)."""
        try:
            return self._core_to_node[core]
        except KeyError:
            raise MappingError(f"core {core!r} is not mapped") from None

    def core_at(self, node: int) -> str | None:
        """The core on ``node`` or None when the node is empty."""
        return self._node_to_core.get(node)

    @property
    def placement(self) -> dict[str, int]:
        """Core -> node dictionary (copy)."""
        return dict(self._core_to_node)

    @property
    def node_contents(self) -> dict[int, str | None]:
        """Node -> core-or-None for every node of the topology."""
        return {node: self._node_to_core.get(node) for node in self.topology.nodes}

    @property
    def num_mapped(self) -> int:
        return len(self._core_to_node)

    @property
    def is_complete(self) -> bool:
        """True when every core of the graph is placed."""
        return self.num_mapped == self.core_graph.num_cores

    def used_nodes(self) -> set[int]:
        return set(self._node_to_core)

    def free_nodes(self) -> list[int]:
        """Unoccupied healthy nodes, ascending id order (deterministic ties).

        Failed routers are never free: a core placed there could neither
        send nor receive, so every placement strategy skips them.
        """
        failed = self.topology.failed_routers
        return [
            node
            for node in self.topology.nodes
            if node not in self._node_to_core and node not in failed
        ]

    # ------------------------------------------------------------------
    # fast-path array views
    # ------------------------------------------------------------------
    def _usable_arrays(
        self,
    ) -> tuple[int, dict[str, int], np.ndarray, np.ndarray] | None:
        """The cached arrays when still valid for the current graph version.

        A stale cache (the core graph gained cores/flows after the cache was
        built) is dropped so the next :meth:`position_arrays` call rebuilds.
        """
        arrays = self._arrays
        if arrays is None:
            return None
        if arrays[0] != self.core_graph.version:
            self._arrays = None
            return None
        return arrays

    def position_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(positions, node_core)`` int64 views of the placement.

        ``positions[c]`` is the node hosting core index ``c`` (per
        :meth:`CoreGraph.core_index`) or -1 when unmapped; ``node_core[n]``
        is the core index on node ``n`` or -1 when empty.  Built lazily,
        then updated in place by every mutation — treat as read-only.
        """
        arrays = self._usable_arrays()
        if arrays is None:
            index = self.core_graph.core_index()
            positions = np.full(len(index), -1, dtype=np.int64)
            node_core = np.full(self.topology.num_nodes, -1, dtype=np.int64)
            for core, node in self._core_to_node.items():
                positions[index[core]] = node
                node_core[node] = index[core]
            arrays = (self.core_graph.version, index, positions, node_core)
            self._arrays = arrays
        return arrays[2], arrays[3]

    def validate(self) -> None:
        """Check completeness and bijectivity onto the used node set.

        Raises:
            MappingError: if any core is unmapped (injectivity is enforced
                structurally by :meth:`assign`).
        """
        missing = [core for core in self.core_graph.cores if core not in self._core_to_node]
        if missing:
            raise MappingError(f"cores not mapped: {missing}")

    # ------------------------------------------------------------------
    # conversion / comparison
    # ------------------------------------------------------------------
    @classmethod
    def from_node_list(
        cls, core_graph: CoreGraph, topology: NoCTopology, cores_by_node: Iterable[str | None]
    ) -> "Mapping":
        """Build from a per-node list: entry ``i`` is the core on node ``i``."""
        placement: dict[str, int] = {}
        for node, core in enumerate(cores_by_node):
            if core is not None:
                placement[core] = node
        return cls(core_graph, topology, placement)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._core_to_node == other._core_to_node

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"Mapping({self.core_graph.name!r} -> {self.topology.width}x"
            f"{self.topology.height}, mapped={self.num_mapped}/{self.core_graph.num_cores})"
        )

    def render(self) -> str:
        """ASCII grid of the placement (rows = mesh rows), for logs/CLI."""
        widest = max(
            [len(core) for core in self._core_to_node] + [1]
        )
        rows = []
        for y in range(self.topology.height):
            cells = []
            for x in range(self.topology.width):
                core = self.core_at(self.topology.node_at(x, y))
                cells.append((core or ".").ljust(widest))
            rows.append(" | ".join(cells))
        return "\n".join(rows)


@dataclass
class MappingResult:
    """Outcome of a mapping algorithm run.

    Attributes:
        mapping: the final placement.
        comm_cost: Equation 7 communication cost (hops x bandwidth); infinity
            when no bandwidth-feasible routing was found.
        feasible: True when the reported routing satisfies Inequality 3.
        algorithm: name of the producing algorithm (e.g. ``"nmap"``).
        routing: the routing evidence backing ``feasible`` (a
            :class:`repro.routing.base.RoutingResult`) or None.
        stats: algorithm-specific counters (swaps tried, LPs solved, ...).
    """

    mapping: Mapping
    comm_cost: float
    feasible: bool
    algorithm: str
    routing: Any = None
    stats: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        cost = "inf" if self.comm_cost == float("inf") else f"{self.comm_cost:.1f}"
        return (
            f"MappingResult({self.algorithm}, cost={cost}, "
            f"feasible={self.feasible})"
        )
