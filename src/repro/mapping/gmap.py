"""GMAP: the greedy mapping of Hu–Marculescu (used for their UBC bound).

Reimplementation of the greedy algorithm the paper benchmarks as "GMAP —
the algorithm for UBC calculation in [8]": cores are taken in descending
order of total communication volume (a static order, unlike NMAP's
``initialize()`` which re-ranks by attachment to the mapped set) and each is
placed on the free node minimizing the incremental hop-weighted cost to the
cores already placed.  No improvement phase follows — that absence is what
Figures 3 and 4 measure.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.api.options import GmapOptions
from repro.api.registry import register_mapper
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.metrics.comm_cost import MAXVALUE, comm_cost
from repro.routing.min_path import min_path_routing


@register_mapper("gmap", options=GmapOptions,
                 summary="Greedy mapping baseline (Hu-Marculescu UBC)")
def gmap(core_graph: CoreGraph, topology: NoCTopology) -> MappingResult:
    """Run the greedy baseline.

    Returns:
        :class:`MappingResult` priced with the same single-minimum-path
        routing used for NMAP, so Figure 3/4 comparisons are apples to
        apples.
    """
    if core_graph.num_cores == 0:
        raise MappingError("cannot map an empty core graph")
    mapping = Mapping(core_graph, topology)
    order = sorted(
        core_graph.cores,
        key=lambda core: (-core_graph.core_traffic(core), core_graph.cores.index(core)),
    )
    center_x = (topology.width - 1) / 2.0
    center_y = (topology.height - 1) / 2.0
    for core in order:
        placed_neighbors = [
            (mapping.node_of(other), core_graph.traffic_between(core, other))
            for other in core_graph.neighbors(core)
            if mapping.is_mapped(other)
        ]
        best_node = -1
        best_key: tuple[float, float] | None = None
        for node in mapping.free_nodes():
            cost = sum(
                bandwidth * topology.distance(node, placed)
                for placed, bandwidth in placed_neighbors
            )
            x, y = topology.coords(node)
            center_pull = abs(x - center_x) + abs(y - center_y)
            key = (cost, center_pull)
            if best_key is None or key < best_key:
                best_key = key
                best_node = node
        mapping.assign(core, best_node)

    commodities = build_commodities(core_graph, mapping)
    routing = min_path_routing(topology, commodities)
    feasible = routing.is_feasible()
    return MappingResult(
        mapping=mapping,
        comm_cost=comm_cost(mapping) if feasible else MAXVALUE,
        feasible=feasible,
        algorithm="gmap",
        routing=routing,
    )
