"""Seeded random mappings — the null baseline and test fuzzing substrate."""

from __future__ import annotations

import random

from repro.errors import MappingError
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.metrics.comm_cost import MAXVALUE, comm_cost
from repro.routing.min_path import min_path_routing


def random_mapping(
    core_graph: CoreGraph, topology: NoCTopology, seed: int = 0
) -> MappingResult:
    """Place cores on uniformly random distinct nodes (deterministic per seed)."""
    if core_graph.num_cores == 0:
        raise MappingError("cannot map an empty core graph")
    rng = random.Random(seed)
    nodes = rng.sample(list(topology.nodes), core_graph.num_cores)
    mapping = Mapping(
        core_graph,
        topology,
        {core: node for core, node in zip(core_graph.cores, nodes)},
    )
    commodities = build_commodities(core_graph, mapping)
    routing = min_path_routing(topology, commodities)
    feasible = routing.is_feasible()
    return MappingResult(
        mapping=mapping,
        comm_cost=comm_cost(mapping) if feasible else MAXVALUE,
        feasible=feasible,
        algorithm="random",
        routing=routing,
    )
