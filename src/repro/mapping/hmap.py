"""HMAP: partition-aware hierarchical mapping.

Divide and conquer over the fabric partition: the topology is cut into
``regions`` contiguous regions by :func:`repro.partition.partition_topology`
(the same specs the sharded engine consumes), cores are clustered into as
many groups by communication affinity, clusters are matched to regions so
heavily-communicating cluster pairs land on nearby regions, and finally
each core is placed greedily *within* its cluster's region.  The local
placement step is GMAP's incremental rule, so HMAP is exactly "GMAP with a
partition-shaped prior": the hierarchy decides roughly where each traffic
community lives, the greedy step decides exactly where.

The payoff is scoped search: on large fabrics the greedy baseline scans
every free node per core, while HMAP scans one region — and the clustering
keeps chatty cores inside one region, which is also precisely the traffic
shape that minimizes boundary crossings under the sharded engine's
partition of the same fabric.
"""

from __future__ import annotations

from repro.api.options import HmapOptions
from repro.api.registry import register_mapper
from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.mapping.nmap import evaluate_single_path
from repro.partition import partition_topology


def _cluster_cores(
    core_graph: CoreGraph, capacities: list[int]
) -> list[list[str]]:
    """Greedy affinity clustering of cores into ``len(capacities)`` groups.

    Cores are taken in descending total-traffic order (GMAP's static
    order); each joins the non-full cluster with the most bandwidth to its
    current members, falling back to the emptiest cluster (lowest index on
    ties) when it talks to no placed core — which also seeds each cluster
    with one of the heaviest cores, spreading the hubs apart.
    """
    order = sorted(
        core_graph.cores,
        key=lambda core: (
            -core_graph.core_traffic(core),
            core_graph.cores.index(core),
        ),
    )
    clusters: list[list[str]] = [[] for _ in capacities]
    for core in order:
        best = -1
        best_key: tuple[float, int, int] | None = None
        for index, members in enumerate(clusters):
            if len(members) >= capacities[index]:
                continue
            affinity = sum(
                core_graph.traffic_between(core, other) for other in members
            )
            key = (-affinity, len(members), index)
            if best_key is None or key < best_key:
                best_key = key
                best = index
        if best < 0:
            raise MappingError(
                "hmap: region capacities cannot hold every core (after "
                "excluding failed routers)"
            )
        clusters[best].append(core)
    return clusters


def _match_clusters_to_regions(
    core_graph: CoreGraph,
    topology: NoCTopology,
    clusters: list[list[str]],
    regions: list[list[int]],
    refine: bool,
) -> list[int]:
    """Which region each cluster occupies, minimizing traffic x distance.

    Starts from the identity matching (cluster i -> region i; both sides
    are built in the same deterministic order) and, when ``refine`` is on,
    greedily applies the best pairwise swap of two clusters' regions until
    no swap lowers the cost — the classic O(K^2) refinement, tiny because
    K is the shard count, not the core count.  Only capacity-feasible
    swaps are considered: each cluster must still fit the region it moves
    to, or the local placement phase would run out of free nodes.
    """
    count = len(clusters)
    # Inter-cluster bandwidth and inter-region centroid distance matrices.
    flow = [[0.0] * count for _ in range(count)]
    for a in range(count):
        for b in range(a + 1, count):
            total = sum(
                core_graph.traffic_between(x, y)
                for x in clusters[a]
                for y in clusters[b]
            )
            flow[a][b] = flow[b][a] = total
    centroid = []
    for members in regions:
        xs, ys = zip(*(topology.coords(node) for node in members))
        centroid.append((sum(xs) / len(xs), sum(ys) / len(ys)))
    dist = [
        [
            abs(ca[0] - cb[0]) + abs(ca[1] - cb[1])
            for cb in centroid
        ]
        for ca in centroid
    ]

    assigned = list(range(count))
    if not refine:
        return assigned

    def pair_cost(a: int, b: int) -> float:
        ra, rb = assigned[a], assigned[b]
        return flow[a][b] * dist[ra][rb]

    improved = True
    while improved:
        improved = False
        best_gain = 0.0
        best_swap: tuple[int, int] | None = None
        for a in range(count):
            for b in range(a + 1, count):
                if len(clusters[a]) > len(regions[assigned[b]]) or len(
                    clusters[b]
                ) > len(regions[assigned[a]]):
                    continue
                before = sum(
                    pair_cost(a, other) + pair_cost(b, other)
                    for other in range(count)
                    if other not in (a, b)
                )
                assigned[a], assigned[b] = assigned[b], assigned[a]
                after = sum(
                    pair_cost(a, other) + pair_cost(b, other)
                    for other in range(count)
                    if other not in (a, b)
                )
                assigned[a], assigned[b] = assigned[b], assigned[a]
                gain = before - after
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_swap = (a, b)
        if best_swap is not None:
            a, b = best_swap
            assigned[a], assigned[b] = assigned[b], assigned[a]
            improved = True
    return assigned


@register_mapper(
    "hmap",
    options=HmapOptions,
    summary="Hierarchical mapping over a fabric partition (cluster, "
    "match regions, place greedily within each)",
)
def hmap(
    core_graph: CoreGraph,
    topology: NoCTopology,
    regions: int | None = None,
    partitioner: str = "auto",
    refine: bool = True,
) -> MappingResult:
    """Run the hierarchical partition-aware mapper.

    Args:
        core_graph: application graph ``G(V, E)``.
        topology: NoC graph ``P(U, F)``.
        regions: partition size; None picks ``min(4, |V|, |U|)`` so small
            instances degrade gracefully to fewer (or one) region(s).
        partitioner: partitioner name fed to
            :func:`repro.partition.partition_topology` (``"auto"`` walks
            the metis -> greedy-edge -> round-robin ladder).
        refine: greedy pairwise refinement of the cluster-to-region
            matching (off = the deterministic identity matching).

    Returns:
        :class:`MappingResult` priced with the same single-minimum-path
        routing as NMAP/GMAP, so cost comparisons are apples to apples.
    """
    if core_graph.num_cores == 0:
        raise MappingError("cannot map an empty core graph")
    if regions is None:
        regions = max(1, min(4, core_graph.num_cores, topology.num_nodes))
    spec = partition_topology(topology, regions, partitioner)

    failed = topology.failed_routers
    region_nodes: list[list[int]] = [
        [node for node in spec.shard_nodes(shard) if node not in failed]
        for shard in range(spec.num_shards)
    ]
    clusters = _cluster_cores(
        core_graph, [len(members) for members in region_nodes]
    )
    placement = _match_clusters_to_regions(
        core_graph, topology, clusters, region_nodes, refine
    )

    # Local phase: GMAP's greedy rule, scoped to the cluster's region;
    # already-placed cores in *other* regions still pull, so boundary
    # cores land on their region's near edge.
    mapping = Mapping(core_graph, topology)
    order = sorted(
        core_graph.cores,
        key=lambda core: (
            -core_graph.core_traffic(core),
            core_graph.cores.index(core),
        ),
    )
    cluster_of = {
        core: index
        for index, members in enumerate(clusters)
        for core in members
    }
    free: list[set[int]] = [set(members) for members in region_nodes]
    for core in order:
        region = placement[cluster_of[core]]
        placed_neighbors = [
            (mapping.node_of(other), core_graph.traffic_between(core, other))
            for other in core_graph.neighbors(core)
            if mapping.is_mapped(other)
        ]
        best_node = -1
        best_key: tuple[float, int] | None = None
        for node in sorted(free[region]):
            cost = sum(
                bandwidth * topology.distance(node, placed)
                for placed, bandwidth in placed_neighbors
            )
            key = (cost, node)
            if best_key is None or key < best_key:
                best_key = key
                best_node = node
        mapping.assign(core, best_node)
        free[region].discard(best_node)

    cost, routing, feasible = evaluate_single_path(mapping)
    return MappingResult(
        mapping=mapping,
        comm_cost=cost,
        feasible=feasible,
        algorithm="hmap",
        routing=routing,
    )
