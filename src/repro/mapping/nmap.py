"""NMAP with single minimum-path routing: ``mappingwithsinglepath()`` (§5).

Three phases:

1. ``initialize()`` builds the constructive seed
   (:func:`repro.mapping.initializer.initial_mapping`).
2. ``shortestpath()`` routes all commodities with the load-balancing
   quadrant heuristic and prices the mapping: Equation 7's cost when the
   bandwidth constraints hold, ``maxvalue`` otherwise.
3. Pairwise improvement: for every node pair ``(i, j)``, evaluate the
   mapping with the two nodes' contents swapped; after each outer ``i`` the
   best mapping found so far is committed (exactly the pseudo-code's
   control flow).

Fast path (results identical, documented in DESIGN.md and PERFORMANCE.md):
Equation 7 depends only on hop distances, so a candidate swap's cost is
computed in ``O(deg)`` via :func:`~repro.metrics.comm_cost.swap_cost_delta`
— and, since the mapping is frozen while scanning the partners of node
``i``, all their deltas are scored in one vectorized
:func:`~repro.metrics.comm_cost.swap_cost_deltas` call when fast paths are
enabled.  The routing heuristic runs only for candidates that would
actually improve the best cost, to confirm bandwidth feasibility.  When
every link's capacity is at least the total traffic of the application, any
routing is feasible and the check is skipped altogether.
"""

from __future__ import annotations

from repro import fastpath
from repro.api.options import NmapOptions
from repro.errors import MappingError
from repro.api.registry import register_mapper
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.mapping.initializer import initial_mapping
from repro.metrics.comm_cost import (
    MAXVALUE,
    comm_cost,
    swap_cost_delta,
    swap_cost_deltas,
)
from repro.routing.base import RoutingResult
from repro.routing.min_path import min_path_routing


def evaluate_single_path(mapping: Mapping) -> tuple[float, RoutingResult, bool]:
    """The ``shortestpath()`` evaluation of one complete mapping.

    Returns:
        ``(cost, routing, feasible)`` where ``cost`` is Equation 7 when the
        routed loads satisfy every link capacity and ``maxvalue`` otherwise.
    """
    commodities = build_commodities(mapping.core_graph, mapping)
    routing = min_path_routing(mapping.topology, commodities)
    feasible = routing.is_feasible()
    cost = comm_cost(mapping) if feasible else MAXVALUE
    return cost, routing, feasible


def _trivially_feasible(core_graph: CoreGraph, topology: NoCTopology) -> bool:
    """True when no routing can ever violate a link capacity."""
    return topology.min_link_bandwidth() >= core_graph.total_bandwidth()


@register_mapper("nmap", options=NmapOptions,
                 summary="NMAP with single minimum-path routing (§5)")
def nmap_single_path(
    core_graph: CoreGraph,
    topology: NoCTopology,
    improve: bool = True,
    max_passes: int | None = None,
    objective: str = "comm-cost",
) -> MappingResult:
    """Run the full NMAP single-minimum-path algorithm.

    Args:
        core_graph: application graph ``G(V, E)``.
        topology: NoC graph ``P(U, F)`` with link capacities.
        improve: False stops after the constructive phase (the ablation
            bench uses this to measure what the swap loop buys).
        max_passes: number of full pairwise-swap sweeps.  The pseudo-code
            shows one sweep; by default the sweep repeats until no swap is
            accepted (a fixpoint of the same neighborhood, at most
            ``|U|`` sweeps), which only ever improves on the single sweep.
            Pass ``1`` for the literal pseudo-code behaviour.
        objective: ``"comm-cost"`` (Equation 7, the paper's objective) or
            ``"resilience"`` — the same search, but swaps are scored by
            expected cost over the single-link-failure ensemble (see
            :mod:`repro.faults.resilience`).  The final mapping is routed
            and priced on the pristine fabric either way.

    Returns:
        A :class:`MappingResult`; ``comm_cost`` is ``inf`` when no
        bandwidth-feasible mapping was found.

    Raises:
        MappingError: for ``objective="resilience"`` on a fabric whose link
            capacities could make a routing infeasible — the ensemble view
            is not routable, so the search needs the pure-cost regime.
    """
    resilience = objective == "resilience"
    if resilience:
        from repro.faults.resilience import resilience_view

        if not _trivially_feasible(core_graph, topology):
            raise MappingError(
                "objective='resilience' requires link capacities at or above "
                "the application's total bandwidth (the pure-cost regime): "
                "the ensemble metric view cannot be routed for feasibility "
                "checks"
            )
        search_topology, ensemble_size = resilience_view(topology)
    else:
        search_topology, ensemble_size = topology, 0

    mapping = initial_mapping(core_graph, search_topology)
    skip_routing = resilience or _trivially_feasible(core_graph, topology)

    if skip_routing:
        best_cost: float = comm_cost(mapping)
        best_feasible = True
    else:
        best_cost, _, best_feasible = evaluate_single_path(mapping)

    stats = {"swaps_tried": 0, "swaps_accepted": 0, "routings_run": 0 if skip_routing else 1,
             "passes": 0}

    if improve:
        nodes = search_topology.healthy_nodes()
        pass_limit = max_passes if max_passes is not None else len(nodes)
        for _ in range(pass_limit):
            stats["passes"] += 1
            accepted_this_pass = 0
            manhattan_cost = comm_cost(mapping)
            for i in range(len(nodes)):
                best_swap: tuple[int, int] | None = None
                best_swap_cost = best_cost
                candidates = nodes[i + 1 :]
                # The mapping is frozen while scanning j (the best swap for
                # this i commits only after the scan), so all candidate
                # deltas can be scored in one vectorized call.
                batch_deltas = (
                    swap_cost_deltas(mapping, nodes[i], candidates)
                    if candidates and fastpath.fast_paths_enabled()
                    else None
                )
                for offset, node_j in enumerate(candidates):
                    stats["swaps_tried"] += 1
                    delta = (
                        float(batch_deltas[offset])
                        if batch_deltas is not None
                        else swap_cost_delta(mapping, nodes[i], node_j)
                    )
                    if delta == 0.0 and best_feasible:
                        continue
                    candidate_cost = manhattan_cost + delta
                    if candidate_cost >= best_swap_cost and best_feasible:
                        continue
                    if skip_routing:
                        feasible = True
                    else:
                        candidate = mapping.swapped(nodes[i], node_j)
                        stats["routings_run"] += 1
                        _, _, feasible = evaluate_single_path(candidate)
                    if feasible and (candidate_cost < best_swap_cost or not best_feasible):
                        best_swap = (nodes[i], node_j)
                        best_swap_cost = candidate_cost
                        best_feasible = True
                if best_swap is not None:
                    mapping.swap_nodes(*best_swap)
                    manhattan_cost = comm_cost(mapping)
                    best_cost = best_swap_cost
                    stats["swaps_accepted"] += 1
                    accepted_this_pass += 1
            if accepted_this_pass == 0:
                break

    if resilience:
        # The search ran on the ensemble metric view; re-anchor the result on
        # the real fabric so routing and the reported Equation-7 cost are the
        # pristine ones.  The expectation the search optimized is in stats.
        stats["objective"] = objective
        stats["expected_fault_cost"] = comm_cost(mapping) / ensemble_size
        mapping = Mapping(core_graph, topology, mapping.placement)

    final_cost, routing, feasible = (
        (comm_cost(mapping), None, True) if skip_routing else evaluate_single_path(mapping)
    )
    if skip_routing:
        commodities = build_commodities(core_graph, mapping)
        routing = min_path_routing(topology, commodities)
    return MappingResult(
        mapping=mapping,
        comm_cost=final_cost if feasible else MAXVALUE,
        feasible=feasible,
        algorithm="nmap",
        routing=routing,
        stats=stats,
    )
