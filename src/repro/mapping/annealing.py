"""Simulated-annealing mapper (extension beyond the paper's comparison set).

The NoC-mapping literature that followed the paper frequently benchmarks
against simulated annealing; this implementation completes the comparison
surface.  Moves are the same node-content swaps NMAP's refinement uses
(including moves onto empty nodes), the objective is Equation 7's cost, and
the cooling schedule is geometric.  Everything is seeded, so results are
reproducible; the ablation bench compares it against NMAP on cost and
runtime.

Bandwidth constraints are handled the way NMAP's swap loop handles them:
candidate acceptance is on cost, and the final mapping is priced/validated
with the single-minimum-path router.
"""

from __future__ import annotations

import math
import random

from repro.api.options import AnnealingOptions
from repro.api.registry import register_mapper
from repro.errors import MappingError
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.mapping.initializer import initial_mapping
from repro.metrics.comm_cost import MAXVALUE, comm_cost, swap_cost_delta
from repro.routing.min_path import min_path_routing


@register_mapper("annealing", options=AnnealingOptions,
                 summary="Seeded simulated annealing over pairwise swaps (extension)")
def annealing_mapping(
    core_graph: CoreGraph,
    topology: NoCTopology,
    seed: int = 1,
    initial_temperature: float | None = None,
    cooling: float = 0.95,
    moves_per_temperature: int | None = None,
    min_temperature_fraction: float = 1e-4,
    objective: str = "comm-cost",
) -> MappingResult:
    """Map cores with simulated annealing over pairwise swaps.

    Args:
        core_graph: application graph.
        topology: NoC graph.
        seed: RNG seed (temperature schedule is deterministic; move
            selection and acceptance are drawn from this stream).
        initial_temperature: starting temperature; defaults to 5% of the
            seed mapping's cost, which accepts most early uphill moves.
        cooling: geometric cooling factor per temperature step.
        moves_per_temperature: moves attempted per step; defaults to
            ``4 * |U|``.
        min_temperature_fraction: stop when the temperature falls below
            this fraction of the initial temperature.
        objective: ``"comm-cost"`` (Equation 7) or ``"resilience"``
            (expected cost over the single-link-failure ensemble; the
            anneal scores moves on the ensemble metric view of
            :mod:`repro.faults.resilience` and the final mapping is routed
            and priced on the real fabric).

    Returns:
        :class:`MappingResult` priced with single-minimum-path routing.
    """
    if core_graph.num_cores == 0:
        raise MappingError("cannot map an empty core graph")
    if not (0.0 < cooling < 1.0):
        raise MappingError(f"cooling factor must be in (0, 1), got {cooling}")

    resilience = objective == "resilience"
    if resilience:
        from repro.faults.resilience import resilience_view

        search_topology, ensemble_size = resilience_view(topology)
    else:
        search_topology, ensemble_size = topology, 0

    rng = random.Random(seed)
    mapping = initial_mapping(core_graph, search_topology)
    current_cost = comm_cost(mapping)
    best_mapping = mapping.copy()
    best_cost = current_cost

    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(1.0, 0.05 * current_cost)
    )
    floor = temperature * min_temperature_fraction
    moves = moves_per_temperature or 4 * topology.num_nodes
    nodes = search_topology.healthy_nodes()

    accepted = 0
    attempted = 0
    while temperature > floor:
        for _ in range(moves):
            attempted += 1
            node_a, node_b = rng.sample(nodes, 2)
            delta = swap_cost_delta(mapping, node_a, node_b)
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                mapping.swap_nodes(node_a, node_b)
                current_cost += delta
                accepted += 1
                if current_cost < best_cost:
                    best_cost = current_cost
                    best_mapping = mapping.copy()
        temperature *= cooling

    stats = {
        "moves_attempted": attempted,
        "moves_accepted": accepted,
        "final_temperature": temperature,
    }
    if resilience:
        # The anneal scored moves on the ensemble metric view; re-anchor on
        # the real fabric for routing and the reported Equation-7 cost.
        stats["objective"] = objective
        stats["expected_fault_cost"] = comm_cost(best_mapping) / ensemble_size
        best_mapping = Mapping(core_graph, topology, best_mapping.placement)

    commodities = build_commodities(core_graph, best_mapping)
    routing = min_path_routing(topology, commodities)
    feasible = routing.is_feasible()
    return MappingResult(
        mapping=best_mapping,
        comm_cost=comm_cost(best_mapping) if feasible else MAXVALUE,
        feasible=feasible,
        algorithm="annealing",
        routing=routing,
        stats=stats,
    )
