"""PBB: partial branch-and-bound mapping (Hu–Marculescu, ASP-DAC 2003).

Branch-and-bound over partial assignments: cores are branched in descending
total-traffic order, and tree level ``d`` assigns core ``d`` to one of the
free mesh nodes.  Each tree node carries a lower bound on the final
Equation 7 cost:

* the exact cost of flows between already-placed cores (maintained
  incrementally), plus
* for each flow between a placed and an unplaced core, the flow value times
  the distance from the placed node to the nearest free node (``tight``
  mode) or one hop (``cheap`` mode), plus
* one hop per flow between two unplaced cores.

The "partial" in PBB is the bounded queue: the paper monitors the queue
length so their runs take "few minutes".  We implement the queue bound as a
level-synchronous best-bound search — at every depth only the ``max_queue``
lowest-bound partials survive.  This keeps runtime predictable (the knob the
paper tunes) while remaining exact whenever the queue never overflows.
Mesh mirror symmetries are broken at the root level.
"""

from __future__ import annotations

import heapq

from repro.api.options import PbbOptions
from repro.api.registry import register_mapper
from repro.errors import MappingError
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.metrics.comm_cost import MAXVALUE, comm_cost
from repro.routing.min_path import min_path_routing


def _symmetry_nodes(topology: NoCTopology) -> list[int]:
    """One node per mirror-symmetry class (root-level symmetry breaking)."""
    result = []
    for node in topology.nodes:
        x, y = topology.coords(node)
        if topology.torus:
            # A torus is vertex-transitive: a single root suffices.
            return [0]
        if x <= (topology.width - 1) / 2 and y <= (topology.height - 1) / 2:
            result.append(node)
    return result


@register_mapper("pbb", options=PbbOptions,
                 summary="Partial branch-and-bound baseline (Hu-Marculescu)")
def pbb(
    core_graph: CoreGraph,
    topology: NoCTopology,
    max_queue: int = 2000,
    tight_bounds: bool | None = None,
) -> MappingResult:
    """Run the partial branch-and-bound baseline.

    Args:
        core_graph: application graph.
        topology: NoC graph.
        max_queue: surviving partial assignments per tree level; the paper's
            runtime knob (they size it for minutes, the Table 2 bench for
            seconds — recorded in DESIGN.md).
        tight_bounds: use nearest-free-node bounds (slower, prunes more).
            Defaults to True for graphs of at most 20 cores.

    Returns:
        :class:`MappingResult` priced with single-minimum-path routing.
    """
    if core_graph.num_cores == 0:
        raise MappingError("cannot map an empty core graph")
    if max_queue < 1:
        raise MappingError(f"max_queue must be >= 1, got {max_queue}")
    if tight_bounds is None:
        tight_bounds = core_graph.num_cores <= 20

    order = sorted(
        core_graph.cores,
        key=lambda core: (-core_graph.core_traffic(core), core_graph.cores.index(core)),
    )
    core_rank = {core: rank for rank, core in enumerate(order)}

    # Undirected-collapsed flows keyed by their later-placed endpoint, so the
    # incremental cost of placing core ``hi`` scans only its earlier links.
    flows: list[tuple[int, int, float]] = []
    for pair, bandwidth in core_graph.undirected_weights().items():
        lo, hi = sorted(pair, key=lambda core: core_rank[core])
        flows.append((core_rank[lo], core_rank[hi], bandwidth))
    earlier_links: dict[int, list[tuple[int, float]]] = {}
    for lo, hi, bandwidth in flows:
        earlier_links.setdefault(hi, []).append((lo, bandwidth))

    # Remainder term of the cheap bound: flows not yet chargeable exactly.
    cheap_tail = [0.0] * (len(order) + 1)
    for depth in range(len(order) + 1):
        cheap_tail[depth] = sum(bw for lo, hi, bw in flows if hi >= depth)

    # level entries: (exact_cost, assignment tuple)
    level: list[tuple[float, tuple[int, ...]]] = [
        (0.0, (node,)) for node in _symmetry_nodes(topology)
    ]
    expansions = 0
    overflowed = False
    for depth in range(1, len(order)):
        children: list[tuple[float, float, tuple[int, ...]]] = []
        links = earlier_links.get(depth, [])
        for exact, assignment in level:
            expansions += 1
            used = set(assignment)
            free = [node for node in topology.nodes if node not in used]
            if tight_bounds:
                nearest = {
                    placed: min(topology.distance(placed, node) for node in free)
                    for placed in used
                }
            for node in free:
                child_exact = exact + sum(
                    bandwidth * topology.distance(assignment[lo], node)
                    for lo, bandwidth in links
                )
                if tight_bounds:
                    bound = child_exact
                    child_used = used | {node}
                    for lo, hi, bandwidth in flows:
                        if hi <= depth:
                            continue
                        if lo <= depth:
                            placed_node = assignment[lo] if lo < depth else node
                            hop = nearest.get(placed_node, 1)
                            if placed_node == node:
                                hop = 1  # the new node's nearest-free is >= 1
                            bound += bandwidth * max(1, hop)
                        else:
                            bound += bandwidth
                else:
                    bound = child_exact + cheap_tail[depth + 1]
                children.append((bound, child_exact, assignment + (node,)))
        if len(children) > max_queue:
            overflowed = True
            children = heapq.nsmallest(max_queue, children)
        level = [(exact, assignment) for _bound, exact, assignment in children]

    best_exact, best_assignment = min(level)
    mapping = Mapping(
        core_graph,
        topology,
        {core: best_assignment[rank] for rank, core in enumerate(order)},
    )
    commodities = build_commodities(core_graph, mapping)
    routing = min_path_routing(topology, commodities)
    feasible = routing.is_feasible()
    return MappingResult(
        mapping=mapping,
        comm_cost=comm_cost(mapping) if feasible else MAXVALUE,
        feasible=feasible,
        algorithm="pbb",
        routing=routing,
        stats={
            "expansions": expansions,
            "queue_overflowed": overflowed,
            "max_queue": max_queue,
            "tight_bounds": tight_bounds,
        },
    )
