"""Exhaustive mapping oracle for small instances (testing / calibration).

Enumerates every injective placement of cores onto nodes (with mirror
symmetry breaking on the first core) and returns the Equation 7 optimum.
Exponential — guarded to tiny instance sizes — but invaluable for checking
that NMAP and PBB actually reach or approach optimal cost on graphs small
enough to verify.
"""

from __future__ import annotations

from itertools import permutations

from repro.errors import MappingError
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.metrics.comm_cost import MAXVALUE, comm_cost
from repro.routing.min_path import min_path_routing

#: Hard cap on the number of placements enumerated.
MAX_PLACEMENTS = 2_000_000


def exhaustive_best_mapping(
    core_graph: CoreGraph, topology: NoCTopology
) -> MappingResult:
    """Find the cost-optimal mapping by enumeration.

    Raises:
        MappingError: when the instance would exceed ``MAX_PLACEMENTS``
            placements (use a smaller graph/mesh for oracle tests).
    """
    cores = core_graph.cores
    if not cores:
        raise MappingError("cannot map an empty core graph")
    nodes = list(topology.nodes)

    count = 1
    for i in range(len(cores)):
        count *= len(nodes) - i
        if count > MAX_PLACEMENTS:
            raise MappingError(
                f"exhaustive search over ~{count} placements is too large"
            )

    flows = [
        (cores.index(flow.src), cores.index(flow.dst), flow.bandwidth)
        for flow in core_graph.flows()
    ]
    half_width = (topology.width - 1) / 2
    half_height = (topology.height - 1) / 2

    best_cost = float("inf")
    best_assignment: tuple[int, ...] | None = None
    for assignment in permutations(nodes, len(cores)):
        first_x, first_y = topology.coords(assignment[0])
        if not topology.torus and (first_x > half_width or first_y > half_height):
            continue  # mirror image of an already-seen placement
        cost = 0.0
        for src_idx, dst_idx, bandwidth in flows:
            cost += bandwidth * topology.distance(assignment[src_idx], assignment[dst_idx])
            if cost >= best_cost:
                break
        if cost < best_cost:
            best_cost = cost
            best_assignment = assignment

    assert best_assignment is not None  # at least one placement always exists
    mapping = Mapping(
        core_graph,
        topology,
        {core: best_assignment[index] for index, core in enumerate(cores)},
    )
    commodities = build_commodities(core_graph, mapping)
    routing = min_path_routing(topology, commodities)
    feasible = routing.is_feasible()
    return MappingResult(
        mapping=mapping,
        comm_cost=comm_cost(mapping) if feasible else MAXVALUE,
        feasible=feasible,
        algorithm="exhaustive",
        routing=routing,
    )
