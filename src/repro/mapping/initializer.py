"""The ``initialize()`` routine (§5): constructive seed mapping.

1. The core with the maximum communication demand goes onto a mesh node with
   the maximum number of neighbors.
2. Repeatedly, the unmapped core communicating most with the already-mapped
   set is placed on the free node minimizing
   ``sum over mapped cores of comm(core, mapped) * hop_distance``.

All ties are broken deterministically (lowest node id / first core in graph
order) so runs are reproducible.  Among maximum-degree nodes we prefer the
one closest to the mesh center, matching the intuition that the seed core
should have room to grow in all directions.
"""

from __future__ import annotations

from repro.errors import MappingError
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping


def _seed_node(topology: NoCTopology) -> int:
    """Max-degree node nearest the mesh center (lowest id on ties)."""
    center_x = (topology.width - 1) / 2.0
    center_y = (topology.height - 1) / 2.0

    def center_distance(node: int) -> float:
        x, y = topology.coords(node)
        return abs(x - center_x) + abs(y - center_y)

    candidates = topology.max_degree_nodes()
    return min(candidates, key=lambda node: (center_distance(node), node))


def _seed_core(core_graph: CoreGraph) -> str:
    """Core with maximum total communication demand (graph order on ties)."""
    return max(
        core_graph.cores,
        key=lambda core: (core_graph.core_traffic(core), -core_graph.cores.index(core)),
    )


def _next_core(core_graph: CoreGraph, mapped: set[str]) -> str:
    """Unmapped core with max communication to the mapped set.

    Falls back to total traffic for cores with no mapped neighbor yet (a
    disconnected component's heaviest core goes next).
    """
    best_core: str | None = None
    best_key: tuple[float, float] | None = None
    for core in core_graph.cores:
        if core in mapped:
            continue
        to_mapped = sum(core_graph.traffic_between(core, other) for other in mapped)
        key = (to_mapped, core_graph.core_traffic(core))
        if best_key is None or key > best_key:
            best_core = core
            best_key = key
    if best_core is None:
        raise MappingError("no unmapped core left to select")
    return best_core


def _best_node(
    core_graph: CoreGraph, topology: NoCTopology, mapping: Mapping, core: str
) -> int:
    """Free node minimizing the placement cost of ``core`` against mapped cores.

    Implements the pseudo-code's
    ``commcost(u_j) += comm(next_s, w_i) * (xdist + ydist)`` scan over every
    available mesh node.
    """
    mapped_neighbors = [
        (mapping.node_of(other), core_graph.traffic_between(core, other))
        for other in core_graph.neighbors(core)
        if mapping.is_mapped(other)
    ]
    center_x = (topology.width - 1) / 2.0
    center_y = (topology.height - 1) / 2.0
    best_node = -1
    best_key: tuple[float, float] | None = None
    for node in mapping.free_nodes():
        cost = sum(
            bandwidth * topology.distance(node, placed_node)
            for placed_node, bandwidth in mapped_neighbors
        )
        x, y = topology.coords(node)
        # Tie-break toward the mesh center: keeps the placement compact so
        # later cores still find close free nodes.
        key = (cost, abs(x - center_x) + abs(y - center_y))
        if best_key is None or key < best_key:
            best_key = key
            best_node = node
    if best_node < 0:
        raise MappingError("no free node available")
    return best_node


def initial_mapping(core_graph: CoreGraph, topology: NoCTopology) -> Mapping:
    """Run ``initialize()`` and return the constructive seed mapping.

    Raises:
        MappingError: when the graph has no cores or more cores than nodes.
    """
    if core_graph.num_cores == 0:
        raise MappingError("cannot map an empty core graph")
    mapping = Mapping(core_graph, topology)
    seed = _seed_core(core_graph)
    mapping.assign(seed, _seed_node(topology))
    mapped = {seed}
    while len(mapped) < core_graph.num_cores:
        core = _next_core(core_graph, mapped)
        node = _best_node(core_graph, topology, mapping, core)
        mapping.assign(core, node)
        mapped.add(core)
    return mapping
