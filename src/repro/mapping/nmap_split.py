"""NMAP with traffic splitting: ``mappingwithsplitting()`` (§6).

Control flow follows the pseudo-code:

1. ``initialize()`` seed.
2. MCF1 prices the seed's bandwidth-constraint violation (total slack).
   Slack 0 flips ``bwconstsatisfied`` and MCF2 prices the communication
   cost.
3. Pairwise node swaps: while constraints are unsatisfied, each candidate
   runs MCF1 and the first zero-slack candidate flips the phase (candidates
   that merely *reduce* slack become the new best mapping); once satisfied,
   candidates run MCF2 and the cheapest feasible mapping wins.  After each
   outer iteration the best mapping is committed.

Fast path (identical results): MCF2's optimum is lower-bounded by
Equation 7's Manhattan cost (every unit of flow crosses at least
``dist(src, dst)`` links), so in the cost phase candidates whose Manhattan
bound already exceeds the best cost skip the LP.

``quadrant_only=True`` restricts every commodity to its minimum paths
(Equation 10) — the low-jitter NMAPTM variant; False is NMAPTA.
"""

from __future__ import annotations

from repro.api.options import NmapSplitOptions
from repro.api.registry import register_mapper
from repro.graphs.commodities import build_commodities
from repro.graphs.core_graph import CoreGraph
from repro.graphs.topology import NoCTopology
from repro.mapping.base import Mapping, MappingResult
from repro.mapping.initializer import initial_mapping
from repro.metrics.comm_cost import MAXVALUE, comm_cost, swap_cost_delta
from repro.routing.split import solve_mcf1, solve_mcf2

#: Total slack below this counts as "bandwidth constraints satisfied".
SLACK_TOLERANCE = 1e-6


def _mcf1_slack(mapping: Mapping, quadrant_only: bool) -> tuple[float, object]:
    commodities = build_commodities(mapping.core_graph, mapping)
    return solve_mcf1(mapping.topology, commodities, quadrant_only=quadrant_only)


def _mcf2_cost(mapping: Mapping, quadrant_only: bool) -> tuple[float, object] | None:
    commodities = build_commodities(mapping.core_graph, mapping)
    return solve_mcf2(mapping.topology, commodities, quadrant_only=quadrant_only)


def nmap_with_splitting(
    core_graph: CoreGraph,
    topology: NoCTopology,
    quadrant_only: bool = False,
    improve: bool = True,
) -> MappingResult:
    """Run the full NMAP split-traffic algorithm (NMAPTA or NMAPTM).

    Args:
        core_graph: application graph.
        topology: NoC graph with the link capacities to satisfy.
        quadrant_only: restrict splitting to minimum paths (NMAPTM).
        improve: False stops after the constructive phase + MCF pricing.

    Returns:
        :class:`MappingResult` whose ``routing`` holds the fractional MCF2
        flows of the final mapping (or the MCF1 flows when no feasible
        mapping was found, for diagnosis).
    """
    algorithm = "nmap-tm" if quadrant_only else "nmap-ta"
    mapping = initial_mapping(core_graph, topology)
    stats = {"swaps_tried": 0, "swaps_accepted": 0, "mcf1_solved": 0, "mcf2_solved": 0}

    best_slack, slack_routing = _mcf1_slack(mapping, quadrant_only)
    stats["mcf1_solved"] += 1
    bw_satisfied = best_slack <= SLACK_TOLERANCE
    best_cost = MAXVALUE
    best_routing = slack_routing
    if bw_satisfied:
        priced = _mcf2_cost(mapping, quadrant_only)
        stats["mcf2_solved"] += 1
        if priced is None:  # pragma: no cover - zero slack implies feasible
            bw_satisfied = False
        else:
            best_cost, best_routing = priced

    if improve:
        nodes = list(topology.nodes)
        for i in range(len(nodes)):
            best_swap: tuple[int, int] | None = None
            swap_slack = best_slack
            swap_cost = best_cost
            swap_routing = None
            for j in range(i + 1, len(nodes)):
                stats["swaps_tried"] += 1
                candidate = mapping.swapped(nodes[i], nodes[j])
                if not bw_satisfied:
                    slack, routing = _mcf1_slack(candidate, quadrant_only)
                    stats["mcf1_solved"] += 1
                    if slack <= SLACK_TOLERANCE:
                        # Feasibility reached: price it and enter the cost phase.
                        priced = _mcf2_cost(candidate, quadrant_only)
                        stats["mcf2_solved"] += 1
                        if priced is not None:
                            bw_satisfied = True
                            best_swap = (nodes[i], nodes[j])
                            swap_slack = 0.0
                            swap_cost, swap_routing = priced
                    elif slack < swap_slack:
                        best_swap = (nodes[i], nodes[j])
                        swap_slack = slack
                        swap_routing = routing
                else:
                    lower_bound = comm_cost(mapping) + swap_cost_delta(
                        mapping, nodes[i], nodes[j]
                    )
                    if lower_bound >= swap_cost:
                        continue
                    priced = _mcf2_cost(candidate, quadrant_only)
                    stats["mcf2_solved"] += 1
                    if priced is None:
                        continue
                    cost, routing = priced
                    if cost < swap_cost:
                        best_swap = (nodes[i], nodes[j])
                        swap_cost = cost
                        swap_routing = routing
            if best_swap is not None:
                mapping.swap_nodes(*best_swap)
                best_slack = swap_slack
                best_cost = swap_cost
                if swap_routing is not None:
                    best_routing = swap_routing
                stats["swaps_accepted"] += 1

    return MappingResult(
        mapping=mapping,
        comm_cost=best_cost if bw_satisfied else MAXVALUE,
        feasible=bw_satisfied,
        algorithm=algorithm,
        routing=best_routing,
        stats=stats,
    )


# The two public split variants differ only in the pinned quadrant mode, so
# they register the same function twice instead of defining wrappers.
register_mapper(
    "nmap-tm",
    options=NmapSplitOptions,
    fixed={"quadrant_only": True},
    summary="NMAP with split traffic on minimum paths (NMAPTM, §6)",
)(nmap_with_splitting)
register_mapper(
    "nmap-ta",
    options=NmapSplitOptions,
    fixed={"quadrant_only": False},
    summary="NMAP with split traffic over all paths (NMAPTA, §6)",
)(nmap_with_splitting)
