"""Unit tests for the LP modeling layer."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.lp.model import ConstraintSpec, LinExpr, LinearProgram, lin_sum


class TestVariable:
    def test_add_var_defaults(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        assert x.low == 0.0
        assert x.high is None
        assert not x.integer

    def test_indices_sequential(self):
        lp = LinearProgram()
        assert [lp.add_var(f"v{i}").index for i in range(3)] == [0, 1, 2]

    def test_empty_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(SolverError, match="empty bounds"):
            lp.add_var("x", low=5.0, high=1.0)

    def test_repr(self):
        lp = LinearProgram()
        assert "x" in repr(lp.add_var("x"))


class TestExpressions:
    def setup_method(self):
        self.lp = LinearProgram()
        self.x = self.lp.add_var("x")
        self.y = self.lp.add_var("y")

    def test_addition(self):
        expr = self.x + self.y + 3.0
        assert expr.coefs == {0: 1.0, 1: 1.0}
        assert expr.constant == 3.0

    def test_subtraction(self):
        expr = self.x - self.y
        assert expr.coefs == {0: 1.0, 1: -1.0}

    def test_scaling(self):
        expr = 2 * self.x + self.y * 3
        assert expr.coefs == {0: 2.0, 1: 3.0}

    def test_negation(self):
        expr = -self.x
        assert expr.coefs == {0: -1.0}

    def test_rsub(self):
        expr = 5.0 - self.x
        assert expr.coefs == {0: -1.0}
        assert expr.constant == 5.0

    def test_coefficient_merge(self):
        expr = self.x + self.x + self.x
        assert expr.coefs == {0: 3.0}

    def test_invalid_operand(self):
        with pytest.raises(SolverError):
            self.x + "hello"  # type: ignore[operator]

    def test_invalid_scale(self):
        with pytest.raises(SolverError):
            (self.x + self.y) * self.x  # type: ignore[operator]

    def test_lin_sum(self):
        expr = lin_sum([self.x, 2 * self.y, 4.0])
        assert expr.coefs == {0: 1.0, 1: 2.0}
        assert expr.constant == 4.0

    def test_lin_sum_empty(self):
        expr = lin_sum([])
        assert expr.coefs == {}
        assert expr.constant == 0.0


class TestConstraints:
    def setup_method(self):
        self.lp = LinearProgram()
        self.x = self.lp.add_var("x")
        self.y = self.lp.add_var("y")

    def test_le_constraint(self):
        spec = self.x + self.y <= 10.0
        assert isinstance(spec, ConstraintSpec)
        assert spec.sense == "<="
        assert spec.expr.constant == -10.0

    def test_ge_constraint(self):
        spec = self.x >= 2.0
        assert spec.sense == ">="

    def test_equals(self):
        spec = (self.x - self.y).equals(5.0)
        assert spec.sense == "=="

    def test_add_constraint_registers(self):
        self.lp.add_constraint(self.x <= 4.0)
        assert self.lp.num_constraints == 1

    def test_add_constraint_rejects_non_spec(self):
        with pytest.raises(SolverError):
            self.lp.add_constraint(self.x)  # type: ignore[arg-type]

    def test_objective(self):
        self.lp.set_objective(self.x + 2 * self.y, minimize=False)
        assert not self.lp.minimize
        assert self.lp.objective.coefs == {0: 1.0, 1: 2.0}

    def test_has_integer_vars(self):
        assert not self.lp.has_integer_vars
        self.lp.add_var("b", high=1.0, integer=True)
        assert self.lp.has_integer_vars

    def test_repr_kind(self):
        assert "LP" in repr(self.lp)
        self.lp.add_var("b", integer=True)
        assert "MILP" in repr(self.lp)
