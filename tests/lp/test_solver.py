"""Unit tests for the scipy-backed LP/MILP solver."""

from __future__ import annotations

import pytest

from repro.errors import SolverError
from repro.lp.model import LinearProgram, lin_sum
from repro.lp.solver import SolveStatus, solve


class TestLinearPrograms:
    def test_simple_minimization(self):
        lp = LinearProgram()
        x = lp.add_var("x", low=1.0)
        y = lp.add_var("y", low=2.0)
        lp.set_objective(x + y)
        solution = solve(lp)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(3.0)
        assert solution.value_of(x) == pytest.approx(1.0)

    def test_constrained_optimum(self):
        # min x + 2y  s.t. x + y >= 4, x <= 3
        lp = LinearProgram()
        x = lp.add_var("x")
        y = lp.add_var("y")
        lp.add_constraint(x + y >= 4.0)
        lp.add_constraint(x <= 3.0)
        lp.set_objective(x + 2 * y)
        solution = solve(lp)
        assert solution.objective == pytest.approx(5.0)  # x=3, y=1

    def test_equality_constraint(self):
        lp = LinearProgram()
        x = lp.add_var("x")
        y = lp.add_var("y")
        lp.add_constraint((x + y).equals(10.0))
        lp.set_objective(x)
        solution = solve(lp)
        assert solution.value_of(x) == pytest.approx(0.0)
        assert solution.value_of(y) == pytest.approx(10.0)

    def test_objective_constant_included(self):
        lp = LinearProgram()
        x = lp.add_var("x", low=2.0)
        lp.set_objective(x + 100.0)
        assert solve(lp).objective == pytest.approx(102.0)

    def test_maximization(self):
        lp = LinearProgram()
        x = lp.add_var("x", high=7.0)
        lp.set_objective(x, minimize=False)
        solution = solve(lp)
        assert solution.objective == pytest.approx(7.0)

    def test_infeasible_status(self):
        lp = LinearProgram()
        x = lp.add_var("x", high=1.0)
        lp.add_constraint(x >= 2.0)
        lp.set_objective(x)
        assert solve(lp).status is SolveStatus.INFEASIBLE

    def test_unbounded_status(self):
        lp = LinearProgram()
        x = lp.add_var("x", low=None)
        lp.set_objective(x)
        assert solve(lp).status is SolveStatus.UNBOUNDED

    def test_empty_program_rejected(self):
        with pytest.raises(SolverError, match="no variables"):
            solve(LinearProgram())

    def test_nonoptimal_has_no_values(self):
        lp = LinearProgram()
        x = lp.add_var("x", high=1.0)
        lp.add_constraint(x >= 2.0)
        lp.set_objective(x)
        assert solve(lp).values == ()


class TestMilp:
    def test_binary_knapsack(self):
        # max 3a + 4b + 2c  s.t. 2a + 3b + c <= 4, binary
        lp = LinearProgram()
        a = lp.add_var("a", high=1.0, integer=True)
        b = lp.add_var("b", high=1.0, integer=True)
        c = lp.add_var("c", high=1.0, integer=True)
        lp.add_constraint(2 * a + 3 * b + c <= 4.0)
        lp.set_objective(3 * a + 4 * b + 2 * c, minimize=False)
        solution = solve(lp)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(6.0)  # b + c
        assert solution.value_of(b) == pytest.approx(1.0)

    def test_integrality_enforced(self):
        # LP relaxation would pick x = 2.5
        lp = LinearProgram()
        x = lp.add_var("x", integer=True)
        lp.add_constraint(2 * x >= 5.0)
        lp.set_objective(x)
        assert solve(lp).objective == pytest.approx(3.0)

    def test_mixed_integer_and_continuous(self):
        lp = LinearProgram()
        x = lp.add_var("x", integer=True, high=10.0)
        y = lp.add_var("y")
        lp.add_constraint((x + y).equals(3.5))
        lp.set_objective(y)
        solution = solve(lp)
        assert solution.value_of(y) == pytest.approx(0.5)
        assert solution.value_of(x) == pytest.approx(3.0)

    def test_infeasible_milp(self):
        lp = LinearProgram()
        x = lp.add_var("x", high=1.0, integer=True)
        lp.add_constraint(x >= 2.0)
        lp.set_objective(x)
        assert solve(lp).status is SolveStatus.INFEASIBLE

    def test_equality_milp(self):
        lp = LinearProgram()
        picks = [lp.add_var(f"p{i}", high=1.0, integer=True) for i in range(4)]
        lp.add_constraint(lin_sum(picks).equals(1.0))
        lp.set_objective(lin_sum(p * (i + 1) for i, p in enumerate(picks)))
        solution = solve(lp)
        assert solution.objective == pytest.approx(1.0)
